//! Supervisor behaviour: heartbeat detection, budgeted restarts, the
//! escalation circuit breaker, and KPI publication — all observed both
//! through the supervisor API and through the attribute space itself.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tdp_core::{LassComponent, Supervisable, World};
use tdp_ops::{Health, Supervisor, SupervisorConfig};
use tdp_proto::{names, TdpError, TdpResult, OPS_CONTEXT};

const T: Duration = Duration::from_secs(10);

/// Tight intervals so tests converge in milliseconds.
fn fast_config() -> SupervisorConfig {
    SupervisorConfig {
        intervals: tdp_ops::DaemonIntervals {
            heartbeat: Duration::from_millis(10),
            patrol: Duration::from_millis(5),
            kpi: Duration::from_millis(25),
        },
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        restart_budget: 3,
        restart_window: Duration::from_secs(60),
        seed: 7,
    }
}

/// A component whose health is a switch the test flips.
struct Flaky {
    name: &'static str,
    broken: Arc<AtomicBool>,
}

impl Supervisable for Flaky {
    fn ops_name(&self) -> String {
        self.name.to_string()
    }
    fn ops_probe(&self) -> TdpResult<()> {
        if self.broken.load(Ordering::SeqCst) {
            Err(TdpError::Substrate("flaky: down".into()))
        } else {
            Ok(())
        }
    }
}

#[test]
fn breaker_escalates_always_crashing_component() {
    let w = World::new();
    let fe = w.add_host();
    let sup = Supervisor::start(&w, fe, fast_config()).unwrap();
    let broken = Arc::new(AtomicBool::new(true));
    let restarts_issued = Arc::new(AtomicU64::new(0));
    sup.register(
        Arc::new(Flaky {
            name: "crashy",
            broken: broken.clone(),
        }),
        {
            let n = restarts_issued.clone();
            move || {
                // The restart itself "succeeds" — the component just
                // crashes again immediately (probe stays red).
                n.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        },
    );
    sup.wait_health("crashy", Health::Escalated, T).unwrap();
    // Exactly the budget was spent, then the breaker opened.
    assert_eq!(sup.restarts_of("crashy"), Some(3));
    assert_eq!(restarts_issued.load(Ordering::SeqCst), 3);
    assert_eq!(sup.escalated(), vec!["crashy".to_string()]);

    // NOT restart-looped: many patrol intervals later the count is
    // still frozen at the budget.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        restarts_issued.load(Ordering::SeqCst),
        3,
        "escalated component must not be restarted again"
    );

    // The escalation is visible in the attribute space.
    let cass = w.ensure_cass(fe).unwrap();
    let mut c = w.attr_connect(fe, cass).unwrap();
    c.join(OPS_CONTEXT).unwrap();
    assert_eq!(c.get(OPS_CONTEXT, names::OPS_ESCALATION).unwrap(), "crashy");
    assert_eq!(
        c.get(OPS_CONTEXT, &names::ops_health("crashy")).unwrap(),
        "escalated"
    );

    // Escalation is sticky even if the component comes back by itself…
    broken.store(false, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(sup.health_of("crashy"), Some(Health::Escalated));
    // …until an operator resets it.
    sup.reset_component("crashy");
    sup.wait_health("crashy", Health::Healthy, T).unwrap();
}

#[test]
fn dead_lass_is_restarted_and_recovery_latency_recorded() {
    let w = World::new();
    let fe = w.add_host();
    let exec = w.add_host();
    w.ensure_lass(exec).unwrap();
    let sup = Supervisor::start(&w, fe, fast_config()).unwrap();
    let comp = LassComponent::new(&w, exec);
    let name = comp.ops_name();
    sup.register(Arc::new(LassComponent::new(&w, exec)), move || {
        comp.respawn().map(|_| ())
    });

    w.kill_lass(exec);
    sup.wait_restarts(&name, 1, T).unwrap();
    sup.wait_health(&name, Health::Healthy, T).unwrap();
    // The patrol credits recovery; wait for two post-recovery
    // heartbeats — the loop publishes tick N before counting tick N+1,
    // so a non-zero beat attribute is then guaranteed to be in the
    // space.
    sup.wait_beats(&name, 2, T).unwrap();

    // The replacement actually serves the protocol.
    let lass = w.lass_addr(exec).unwrap();
    let mut c = w.attr_connect(exec, lass).unwrap();
    c.join(OPS_CONTEXT).unwrap();
    c.put(OPS_CONTEXT, "post.recovery", "ok").unwrap();

    // Detection→recovery latency was measured and is sane.
    let lat = sup
        .recovery_latencies()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .unwrap();
    assert!(!lat.is_empty(), "recovery latency must be recorded");
    assert!(lat.iter().all(|d| *d < T), "{lat:?}");

    // Liveness and health attributes are in the space, per convention.
    let cass = w.ensure_cass(fe).unwrap();
    let mut ops = w.attr_connect(fe, cass).unwrap();
    ops.join(OPS_CONTEXT).unwrap();
    assert_eq!(
        ops.get(OPS_CONTEXT, &names::ops_health(&name)).unwrap(),
        "healthy"
    );
    let beats: u64 = ops
        .get(OPS_CONTEXT, &names::ops_live(&name))
        .unwrap()
        .parse()
        .unwrap();
    assert!(beats > 0);
}

#[test]
fn kpi_snapshot_reports_sessions_restarts_and_gauges() {
    let w = World::new();
    let fe = w.add_host();
    let sup = Supervisor::start(&w, fe, fast_config()).unwrap();
    sup.register_gauge("queue_depth", || 7);
    let rows = sup.kpi_snapshot_now();
    let get = |k: &str| {
        rows.iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing KPI {k} in {rows:?}"))
    };
    // The supervisor's own publisher session counts.
    assert!(get("sessions").parse::<u64>().unwrap() >= 1);
    assert_eq!(get("restarts"), "0");
    assert_eq!(get("escalations"), "0");
    assert_eq!(get("queue_depth"), "7");
    get("stall_kills"); // present

    // Published into the space under the KPI convention.
    let cass = w.ensure_cass(fe).unwrap();
    let mut c = w.attr_connect(fe, cass).unwrap();
    c.join(OPS_CONTEXT).unwrap();
    assert_eq!(
        c.get(OPS_CONTEXT, &names::ops_kpi("queue_depth")).unwrap(),
        "7"
    );
}

#[test]
fn demo_kpi_dump_exercises_a_full_recovery() {
    let rows = tdp_ops::demo::kpi_dump().unwrap();
    let get = |k: &str| {
        rows.iter()
            .find(|(name, _)| name == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing KPI {k} in {rows:?}"))
    };
    assert!(get("restarts").parse::<u64>().unwrap() >= 1);
    assert_eq!(get("escalations"), "0");
    assert_eq!(get("demo.clients"), "3");
    get("recovery_ms_max");
    let table = tdp_ops::render_kpis(&rows);
    assert!(table.contains("restarts"));
}

#[test]
fn unregister_stops_supervision() {
    let w = World::new();
    let fe = w.add_host();
    let sup = Supervisor::start(&w, fe, fast_config()).unwrap();
    let broken = Arc::new(AtomicBool::new(false));
    let restarts_issued = Arc::new(AtomicU64::new(0));
    sup.register(
        Arc::new(Flaky {
            name: "leaving",
            broken: broken.clone(),
        }),
        {
            let n = restarts_issued.clone();
            move || {
                n.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        },
    );
    sup.wait_beats("leaving", 2, T).unwrap();

    // Intentional removal: the patrol must NOT resurrect it even though
    // its probe goes red immediately afterwards.
    assert!(sup.unregister("leaving"));
    assert!(!sup.unregister("leaving"), "second unregister is a no-op");
    broken.store(true, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(80));
    assert_eq!(restarts_issued.load(Ordering::SeqCst), 0);
    assert_eq!(sup.health_of("leaving"), None);
    assert!(matches!(
        sup.wait_health("leaving", Health::Healthy, Duration::from_millis(40)),
        Err(TdpError::Substrate(_))
    ));
}

#[test]
fn kpi_snapshot_rows_are_sorted_by_key() {
    let rows = tdp_ops::demo::kpi_dump().unwrap();
    let keys: Vec<&String> = rows.iter().map(|(k, _)| k).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "--kpi-dump rows must be key-sorted");
}
