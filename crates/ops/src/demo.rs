//! A self-contained supervised deployment, used by the `tdp-ops`
//! binary and the bench report to demonstrate the ops plane: a
//! front-end CASS plus per-host LASSes under supervision, live client
//! sessions, and a scripted LASS failure the supervisor recovers from.

use crate::supervisor::{Supervisor, SupervisorConfig};
use std::sync::Arc;
use std::time::Duration;
use tdp_attrspace::AttrClient;
use tdp_core::{CassComponent, LassComponent, Supervisable, World};
use tdp_proto::{ContextId, HostId, TdpResult};

/// Context the demo clients chat in (distinct from the ops context).
const DEMO_CTX: ContextId = ContextId(7);

pub struct Demo {
    pub world: World,
    pub fe: HostId,
    pub exec_hosts: Vec<HostId>,
    pub supervisor: Supervisor,
    /// Live sessions, held open so the session-count KPI is non-zero.
    clients: Vec<AttrClient>,
}

impl Demo {
    /// Build the topology: front-end + 3 execution hosts, a LASS per
    /// host and the CASS on the front-end, all under supervision, with
    /// one live client session per LASS.
    pub fn build(config: SupervisorConfig) -> TdpResult<Demo> {
        let world = World::new();
        let fe = world.add_host();
        let exec_hosts: Vec<HostId> = (0..3).map(|_| world.add_host()).collect();
        world.ensure_cass(fe)?;
        let supervisor = Supervisor::start(&world, fe, config)?;

        let cass = CassComponent::new(&world, fe);
        supervisor.register(Arc::new(CassComponent::new(&world, fe)), move || {
            cass.respawn().map(|_| ())
        });
        let mut clients = Vec::new();
        for &h in &exec_hosts {
            let lass = world.ensure_lass(h)?;
            let comp = LassComponent::new(&world, h);
            supervisor.register(Arc::new(LassComponent::new(&world, h)), move || {
                comp.respawn().map(|_| ())
            });
            let mut c = world.attr_connect(h, lass)?;
            c.join(DEMO_CTX)?;
            c.put(DEMO_CTX, "demo.hello", &format!("host{}", h.0))?;
            clients.push(c);
        }
        let n = clients.len() as u64;
        supervisor.register_gauge("demo.clients", move || n);
        Ok(Demo {
            world,
            fe,
            exec_hosts,
            supervisor,
            clients,
        })
    }

    /// Kill one LASS and block until the supervisor has restarted it
    /// and seen it healthy again.
    pub fn inject_lass_failure(&self, timeout: Duration) -> TdpResult<()> {
        let victim = self.exec_hosts[0];
        let name = LassComponent::new(&self.world, victim).ops_name();
        self.world.kill_lass(victim);
        self.supervisor.wait_restarts(&name, 1, timeout)?;
        self.supervisor
            .wait_health(&name, crate::supervisor::Health::Healthy, timeout)
    }

    /// Number of live demo client sessions.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }
}

/// The full scripted demo: build, fail a LASS, wait for recovery, and
/// return the resulting KPI rows (the `--kpi-dump` payload).
pub fn kpi_dump() -> TdpResult<Vec<(String, String)>> {
    let demo = Demo::build(SupervisorConfig::default())?;
    demo.inject_lass_failure(Duration::from_secs(10))?;
    Ok(demo.supervisor.kpi_snapshot_now())
}
