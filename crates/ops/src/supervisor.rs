//! The supervision daemon: three loops on configurable intervals.
//!
//! * **heartbeat** — probe every registered component and publish a
//!   `tdp.ops.live.<name>` beat counter plus `tdp.ops.health.<name>`
//!   into the attribute space: liveness is *stated in the protocol the
//!   components exist to serve*, so any TDP client can watch it.
//! * **patrol** — restart suspect components through their owner's
//!   restart closure, paced by capped exponential [`Backoff`] and
//!   guarded by the [`RestartBudget`] circuit breaker: a component that
//!   keeps dying is escalated (`tdp.ops.escalation`), not restart-looped.
//! * **kpi** — publish operational gauges (`tdp.ops.kpi.*`): session
//!   counts, wire stall kills, restart totals, recovery latencies, plus
//!   any scheduler-provided gauges (queue depths).
//!
//! Every loop ticks on a channel `recv_timeout`, so shutdown is prompt
//! rather than waiting out a sleep.

use crate::backoff::{Backoff, RestartBudget};
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tdp_attrspace::{AttrClient, ReconnectPolicy};
use tdp_core::{Supervisable, World};
use tdp_proto::{names, HostId, TdpError, TdpResult, OPS_CONTEXT};
use tdp_sync::{Condvar, Mutex};

/// How often each daemon loop runs.
#[derive(Debug, Clone, Copy)]
pub struct DaemonIntervals {
    pub heartbeat: Duration,
    pub patrol: Duration,
    pub kpi: Duration,
}

impl Default for DaemonIntervals {
    fn default() -> DaemonIntervals {
        DaemonIntervals {
            heartbeat: Duration::from_millis(40),
            patrol: Duration::from_millis(25),
            kpi: Duration::from_millis(100),
        }
    }
}

/// Supervisor tuning.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    pub intervals: DaemonIntervals,
    /// First restart delay after a failure.
    pub backoff_base: Duration,
    /// Restart delay ceiling.
    pub backoff_cap: Duration,
    /// Maximum restarts per component inside `restart_window` before
    /// the breaker opens and the component is escalated.
    pub restart_budget: u32,
    pub restart_window: Duration,
    /// Seed for backoff jitter (deterministic runs).
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            intervals: DaemonIntervals::default(),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            restart_budget: 10,
            restart_window: Duration::from_secs(10),
            seed: 0x0b5_0b5,
        }
    }
}

/// Component health as the supervisor sees it — the value of the
/// `tdp.ops.health.<name>` attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    Healthy,
    /// Probe failed; awaiting a restart attempt.
    Suspect,
    /// Restart in progress.
    Restarting,
    /// Restart budget exhausted; operator attention required. Sticky
    /// until [`Supervisor::reset_component`].
    Escalated,
}

impl Health {
    pub fn as_attr(&self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Suspect => "suspect",
            Health::Restarting => "restarting",
            Health::Escalated => "escalated",
        }
    }
}

type RestartFn = Box<dyn FnMut() -> TdpResult<()> + Send>;
type GaugeFn = Box<dyn Fn() -> u64 + Send>;

struct Component {
    target: Arc<dyn Supervisable>,
    name: String,
    restart: RestartFn,
    backoff: Backoff,
    budget: RestartBudget,
    health: Health,
    beats: u64,
    restarts: u64,
    down_since: Option<Instant>,
    next_attempt: Instant,
    recoveries: Vec<Duration>,
}

struct Inner {
    world: World,
    config: SupervisorConfig,
    components: (Mutex<Vec<Component>>, Condvar),
    gauges: Mutex<Vec<(String, GaugeFn)>>,
    /// Last published KPI rows.
    kpis: Mutex<BTreeMap<String, String>>,
    /// Reconnecting client publishing ops attributes (survives restarts
    /// of the very server it publishes to).
    publisher: Mutex<AttrClient>,
}

/// The running supervision daemon.
pub struct Supervisor {
    inner: Arc<Inner>,
    stop_txs: Vec<Sender<()>>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Start the three loops. Ops attributes are published into the
    /// CASS on `fe_host` (started if absent), under [`OPS_CONTEXT`] so
    /// the ops plane stays out of tool sessions' contexts.
    pub fn start(
        world: &World,
        fe_host: HostId,
        config: SupervisorConfig,
    ) -> TdpResult<Supervisor> {
        let cass = world.ensure_cass(fe_host)?;
        // Publishing is best-effort and MUST stay prompt: if the CASS
        // itself is the dead component, a long redial here would hold
        // the publisher lock and starve the very patrol loop that
        // restarts it. Give up fast; the next tick republishes anyway.
        let policy = ReconnectPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
            max_elapsed: Duration::from_millis(50),
            ..ReconnectPolicy::default()
        };
        let mut publisher = world.attr_connect_reliable(fe_host, cass, policy)?;
        publisher.join(OPS_CONTEXT)?;
        let inner = Arc::new(Inner {
            world: world.clone(),
            config,
            components: (Mutex::new(Vec::new()), Condvar::new()),
            gauges: Mutex::new(Vec::new()),
            kpis: Mutex::new(BTreeMap::new()),
            publisher: Mutex::new(publisher),
        });

        let mut stop_txs = Vec::new();
        let mut threads = Vec::new();
        type Tick = fn(&Inner);
        let loops: [(&str, Duration, Tick); 3] = [
            ("heartbeat", config.intervals.heartbeat, heartbeat_tick),
            ("patrol", config.intervals.patrol, patrol_tick),
            ("kpi", config.intervals.kpi, kpi_tick),
        ];
        for (name, interval, tick) in loops {
            let (tx, rx) = bounded::<()>(1);
            let inner2 = inner.clone();
            let handle = thread::Builder::new()
                .name(format!("tdp-ops-{name}"))
                .spawn(move || loop {
                    match rx.recv_timeout(interval) {
                        Err(RecvTimeoutError::Timeout) => tick(&inner2),
                        _ => return,
                    }
                })
                .map_err(|e| TdpError::Substrate(format!("spawn ops loop: {e}")))?;
            stop_txs.push(tx);
            threads.push(handle);
        }
        Ok(Supervisor {
            inner,
            stop_txs,
            threads,
        })
    }

    /// Watch `target`; `restart` is the owner's knowledge of how to
    /// bring a replacement up (called from the patrol loop).
    pub fn register(
        &self,
        target: Arc<dyn Supervisable>,
        restart: impl FnMut() -> TdpResult<()> + Send + 'static,
    ) {
        let cfg = &self.inner.config;
        let name = target.ops_name();
        let seed = cfg.seed
            ^ name
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(31) + u64::from(b));
        self.inner.components.0.lock().push(Component {
            target,
            name,
            restart: Box::new(restart),
            backoff: Backoff::new(cfg.backoff_base, cfg.backoff_cap, seed),
            budget: RestartBudget::new(cfg.restart_budget, cfg.restart_window),
            health: Health::Healthy,
            beats: 0,
            restarts: 0,
            down_since: None,
            next_attempt: Instant::now(),
            recoveries: Vec::new(),
        });
    }

    /// Stop watching the component named `name`; returns whether it was
    /// registered. The hand-off hook for owners that *intentionally*
    /// tear a component down (the gateway's `proc.kill` endpoint): an
    /// operator-requested kill must not look like a crash, or the patrol
    /// loop would immediately resurrect what the operator just removed.
    pub fn unregister(&self, name: &str) -> bool {
        let (lock, cv) = &self.inner.components;
        let mut comps = lock.lock();
        let before = comps.len();
        comps.retain(|c| c.name != name);
        let removed = comps.len() != before;
        drop(comps);
        cv.notify_all();
        removed
    }

    /// Publish an extra numeric gauge as `tdp.ops.kpi.<name>` on every
    /// KPI tick (queue depths, in-flight counts, …).
    pub fn register_gauge(&self, name: impl Into<String>, f: impl Fn() -> u64 + Send + 'static) {
        self.inner.gauges.lock().push((name.into(), Box::new(f)));
    }

    pub fn health_of(&self, name: &str) -> Option<Health> {
        self.inner
            .components
            .0
            .lock()
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.health)
    }

    pub fn restarts_of(&self, name: &str) -> Option<u64> {
        self.inner
            .components
            .0
            .lock()
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.restarts)
    }

    /// Total restarts across all components.
    pub fn restart_total(&self) -> u64 {
        self.inner
            .components
            .0
            .lock()
            .iter()
            .map(|c| c.restarts)
            .sum()
    }

    /// Names of escalated components (breaker open).
    pub fn escalated(&self) -> Vec<String> {
        self.inner
            .components
            .0
            .lock()
            .iter()
            .filter(|c| c.health == Health::Escalated)
            .map(|c| c.name.clone())
            .collect()
    }

    /// Recovery latencies (failure detected → probe healthy again) per
    /// component.
    pub fn recovery_latencies(&self) -> Vec<(String, Vec<Duration>)> {
        self.inner
            .components
            .0
            .lock()
            .iter()
            .map(|c| (c.name.clone(), c.recoveries.clone()))
            .collect()
    }

    /// Block until `name` reaches `health` (event-driven; no polling).
    pub fn wait_health(&self, name: &str, health: Health, timeout: Duration) -> TdpResult<()> {
        let deadline = Instant::now() + timeout;
        let (lock, cv) = &self.inner.components;
        let mut comps = lock.lock();
        loop {
            match comps.iter().find(|c| c.name == name) {
                None => return Err(TdpError::Substrate(format!("unknown component {name}"))),
                Some(c) if c.health == health => return Ok(()),
                Some(_) => {}
            }
            if cv.wait_until(&mut comps, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
    }

    /// Block until `name` has at least `n` successful heartbeats.
    pub fn wait_beats(&self, name: &str, n: u64, timeout: Duration) -> TdpResult<u64> {
        let deadline = Instant::now() + timeout;
        let (lock, cv) = &self.inner.components;
        let mut comps = lock.lock();
        loop {
            match comps.iter().find(|c| c.name == name) {
                None => return Err(TdpError::Substrate(format!("unknown component {name}"))),
                Some(c) if c.beats >= n => return Ok(c.beats),
                Some(_) => {}
            }
            if cv.wait_until(&mut comps, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
    }

    /// Block until `name` has been restarted at least `n` times.
    pub fn wait_restarts(&self, name: &str, n: u64, timeout: Duration) -> TdpResult<u64> {
        let deadline = Instant::now() + timeout;
        let (lock, cv) = &self.inner.components;
        let mut comps = lock.lock();
        loop {
            match comps.iter().find(|c| c.name == name) {
                None => return Err(TdpError::Substrate(format!("unknown component {name}"))),
                Some(c) if c.restarts >= n => return Ok(c.restarts),
                Some(_) => {}
            }
            if cv.wait_until(&mut comps, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
    }

    /// Operator reset after an escalation: close the breaker and mark
    /// the component suspect so the patrol tries again.
    pub fn reset_component(&self, name: &str) {
        let (lock, cv) = &self.inner.components;
        let mut comps = lock.lock();
        if let Some(c) = comps.iter_mut().find(|c| c.name == name) {
            c.budget.reset();
            c.backoff.reset();
            c.health = Health::Suspect;
            c.next_attempt = Instant::now();
        }
        drop(comps);
        cv.notify_all();
    }

    /// The last KPI rows published (key → value), sorted by key.
    pub fn kpi_snapshot(&self) -> Vec<(String, String)> {
        self.inner
            .kpis
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Compute, publish, and return a fresh KPI snapshot right now
    /// (the `tdp-ops --kpi-dump` one-shot path).
    pub fn kpi_snapshot_now(&self) -> Vec<(String, String)> {
        kpi_tick(&self.inner);
        self.kpi_snapshot()
    }

    /// Stop all three loops (prompt: ticks are channel waits).
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        for tx in &self.stop_txs {
            let _ = tx.try_send(());
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Probe every component; note failures for the patrol, publish beats.
fn heartbeat_tick(inner: &Inner) {
    let mut rows: Vec<(String, u64, Health)> = Vec::new();
    {
        let mut comps = inner.components.0.lock();
        for c in comps.iter_mut() {
            if c.health == Health::Escalated {
                continue; // operator's problem now; stop poking it
            }
            match c.target.ops_probe() {
                Ok(()) => {
                    c.beats += 1;
                    // A component may come back without our help (e.g.
                    // another actor rebound the port) — credit recovery
                    // wherever it is observed.
                    if c.health != Health::Healthy {
                        c.health = Health::Healthy;
                        if let Some(t) = c.down_since.take() {
                            c.recoveries.push(t.elapsed());
                        }
                        c.backoff.reset();
                    }
                }
                Err(_) => {
                    if c.health == Health::Healthy {
                        c.health = Health::Suspect;
                        c.down_since = Some(Instant::now());
                        c.next_attempt = Instant::now();
                    }
                }
            }
            rows.push((c.name.clone(), c.beats, c.health));
        }
    }
    inner.components.1.notify_all();
    let mut publisher = inner.publisher.lock();
    for (name, beats, health) in rows {
        // One failure means the space is unreachable right now — drop
        // the rest of this tick's rows rather than stacking redials.
        if publisher
            .put(OPS_CONTEXT, &names::ops_live(&name), &beats.to_string())
            .is_err()
        {
            return;
        }
        let _ = publisher.put(OPS_CONTEXT, &names::ops_health(&name), health.as_attr());
    }
}

/// Restart suspect components (backoff-paced, budget-guarded).
fn patrol_tick(inner: &Inner) {
    let mut rows: Vec<(String, Health)> = Vec::new();
    let mut escalations: Vec<String> = Vec::new();
    {
        let mut comps = inner.components.0.lock();
        for c in comps.iter_mut() {
            match c.health {
                Health::Escalated => {
                    escalations.push(c.name.clone());
                    continue;
                }
                Health::Healthy => continue,
                Health::Suspect | Health::Restarting => {}
            }
            // It may have recovered between heartbeats.
            if c.target.ops_probe().is_ok() {
                c.health = Health::Healthy;
                if let Some(t) = c.down_since.take() {
                    c.recoveries.push(t.elapsed());
                }
                c.backoff.reset();
                rows.push((c.name.clone(), c.health));
                continue;
            }
            if Instant::now() < c.next_attempt {
                continue;
            }
            if !c.budget.try_spend() {
                c.health = Health::Escalated;
                escalations.push(c.name.clone());
                rows.push((c.name.clone(), c.health));
                continue;
            }
            c.health = Health::Restarting;
            let restarted = (c.restart)().is_ok();
            if restarted {
                c.restarts += 1;
            }
            if restarted && c.target.ops_probe().is_ok() {
                c.health = Health::Healthy;
                if let Some(t) = c.down_since.take() {
                    c.recoveries.push(t.elapsed());
                }
                c.backoff.reset();
                c.next_attempt = Instant::now();
            } else {
                c.health = Health::Suspect;
                c.next_attempt = Instant::now() + c.backoff.next_delay();
            }
            rows.push((c.name.clone(), c.health));
        }
    }
    inner.components.1.notify_all();
    let mut publisher = inner.publisher.lock();
    for (name, health) in rows {
        if publisher
            .put(OPS_CONTEXT, &names::ops_health(&name), health.as_attr())
            .is_err()
        {
            return;
        }
    }
    if !escalations.is_empty() {
        let _ = publisher.put(OPS_CONTEXT, names::OPS_ESCALATION, &escalations.join(","));
    }
}

/// Gather and publish the KPI rows.
fn kpi_tick(inner: &Inner) {
    let mut rows: BTreeMap<String, String> = BTreeMap::new();
    rows.insert(
        "sessions".into(),
        inner.world.attr_session_count().to_string(),
    );
    rows.insert(
        "stall_kills".into(),
        tdp_wire::stall_kill_count().to_string(),
    );
    {
        let comps = inner.components.0.lock();
        let total: u64 = comps.iter().map(|c| c.restarts).sum();
        rows.insert("restarts".into(), total.to_string());
        let escalated = comps
            .iter()
            .filter(|c| c.health == Health::Escalated)
            .count();
        rows.insert("escalations".into(), escalated.to_string());
        for c in comps.iter() {
            rows.insert(format!("restarts.{}", c.name), c.restarts.to_string());
        }
        let all: Vec<Duration> = comps.iter().flat_map(|c| c.recoveries.clone()).collect();
        if !all.is_empty() {
            let max = all.iter().max().copied().unwrap_or_default();
            let mean = all.iter().sum::<Duration>() / all.len() as u32;
            rows.insert("recovery_ms_max".into(), max.as_millis().to_string());
            rows.insert("recovery_ms_mean".into(), mean.as_millis().to_string());
        }
    }
    for (name, f) in inner.gauges.lock().iter() {
        rows.insert(name.clone(), f().to_string());
    }
    {
        let mut publisher = inner.publisher.lock();
        for (k, v) in &rows {
            if publisher.put(OPS_CONTEXT, &names::ops_kpi(k), v).is_err() {
                break;
            }
        }
    }
    *inner.kpis.lock() = rows;
}
