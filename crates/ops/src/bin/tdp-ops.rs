//! The `tdp-ops` binary: run the supervision demo and watch its KPIs.
//!
//! * `tdp-ops --kpi-dump` — one-shot: build the demo deployment, fail
//!   and recover a LASS, print the final KPI table, exit.
//! * `tdp-ops` — run the demo supervisor for a couple of seconds,
//!   printing a KPI snapshot twice a second.

use std::time::Duration;
use tdp_ops::demo::{kpi_dump, Demo};
use tdp_ops::{render_kpis, SupervisorConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("--kpi-dump") => dump(),
        None => watch(),
        Some(other) => {
            eprintln!("unknown argument: {other}\nusage: tdp-ops [--kpi-dump]");
            2
        }
    };
    std::process::exit(code);
}

fn dump() -> i32 {
    match kpi_dump() {
        Ok(rows) => {
            print!("{}", render_kpis(&rows));
            0
        }
        Err(e) => {
            eprintln!("tdp-ops: {e}");
            1
        }
    }
}

fn watch() -> i32 {
    let demo = match Demo::build(SupervisorConfig::default()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tdp-ops: {e}");
            return 1;
        }
    };
    println!(
        "supervising {} hosts (front-end {}), {} client sessions",
        demo.exec_hosts.len() + 1,
        demo.fe,
        demo.client_count()
    );
    if let Err(e) = demo.inject_lass_failure(Duration::from_secs(10)) {
        eprintln!("tdp-ops: injected failure did not recover: {e}");
        return 1;
    }
    for i in 0..4 {
        std::thread::sleep(Duration::from_millis(500));
        println!("--- snapshot {} ---", i + 1);
        print!("{}", render_kpis(&demo.supervisor.kpi_snapshot_now()));
    }
    0
}
