//! `tdp-ops` — continuous supervision for a TDP deployment.
//!
//! The paper's resource managers keep their own daemons alive ad hoc
//! (the condor_master pattern). This crate generalizes that into one
//! supervision daemon for the whole deployment: heartbeat every
//! [`Supervisable`](tdp_core::Supervisable) component, restart failures
//! under capped exponential backoff, escalate through a restart-budget
//! circuit breaker instead of restart-looping, and publish both
//! liveness and operational KPIs *into the attribute space* — the ops
//! plane speaks the same protocol it supervises.
//!
//! Attribute conventions (all under `OPS_CONTEXT`):
//!
//! | attribute | value |
//! |---|---|
//! | `tdp.ops.live.<name>` | heartbeat counter |
//! | `tdp.ops.health.<name>` | `healthy` \| `suspect` \| `restarting` \| `escalated` |
//! | `tdp.ops.kpi.<field>` | gauge value (sessions, restarts, queue depths, …) |
//! | `tdp.ops.escalation` | comma-joined names of escalated components |

pub mod backoff;
pub mod demo;
pub mod kpi;
pub mod supervisor;

pub use backoff::{Backoff, RestartBudget};
pub use demo::Demo;
pub use kpi::render_kpis;
pub use supervisor::{DaemonIntervals, Health, Supervisor, SupervisorConfig};
