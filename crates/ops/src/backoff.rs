//! Restart pacing: capped exponential backoff with jitter, and the
//! restart-budget circuit breaker that turns "restart forever" into
//! "restart a bounded number of times per window, then escalate".

use rand::SmallRng;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Capped exponential backoff with uniform jitter in `[delay/2, delay]`
/// (the same shape the attribute-space client uses for reconnects, so
/// restart storms from many supervisors de-synchronize).
pub struct Backoff {
    base: Duration,
    cap: Duration,
    next: Duration,
    rng: SmallRng,
}

impl Backoff {
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            next: base,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The delay to wait before the next attempt; doubles the nominal
    /// delay (up to the cap) each call.
    pub fn next_delay(&mut self) -> Duration {
        let d = self.next;
        self.next = (self.next * 2).min(self.cap);
        let half = d / 2;
        half + Duration::from_nanos(self.rng.gen_range(half.as_nanos() as u64 + 1))
    }

    /// Back to the base delay (call on recovery).
    pub fn reset(&mut self) {
        self.next = self.base;
    }
}

/// A sliding-window circuit breaker: at most `max` restarts per
/// `window`. When the budget is exhausted the supervisor stops
/// restarting and escalates — a component that crashes on every start
/// must reach an operator, not burn CPU in a restart loop.
pub struct RestartBudget {
    window: Duration,
    max: u32,
    spent: VecDeque<Instant>,
}

impl RestartBudget {
    pub fn new(max: u32, window: Duration) -> RestartBudget {
        RestartBudget {
            window,
            max,
            spent: VecDeque::new(),
        }
    }

    /// Try to spend one restart from the budget. `false` means the
    /// breaker is open: `max` restarts already happened inside the
    /// window.
    pub fn try_spend(&mut self) -> bool {
        let now = Instant::now();
        while let Some(&t) = self.spent.front() {
            if now.duration_since(t) > self.window {
                self.spent.pop_front();
            } else {
                break;
            }
        }
        if self.spent.len() as u32 >= self.max {
            return false;
        }
        self.spent.push_back(now);
        true
    }

    /// Restarts currently inside the window.
    pub fn spent(&self) -> u32 {
        self.spent.len() as u32
    }

    /// Forget history (operator reset after an escalation).
    pub fn reset(&mut self) {
        self.spent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_cap_with_bounded_jitter() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        let mut b = Backoff::new(base, cap, 42);
        let mut nominal = base;
        for _ in 0..6 {
            let d = b.next_delay();
            assert!(d >= nominal / 2 && d <= nominal, "{d:?} vs {nominal:?}");
            nominal = (nominal * 2).min(cap);
        }
        // Capped: stays within [cap/2, cap] forever after.
        for _ in 0..4 {
            let d = b.next_delay();
            assert!(d >= cap / 2 && d <= cap, "{d:?}");
        }
        b.reset();
        assert!(b.next_delay() <= base);
    }

    #[test]
    fn budget_opens_after_max_and_refills_after_window() {
        let mut budget = RestartBudget::new(3, Duration::from_millis(50));
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend(), "breaker must open at the limit");
        assert_eq!(budget.spent(), 3);
        // After the window passes, the budget refills.
        std::thread::sleep(Duration::from_millis(60));
        assert!(budget.try_spend(), "window expiry must refill the budget");
    }
}
