//! KPI rendering: the snapshot the supervisor publishes as
//! `tdp.ops.kpi.*` attributes, formatted as a markdown table for the
//! `tdp-ops --kpi-dump` one-shot mode and the bench report.

/// Render KPI rows as a two-column markdown table. Rows are rendered
/// in key order regardless of input order, so two dumps of the same
/// deployment diff cleanly (the chaos-soak harness compares successive
/// `--kpi-dump` outputs line by line).
pub fn render_kpis(rows: &[(String, String)]) -> String {
    let mut rows: Vec<&(String, String)> = rows.iter().collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let key_w = rows
        .iter()
        .map(|(k, _)| k.len())
        .chain(["kpi".len()])
        .max()
        .unwrap_or(3);
    let val_w = rows
        .iter()
        .map(|(_, v)| v.len())
        .chain(["value".len()])
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    out.push_str(&format!("| {:key_w$} | {:val_w$} |\n", "kpi", "value"));
    out.push_str(&format!(
        "|{}|{}|\n",
        "-".repeat(key_w + 2),
        "-".repeat(val_w + 2)
    ));
    for (k, v) in rows {
        out.push_str(&format!("| {k:key_w$} | {v:val_w$} |\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let rows = vec![
            ("restarts".to_string(), "3".to_string()),
            ("sessions".to_string(), "12".to_string()),
        ];
        let t = render_kpis(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("kpi") && lines[0].contains("value"));
        assert!(lines[2].contains("restarts") && lines[2].contains("3"));
        // All rows align to the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn renders_in_key_order_regardless_of_input_order() {
        let shuffled = vec![
            ("sessions".to_string(), "12".to_string()),
            ("escalations".to_string(), "0".to_string()),
            ("restarts".to_string(), "3".to_string()),
        ];
        let mut sorted = shuffled.clone();
        sorted.sort();
        assert_eq!(
            render_kpis(&shuffled),
            render_kpis(&sorted),
            "dump output must not depend on row production order"
        );
        let out = render_kpis(&shuffled);
        let keys: Vec<String> = out
            .lines()
            .skip(2)
            .map(|l| {
                l.trim_start_matches("| ")
                    .split(' ')
                    .next()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(keys, ["escalations", "restarts", "sessions"]);
    }
}
