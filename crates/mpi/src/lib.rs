//! # tdp-mpi — a simulated MPICH-style message-passing runtime
//!
//! The paper's MPI-universe experiment (§4.3) profiles "parallel
//! programs written with MPI … compiled with the MPICH ch_p4 version",
//! with a staged startup: the rank-0 "master process" starts first, a
//! tool daemon attaches, and only on the user's *run* command are the
//! remaining ranks created — each paused, attached by its own paradynd,
//! and continued.
//!
//! This crate provides the application half of that experiment:
//!
//! * [`MpiComm`] — the communicator linked into every rank: point-to-
//!   point `send`/`recv` with tags, and the collectives (barrier,
//!   broadcast, reduce) built on top. Blocking operations cooperate with
//!   the `tdp-simos` pause gate, so an attached tool can stop a rank
//!   that is waiting inside "MPI".
//! * [`apps`] — ready-made MPI programs (`ring`, `stencil`) as
//!   [`tdp_simos::ExecImage`]s with instrumented symbols, used by the
//!   Condor MPI universe, the examples and the benchmarks.

pub mod apps;
pub mod comm;

pub use comm::{MpiComm, RankCtx};
