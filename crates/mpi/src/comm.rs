//! The communicator: tagged point-to-point messaging and collectives.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;
use tdp_proto::{Rank, TdpError, TdpResult};
use tdp_simos::ProcCtx;
use tdp_sync::{Condvar, Mutex};

/// A message in flight between ranks.
struct Envelope {
    from: u32,
    tag: u32,
    data: Vec<u8>,
}

struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

struct CommInner {
    n: u32,
    mailboxes: Vec<Mailbox>,
    barrier: Mutex<(u64, u32)>, // (generation, arrived)
    barrier_cv: Condvar,
}

/// The communicator shared by all ranks of one MPI job — the moral
/// equivalent of `MPI_COMM_WORLD` plus the ch_p4 transport underneath
/// it. Clone one handle per rank.
#[derive(Clone)]
pub struct MpiComm {
    inner: Arc<CommInner>,
}

impl MpiComm {
    /// A communicator for `n` ranks.
    pub fn new(n: u32) -> MpiComm {
        MpiComm {
            inner: Arc::new(CommInner {
                n,
                mailboxes: (0..n)
                    .map(|_| Mailbox {
                        queue: Mutex::new(VecDeque::new()),
                        cv: Condvar::new(),
                    })
                    .collect(),
                barrier: Mutex::new((0, 0)),
                barrier_cv: Condvar::new(),
            }),
        }
    }

    /// World size.
    pub fn size(&self) -> u32 {
        self.inner.n
    }

    /// Bind this communicator to a rank, yielding the per-rank API.
    pub fn rank(&self, rank: u32) -> RankCtx {
        assert!(
            rank < self.inner.n,
            "rank {rank} out of range (size {})",
            self.inner.n
        );
        RankCtx {
            comm: self.clone(),
            rank,
        }
    }
}

/// The API one rank's program uses. All blocking operations take the
/// process's [`ProcCtx`] so stops and kills from an attached tool take
/// effect even while the rank waits "inside MPI".
pub struct RankCtx {
    comm: MpiComm,
    rank: u32,
}

/// How long a blocked MPI operation sleeps between pause-gate checks.
const POLL: Duration = Duration::from_millis(2);

impl RankCtx {
    pub fn rank(&self) -> Rank {
        Rank(self.rank)
    }

    pub fn size(&self) -> u32 {
        self.comm.inner.n
    }

    /// Non-blocking tagged send.
    pub fn send(&self, to: u32, tag: u32, data: &[u8]) -> TdpResult<()> {
        let inner = &self.comm.inner;
        if to >= inner.n {
            return Err(TdpError::Substrate(format!(
                "send to rank {to} of {}",
                inner.n
            )));
        }
        let mb = &inner.mailboxes[to as usize];
        mb.queue.lock().push_back(Envelope {
            from: self.rank,
            tag,
            data: data.to_vec(),
        });
        mb.cv.notify_all();
        Ok(())
    }

    /// Blocking tagged receive from a specific rank. Passes the pause
    /// gate while waiting.
    pub fn recv(&self, ctx: &mut ProcCtx, from: u32, tag: u32) -> TdpResult<Vec<u8>> {
        Ok(self.recv_match(ctx, Some(from), tag)?.1)
    }

    /// Blocking receive from any rank; returns `(from, data)`.
    pub fn recv_any(&self, ctx: &mut ProcCtx, tag: u32) -> TdpResult<(u32, Vec<u8>)> {
        self.recv_match(ctx, None, tag)
    }

    fn recv_match(
        &self,
        ctx: &mut ProcCtx,
        from: Option<u32>,
        tag: u32,
    ) -> TdpResult<(u32, Vec<u8>)> {
        let mb = &self.comm.inner.mailboxes[self.rank as usize];
        loop {
            ctx.checkpoint();
            {
                let mut q = mb.queue.lock();
                if let Some(pos) = q
                    .iter()
                    .position(|e| e.tag == tag && from.is_none_or(|f| e.from == f))
                {
                    let e = q.remove(pos).expect("pos valid");
                    return Ok((e.from, e.data));
                }
                // Short wait; re-gate afterwards so an attached tool can
                // pause a rank blocked in MPI_Recv.
                mb.cv.wait_for(&mut q, POLL);
            }
        }
    }

    /// Barrier across all ranks.
    pub fn barrier(&self, ctx: &mut ProcCtx) -> TdpResult<()> {
        let inner = &self.comm.inner;
        let my_gen;
        {
            let mut b = inner.barrier.lock();
            my_gen = b.0;
            b.1 += 1;
            if b.1 == inner.n {
                b.0 += 1;
                b.1 = 0;
                drop(b);
                inner.barrier_cv.notify_all();
                return Ok(());
            }
        }
        loop {
            ctx.checkpoint();
            let mut b = inner.barrier.lock();
            if b.0 != my_gen {
                return Ok(());
            }
            inner.barrier_cv.wait_for(&mut b, POLL);
        }
    }

    /// Broadcast from `root`: root sends, others receive. Returns the
    /// payload on every rank.
    pub fn bcast(&self, ctx: &mut ProcCtx, root: u32, data: &[u8]) -> TdpResult<Vec<u8>> {
        const BCAST_TAG: u32 = u32::MAX - 1;
        if self.rank == root {
            for r in 0..self.comm.inner.n {
                if r != root {
                    self.send(r, BCAST_TAG, data)?;
                }
            }
            Ok(data.to_vec())
        } else {
            self.recv(ctx, root, BCAST_TAG)
        }
    }

    /// Sum-reduce a u64 to `root`. Non-roots get `None`.
    pub fn reduce_sum(&self, ctx: &mut ProcCtx, root: u32, value: u64) -> TdpResult<Option<u64>> {
        const REDUCE_TAG: u32 = u32::MAX - 2;
        if self.rank == root {
            let mut acc = value;
            for _ in 0..self.comm.inner.n - 1 {
                let (_, data) = self.recv_any(ctx, REDUCE_TAG)?;
                let bytes: [u8; 8] = data
                    .try_into()
                    .map_err(|_| TdpError::Protocol("bad reduce payload".into()))?;
                acc += u64::from_be_bytes(bytes);
            }
            Ok(Some(acc))
        } else {
            self.send(root, REDUCE_TAG, &value.to_be_bytes())?;
            Ok(None)
        }
    }

    /// Allreduce = reduce to rank 0 + broadcast.
    pub fn allreduce_sum(&self, ctx: &mut ProcCtx, value: u64) -> TdpResult<u64> {
        let total = self.reduce_sum(ctx, 0, value)?;
        let bytes = if self.rank == 0 {
            self.bcast(ctx, 0, &total.expect("root has total").to_be_bytes())?
        } else {
            self.bcast(ctx, 0, &[])?
        };
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| TdpError::Protocol("bad allreduce payload".into()))?;
        Ok(u64::from_be_bytes(arr))
    }
}
