//! Ready-made MPI applications as simulated executables.
//!
//! Each builder returns an [`ExecImage`] whose program body is one rank
//! of the job; the rank number is taken from `argv[0]`. The images carry
//! symbol tables so a run-time tool can instrument the interesting
//! phases (this is what Parador profiles in the MPI universe, §4.3).

use crate::comm::MpiComm;
use std::sync::Arc;
use tdp_simos::{fn_program, ExecImage};

fn rank_from_args(args: &[String]) -> u32 {
    args.first().and_then(|a| a.parse().ok()).unwrap_or(0)
}

/// Token-ring program: `rounds` circuits of a counter token, with a
/// compute phase between hops. Symbols: `main`, `compute`,
/// `communicate`. Exit code = 0 when the token arrives back intact.
pub fn ring(comm: MpiComm, rounds: u32, work_per_hop: u64) -> ExecImage {
    ExecImage::new(
        ["main", "compute", "communicate"],
        Arc::new(move |args| {
            let comm = comm.clone();
            let rank = rank_from_args(args);
            fn_program(move |ctx| {
                let me = comm.rank(rank);
                let n = me.size();
                let mut ok = true;
                ctx.call("main", |ctx| {
                    for round in 0..rounds {
                        ctx.call("compute", |ctx| ctx.compute(work_per_hop));
                        let r = ctx.call("communicate", |ctx| -> Result<(), tdp_proto::TdpError> {
                            if rank == 0 {
                                // Rank 0 injects the token, then waits for it
                                // to come back around.
                                let token = (round as u64) * 1000;
                                me.send(1 % n, round, &token.to_be_bytes())?;
                                let data = me.recv(ctx, n - 1, round)?;
                                let got = u64::from_be_bytes(data.try_into().unwrap_or_default());
                                if got != token + (n as u64 - 1) {
                                    ok = false;
                                }
                            } else {
                                let data = me.recv(ctx, rank - 1, round)?;
                                let mut v = u64::from_be_bytes(data.try_into().unwrap_or_default());
                                v += 1;
                                me.send((rank + 1) % n, round, &v.to_be_bytes())?;
                            }
                            Ok(())
                        });
                        if r.is_err() {
                            ok = false;
                            break;
                        }
                    }
                });
                i32::from(!ok)
            })
        }),
    )
}

/// 1-D stencil-style program: alternating compute and halo-exchange
/// phases with a terminating allreduce. Symbols: `main`, `compute`,
/// `exchange`, `reduce_residual`. Designed to give a profiling tool a
/// clear bottleneck: `compute` burns `work` units per iteration while
/// `exchange` burns almost nothing.
pub fn stencil(comm: MpiComm, iterations: u32, work: u64) -> ExecImage {
    ExecImage::new(
        ["main", "compute", "exchange", "reduce_residual"],
        Arc::new(move |args| {
            let comm = comm.clone();
            let rank = rank_from_args(args);
            fn_program(move |ctx| {
                let me = comm.rank(rank);
                let n = me.size();
                let mut residual = 0u64;
                ctx.call("main", |ctx| {
                    for it in 0..iterations {
                        ctx.call("compute", |ctx| ctx.compute(work));
                        if n > 1 {
                            let _ =
                                ctx.call("exchange", |ctx| -> Result<(), tdp_proto::TdpError> {
                                    let left = (rank + n - 1) % n;
                                    let right = (rank + 1) % n;
                                    me.send(right, it, &[rank as u8])?;
                                    me.send(left, it + 1_000_000, &[rank as u8])?;
                                    me.recv(ctx, left, it)?;
                                    me.recv(ctx, right, it + 1_000_000)?;
                                    Ok(())
                                });
                        }
                        residual = ctx.call("reduce_residual", |ctx| {
                            me.allreduce_sum(ctx, 1).unwrap_or(0)
                        });
                    }
                });
                // Every rank contributed 1 per iteration.
                i32::from(residual != n as u64)
            })
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_expose_symbols() {
        let comm = MpiComm::new(2);
        assert_eq!(
            ring(comm.clone(), 1, 1).symbols.as_slice(),
            &["main", "compute", "communicate"]
        );
        assert_eq!(
            stencil(comm, 1, 1).symbols.as_slice(),
            &["main", "compute", "exchange", "reduce_residual"]
        );
    }
}
