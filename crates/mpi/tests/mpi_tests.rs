//! Tests of the MPI runtime on top of the simulated kernel.

use std::time::Duration;
use tdp_mpi::{apps, MpiComm};
use tdp_proto::{HostId, ProcStatus};
use tdp_simos::kernel::ProcSpec;
use tdp_simos::{fn_program, ExecImage, Os};

const T: Duration = Duration::from_secs(10);

/// Launch one process per rank on round-robin hosts; returns pids.
fn launch_all(os: &Os, hosts: &[HostId], image: ExecImage, n: u32) -> Vec<tdp_proto::Pid> {
    for h in hosts {
        os.fs().install_exec(*h, "/bin/mpi_app", image.clone());
    }
    (0..n)
        .map(|r| {
            let h = hosts[r as usize % hosts.len()];
            os.spawn(ProcSpec::new(h, "/bin/mpi_app").args([r.to_string()]))
                .unwrap()
        })
        .collect()
}

fn hosts(n: usize) -> Vec<HostId> {
    (1..=n as u32).map(HostId).collect()
}

#[test]
fn ring_completes_on_four_ranks() {
    let os = Os::new();
    let comm = MpiComm::new(4);
    let pids = launch_all(&os, &hosts(2), apps::ring(comm, 3, 10), 4);
    for pid in pids {
        assert_eq!(os.wait_terminal(pid, T).unwrap(), ProcStatus::Exited(0));
    }
}

#[test]
fn ring_single_round_two_ranks() {
    let os = Os::new();
    let comm = MpiComm::new(2);
    let pids = launch_all(&os, &hosts(1), apps::ring(comm, 1, 1), 2);
    for pid in pids {
        assert_eq!(os.wait_terminal(pid, T).unwrap(), ProcStatus::Exited(0));
    }
}

#[test]
fn stencil_completes_and_reduces() {
    let os = Os::new();
    let comm = MpiComm::new(3);
    let pids = launch_all(&os, &hosts(3), apps::stencil(comm, 5, 20), 3);
    for pid in pids {
        assert_eq!(os.wait_terminal(pid, T).unwrap(), ProcStatus::Exited(0));
    }
}

#[test]
fn stencil_single_rank() {
    let os = Os::new();
    let comm = MpiComm::new(1);
    let pids = launch_all(&os, &hosts(1), apps::stencil(comm, 3, 5), 1);
    assert_eq!(os.wait_terminal(pids[0], T).unwrap(), ProcStatus::Exited(0));
}

#[test]
fn point_to_point_and_collectives() {
    // Drive the comm API directly from two bespoke rank programs.
    let os = Os::new();
    let comm = MpiComm::new(2);
    let h = HostId(1);
    let c0 = comm.clone();
    os.fs().install_exec(
        h,
        "/bin/pair",
        ExecImage::from_fn(move |args| {
            let comm = c0.clone();
            let rank: u32 = args[0].parse().expect("rank arg");
            fn_program(move |ctx| {
                let me = comm.rank(rank);
                if rank == 0 {
                    me.send(1, 5, b"ping").unwrap();
                    let (from, data) = me.recv_any(ctx, 6).unwrap();
                    assert_eq!((from, data.as_slice()), (1, &b"pong"[..]));
                } else {
                    let data = me.recv(ctx, 0, 5).unwrap();
                    assert_eq!(data, b"ping");
                    me.send(0, 6, b"pong").unwrap();
                }
                me.barrier(ctx).unwrap();
                let v = me.bcast(ctx, 0, &[rank as u8 + 1]).unwrap();
                assert_eq!(v, vec![1]); // root's payload wins
                let total = me.allreduce_sum(ctx, (rank + 1) as u64).unwrap();
                assert_eq!(total, 3);
                0
            })
        }),
    );
    let p0 = os.spawn(ProcSpec::new(h, "/bin/pair").args(["0"])).unwrap();
    let p1 = os.spawn(ProcSpec::new(h, "/bin/pair").args(["1"])).unwrap();
    assert_eq!(os.wait_terminal(p0, T).unwrap(), ProcStatus::Exited(0));
    assert_eq!(os.wait_terminal(p1, T).unwrap(), ProcStatus::Exited(0));
}

#[test]
fn rank_blocked_in_recv_can_be_paused_and_killed() {
    // An attached tool must be able to stop a rank waiting in MPI_Recv
    // (the pause gate inside recv), and a kill must terminate it.
    let os = Os::new();
    let comm = MpiComm::new(2);
    let h = HostId(1);
    let c0 = comm.clone();
    os.fs().install_exec(
        h,
        "/bin/waiter",
        ExecImage::from_fn(move |_| {
            let comm = c0.clone();
            fn_program(move |ctx| {
                // Rank 1 never sends: blocks forever.
                let me = comm.rank(0);
                let _ = me.recv(ctx, 1, 0);
                0
            })
        }),
    );
    let pid = os.spawn(ProcSpec::new(h, "/bin/waiter")).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    os.stop_process(pid).unwrap();
    assert_eq!(os.status(pid).unwrap(), ProcStatus::Stopped);
    os.continue_process(pid).unwrap();
    os.kill(pid, 9).unwrap();
    assert_eq!(os.wait_terminal(pid, T).unwrap(), ProcStatus::Killed(9));
}

#[test]
fn ring_ranks_are_instrumentable() {
    // Attach to rank 0, instrument `compute`, verify counts — the MPI
    // universe's per-rank paradynd capability at the simos level.
    let os = Os::new();
    let comm = MpiComm::new(2);
    let h = HostId(1);
    let image = apps::ring(comm, 4, 7);
    os.fs().install_exec(h, "/bin/mpi_app", image);
    let p0 = os
        .spawn(ProcSpec::new(h, "/bin/mpi_app").args(["0"]).paused())
        .unwrap();
    let t0 = os.attach(p0).unwrap();
    t0.arm_probe("compute").unwrap();
    let p1 = os
        .spawn(ProcSpec::new(h, "/bin/mpi_app").args(["1"]))
        .unwrap();
    os.continue_process(p0).unwrap();
    assert_eq!(os.wait_terminal(p0, T).unwrap(), ProcStatus::Exited(0));
    assert_eq!(os.wait_terminal(p1, T).unwrap(), ProcStatus::Exited(0));
    let snap = t0.read_probes().unwrap();
    assert_eq!(snap.counts["compute"], 4);
    assert_eq!(snap.time["compute"], 28);
}

#[test]
fn comm_size_and_rank_bounds() {
    let comm = MpiComm::new(3);
    assert_eq!(comm.size(), 3);
    let r = comm.rank(2);
    assert_eq!(r.rank().0, 2);
    assert!(r.send(3, 0, b"x").is_err(), "out-of-range destination");
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| comm.rank(3)));
    assert!(res.is_err(), "rank out of range must panic");
}
