//! End-to-end tests of the multicast/reduction tree.

use std::time::Duration;
use tdp_mrnet::{BackEnd, FrontEnd, ReduceOp, TreeSpec};
use tdp_netsim::Network;
use tdp_proto::HostId;

const T: Duration = Duration::from_secs(5);

fn world(n_hosts: usize) -> (Network, HostId, Vec<HostId>) {
    let net = Network::new();
    let root = net.add_host();
    let hosts: Vec<HostId> = (0..n_hosts).map(|_| net.add_host()).collect();
    (net, root, hosts)
}

fn attach_all(net: &Network, hosts: &[HostId], attach: &[tdp_proto::Addr]) -> Vec<BackEnd> {
    attach
        .iter()
        .enumerate()
        .map(|(i, a)| BackEnd::connect(net, hosts[i % hosts.len()], *a).unwrap())
        .collect()
}

#[test]
fn flat_tree_multicast_and_reduce() {
    let (net, root, hosts) = world(3);
    let (fe, attach) = FrontEnd::build(
        &net,
        root,
        &hosts,
        3,
        TreeSpec {
            fanout: 4,
            op: ReduceOp::Sum,
        },
    )
    .unwrap();
    assert_eq!(attach.len(), 3);
    let mut backends = attach_all(&net, &hosts, &attach);
    fe.multicast(b"start wave 0").unwrap();
    for (i, be) in backends.iter_mut().enumerate() {
        assert_eq!(be.recv_multicast(T).unwrap(), b"start wave 0");
        be.contribute(0, (i + 1) as u64).unwrap();
    }
    assert_eq!(fe.recv_reduce(0, T).unwrap(), 1 + 2 + 3);
}

#[test]
fn deep_tree_with_small_fanout() {
    // 16 leaves, fanout 2: several interior layers.
    let (net, root, hosts) = world(4);
    let (fe, attach) = FrontEnd::build(
        &net,
        root,
        &hosts,
        16,
        TreeSpec {
            fanout: 2,
            op: ReduceOp::Sum,
        },
    )
    .unwrap();
    assert_eq!(attach.len(), 16);
    let mut backends = attach_all(&net, &hosts, &attach);
    fe.multicast(b"go").unwrap();
    for be in backends.iter_mut() {
        assert_eq!(be.recv_multicast(T).unwrap(), b"go");
        be.contribute(7, 10).unwrap();
    }
    assert_eq!(fe.recv_reduce(7, T).unwrap(), 160);
}

#[test]
fn max_reduction() {
    let (net, root, hosts) = world(2);
    let (fe, attach) = FrontEnd::build(
        &net,
        root,
        &hosts,
        5,
        TreeSpec {
            fanout: 2,
            op: ReduceOp::Max,
        },
    )
    .unwrap();
    let backends = attach_all(&net, &hosts, &attach);
    for (i, be) in backends.iter().enumerate() {
        be.contribute(0, 100 + i as u64).unwrap();
    }
    assert_eq!(fe.recv_reduce(0, T).unwrap(), 104);
}

#[test]
fn min_reduction() {
    let (net, root, hosts) = world(2);
    let (fe, attach) = FrontEnd::build(
        &net,
        root,
        &hosts,
        4,
        TreeSpec {
            fanout: 3,
            op: ReduceOp::Min,
        },
    )
    .unwrap();
    let backends = attach_all(&net, &hosts, &attach);
    for (i, be) in backends.iter().enumerate() {
        be.contribute(3, 50 - i as u64).unwrap();
    }
    assert_eq!(fe.recv_reduce(3, T).unwrap(), 47);
}

#[test]
fn multiple_waves_interleaved() {
    let (net, root, hosts) = world(2);
    let (fe, attach) = FrontEnd::build(
        &net,
        root,
        &hosts,
        4,
        TreeSpec {
            fanout: 2,
            op: ReduceOp::Sum,
        },
    )
    .unwrap();
    let backends = attach_all(&net, &hosts, &attach);
    // Contribute to waves out of order.
    for be in &backends {
        be.contribute(2, 1).unwrap();
    }
    for be in &backends {
        be.contribute(1, 2).unwrap();
    }
    assert_eq!(fe.recv_reduce(1, T).unwrap(), 8);
    assert_eq!(fe.recv_reduce(2, T).unwrap(), 4);
}

#[test]
fn sequential_multicasts_stay_ordered() {
    let (net, root, hosts) = world(2);
    let (fe, attach) = FrontEnd::build(
        &net,
        root,
        &hosts,
        4,
        TreeSpec {
            fanout: 2,
            op: ReduceOp::Sum,
        },
    )
    .unwrap();
    let mut backends = attach_all(&net, &hosts, &attach);
    for i in 0..10u8 {
        fe.multicast(&[i]).unwrap();
    }
    for be in backends.iter_mut() {
        for i in 0..10u8 {
            assert_eq!(be.recv_multicast(T).unwrap(), vec![i]);
        }
    }
}

#[test]
fn single_leaf_tree() {
    let (net, root, hosts) = world(1);
    let (fe, attach) = FrontEnd::build(&net, root, &hosts, 1, TreeSpec::default()).unwrap();
    let mut backends = attach_all(&net, &hosts, &attach);
    fe.multicast(b"solo").unwrap();
    assert_eq!(backends[0].recv_multicast(T).unwrap(), b"solo");
    backends[0].contribute(0, 42).unwrap();
    assert_eq!(fe.recv_reduce(0, T).unwrap(), 42);
}

#[test]
fn zero_leaves_rejected() {
    let (net, root, hosts) = world(1);
    assert!(FrontEnd::build(&net, root, &hosts, 0, TreeSpec::default()).is_err());
}

#[test]
fn incomplete_wave_times_out() {
    let (net, root, hosts) = world(2);
    let (fe, attach) = FrontEnd::build(
        &net,
        root,
        &hosts,
        3,
        TreeSpec {
            fanout: 2,
            op: ReduceOp::Sum,
        },
    )
    .unwrap();
    let backends = attach_all(&net, &hosts, &attach);
    backends[0].contribute(0, 1).unwrap();
    backends[1].contribute(0, 1).unwrap();
    // Third leaf never contributes.
    assert!(fe.recv_reduce(0, Duration::from_millis(80)).is_err());
}

#[test]
fn reduction_scales_to_many_leaves() {
    let (net, root, hosts) = world(8);
    let n = 64;
    let (fe, attach) = FrontEnd::build(
        &net,
        root,
        &hosts,
        n,
        TreeSpec {
            fanout: 4,
            op: ReduceOp::Sum,
        },
    )
    .unwrap();
    let backends = attach_all(&net, &hosts, &attach);
    for be in &backends {
        be.contribute(0, 1).unwrap();
    }
    assert_eq!(fe.recv_reduce(0, T).unwrap(), n as u64);
}
