//! MRNet wire packets and reduction operators.

use tdp_proto::{TdpError, TdpResult};

/// Combine operator applied at every interior node of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    /// Apply the operator.
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    /// Identity element (the accumulator seed).
    pub fn identity(self) -> u64 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Max => u64::MIN,
            ReduceOp::Min => u64::MAX,
        }
    }
}

/// A packet on a tree link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Downstream broadcast payload.
    Multicast(Vec<u8>),
    /// Upstream reduction contribution: `(wave, value, count)` where
    /// `count` is how many back-end contributions are folded into
    /// `value` (interior nodes sum counts so the root knows when a wave
    /// is complete).
    Reduce { wave: u64, value: u64, count: u32 },
}

const T_MCAST: u8 = b'M';
const T_REDUCE: u8 = b'R';

impl Packet {
    /// Encode with a 1-byte tag + fixed/length-prefixed body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Packet::Multicast(data) => {
                let mut v = Vec::with_capacity(5 + data.len());
                v.push(T_MCAST);
                v.extend_from_slice(&(data.len() as u32).to_be_bytes());
                v.extend_from_slice(data);
                v
            }
            Packet::Reduce { wave, value, count } => {
                let mut v = Vec::with_capacity(21);
                v.push(T_REDUCE);
                v.extend_from_slice(&wave.to_be_bytes());
                v.extend_from_slice(&value.to_be_bytes());
                v.extend_from_slice(&count.to_be_bytes());
                v
            }
        }
    }

    /// Decode one packet from the front of `buf`, consuming it. Returns
    /// `Ok(None)` when more bytes are needed.
    pub fn decode(buf: &mut Vec<u8>) -> TdpResult<Option<Packet>> {
        if buf.is_empty() {
            return Ok(None);
        }
        match buf[0] {
            T_MCAST => {
                if buf.len() < 5 {
                    return Ok(None);
                }
                let len = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
                if buf.len() < 5 + len {
                    return Ok(None);
                }
                let data = buf[5..5 + len].to_vec();
                buf.drain(..5 + len);
                Ok(Some(Packet::Multicast(data)))
            }
            T_REDUCE => {
                if buf.len() < 21 {
                    return Ok(None);
                }
                let wave = u64::from_be_bytes(buf[1..9].try_into().expect("8 bytes"));
                let value = u64::from_be_bytes(buf[9..17].try_into().expect("8 bytes"));
                let count = u32::from_be_bytes(buf[17..21].try_into().expect("4 bytes"));
                buf.drain(..21);
                Ok(Some(Packet::Reduce { wave, value, count }))
            }
            t => Err(TdpError::Protocol(format!("bad mrnet tag 0x{t:02x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.combine(2, 3), 5);
        assert_eq!(ReduceOp::Max.combine(2, 3), 3);
        assert_eq!(ReduceOp::Min.combine(2, 3), 2);
        assert_eq!(ReduceOp::Sum.identity(), 0);
        assert_eq!(ReduceOp::Max.combine(ReduceOp::Max.identity(), 7), 7);
        assert_eq!(ReduceOp::Min.combine(ReduceOp::Min.identity(), 7), 7);
    }

    #[test]
    fn packet_roundtrip() {
        for p in [
            Packet::Multicast(b"hello".to_vec()),
            Packet::Multicast(Vec::new()),
            Packet::Reduce {
                wave: 3,
                value: 999,
                count: 4,
            },
        ] {
            let mut buf = p.encode();
            let got = Packet::decode(&mut buf).unwrap().unwrap();
            assert_eq!(got, p);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn partial_packets_wait() {
        let enc = Packet::Multicast(b"abcdef".to_vec()).encode();
        for cut in 0..enc.len() {
            let mut buf = enc[..cut].to_vec();
            assert_eq!(Packet::decode(&mut buf).unwrap(), None, "cut={cut}");
        }
    }

    #[test]
    fn pipelined_packets() {
        let mut buf = Packet::Multicast(b"a".to_vec()).encode();
        buf.extend(
            Packet::Reduce {
                wave: 1,
                value: 2,
                count: 1,
            }
            .encode(),
        );
        assert_eq!(
            Packet::decode(&mut buf).unwrap().unwrap(),
            Packet::Multicast(b"a".to_vec())
        );
        assert_eq!(
            Packet::decode(&mut buf).unwrap().unwrap(),
            Packet::Reduce {
                wave: 1,
                value: 2,
                count: 1
            }
        );
    }

    #[test]
    fn bad_tag_errors() {
        let mut buf = vec![0x42];
        assert!(Packet::decode(&mut buf).is_err());
    }
}
