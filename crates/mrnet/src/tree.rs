//! Tree construction and node runtime.

use crate::packet::{Packet, ReduceOp};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tdp_netsim::{Conn, ConnRx, ConnTx, Network};
use tdp_proto::{Addr, HostId, TdpError, TdpResult};
use tdp_sync::{Condvar, Mutex};

/// Shape of the reduction tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeSpec {
    /// Maximum children per node (≥ 1).
    pub fanout: usize,
    /// Combine operator for upstream reductions.
    pub op: ReduceOp,
}

impl Default for TreeSpec {
    fn default() -> Self {
        TreeSpec {
            fanout: 4,
            op: ReduceOp::Sum,
        }
    }
}

/// Accumulates per-wave contributions until a threshold of leaves is
/// reached.
struct Accumulator {
    op: ReduceOp,
    threshold: u32,
    waves: Mutex<HashMap<u64, (u64, u32)>>,
    done: Mutex<HashMap<u64, u64>>,
    cv: Condvar,
}

impl Accumulator {
    fn new(op: ReduceOp, threshold: u32) -> Arc<Accumulator> {
        Arc::new(Accumulator {
            op,
            threshold,
            waves: Mutex::new(HashMap::new()),
            done: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        })
    }

    /// Fold in a contribution; returns the completed `(value, count)`
    /// when this contribution finishes the wave.
    fn add(&self, wave: u64, value: u64, count: u32) -> Option<(u64, u32)> {
        let mut waves = self.waves.lock();
        let entry = waves.entry(wave).or_insert((self.op.identity(), 0));
        entry.0 = self.op.combine(entry.0, value);
        entry.1 += count;
        if entry.1 >= self.threshold {
            let (v, c) = waves.remove(&wave).expect("present");
            Some((v, c))
        } else {
            None
        }
    }

    /// Record a completed wave for a blocking reader (front-end only).
    fn complete(&self, wave: u64, value: u64) {
        self.done.lock().insert(wave, value);
        self.cv.notify_all();
    }

    fn wait(&self, wave: u64, timeout: Duration) -> TdpResult<u64> {
        let deadline = Instant::now() + timeout;
        let mut done = self.done.lock();
        loop {
            if let Some(v) = done.remove(&wave) {
                return Ok(v);
            }
            if self.cv.wait_until(&mut done, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
    }
}

/// Fan a leaf count into at most `fanout` near-equal groups.
fn split_groups(n: usize, fanout: usize) -> Vec<usize> {
    let k = fanout.min(n).max(1);
    let base = n / k;
    let extra = n % k;
    (0..k).map(|i| base + usize::from(i < extra)).collect()
}

/// The tool front-end's root of the tree.
pub struct FrontEnd {
    addr: Addr,
    children: Arc<(Mutex<Vec<Arc<ConnTx>>>, Condvar)>,
    expected_children: usize,
    acc: Arc<Accumulator>,
    n_leaves: u32,
}

impl FrontEnd {
    /// Build a tree rooted at `root_host` with `n_leaves` attachment
    /// points. Interior nodes are placed round-robin on
    /// `interior_hosts` (pass the execution hosts; falls back to the
    /// root host when empty). Returns the front-end and one attach
    /// address per leaf, in leaf order.
    pub fn build(
        net: &Network,
        root_host: HostId,
        interior_hosts: &[HostId],
        n_leaves: usize,
        spec: TreeSpec,
    ) -> TdpResult<(FrontEnd, Vec<Addr>)> {
        if n_leaves == 0 {
            return Err(TdpError::Substrate(
                "mrnet tree needs at least one leaf".into(),
            ));
        }
        if spec.fanout == 0 {
            return Err(TdpError::Substrate("mrnet fanout must be >= 1".into()));
        }
        let hosts: Vec<HostId> = if interior_hosts.is_empty() {
            vec![root_host]
        } else {
            interior_hosts.to_vec()
        };
        let listener = net.listen(root_host, 0)?;
        let addr = listener.local_addr();
        let acc = Accumulator::new(spec.op, n_leaves as u32);
        let children = Arc::new((Mutex::new(Vec::new()), Condvar::new()));

        // Plan the first layer below the root.
        let (expected_children, attach) = if n_leaves <= spec.fanout {
            (n_leaves, vec![addr; n_leaves])
        } else {
            let groups = split_groups(n_leaves, spec.fanout);
            let mut next_host = 0usize;
            let mut attach = Vec::with_capacity(n_leaves);
            for g in &groups {
                attach.extend(build_subtree(net, &hosts, &mut next_host, addr, *g, spec)?);
            }
            (groups.len(), attach)
        };

        // Root accept/collect loop.
        let acc2 = acc.clone();
        let children2 = children.clone();
        thread::Builder::new()
            .name("mrnet-root".to_string())
            .spawn(move || {
                for _ in 0..expected_children {
                    let Ok(conn) = listener.accept() else { return };
                    let (tx, rx) = conn.split();
                    {
                        let (lock, cv) = &*children2;
                        lock.lock().push(Arc::new(tx));
                        cv.notify_all();
                    }
                    let acc = acc2.clone();
                    thread::Builder::new()
                        .name("mrnet-root-reader".to_string())
                        .spawn(move || {
                            read_reduces(rx, move |wave, value, count| {
                                if let Some((v, _)) = acc.add(wave, value, count) {
                                    acc.complete(wave, v);
                                }
                            })
                        })
                        .expect("spawn reader");
                }
            })
            .map_err(|e| TdpError::Substrate(format!("spawn mrnet root: {e}")))?;

        Ok((
            FrontEnd {
                addr,
                children,
                expected_children,
                acc,
                n_leaves: n_leaves as u32,
            },
            attach,
        ))
    }

    /// Root address (diagnostics).
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Number of leaf attachment points.
    pub fn leaf_count(&self) -> u32 {
        self.n_leaves
    }

    /// Broadcast a packet to every back-end. Blocks until the first
    /// layer of the tree has attached.
    pub fn multicast(&self, data: &[u8]) -> TdpResult<()> {
        let (lock, cv) = &*self.children;
        let mut kids = lock.lock();
        let deadline = Instant::now() + Duration::from_secs(10);
        while kids.len() < self.expected_children {
            if cv.wait_until(&mut kids, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
        // Snapshot the senders and release the lock before touching the
        // network: a child applying netsim latency/backpressure must not
        // stall concurrent `attach` notifications or other multicasters.
        let txs: Vec<Arc<ConnTx>> = kids.clone();
        drop(kids);
        let pkt = Packet::Multicast(data.to_vec()).encode();
        for tx in &txs {
            tx.send(&pkt)?;
        }
        Ok(())
    }

    /// Wait for wave `wave` to complete (every leaf contributed) and
    /// return the reduced value.
    pub fn recv_reduce(&self, wave: u64, timeout: Duration) -> TdpResult<u64> {
        self.acc.wait(wave, timeout)
    }
}

/// Recursively spawn an interior node and its subtree, returning the
/// leaf attach addresses it provides.
fn build_subtree(
    net: &Network,
    hosts: &[HostId],
    next_host: &mut usize,
    parent: Addr,
    n_leaves: usize,
    spec: TreeSpec,
) -> TdpResult<Vec<Addr>> {
    let host = hosts[*next_host % hosts.len()];
    *next_host += 1;
    let listener = net.listen(host, 0)?;
    let addr = listener.local_addr();
    let upstream = net.connect(host, parent)?;

    let (expected_children, attach, child_plans) = if n_leaves <= spec.fanout {
        (n_leaves, vec![addr; n_leaves], Vec::new())
    } else {
        (
            split_groups(n_leaves, spec.fanout).len(),
            Vec::new(),
            split_groups(n_leaves, spec.fanout),
        )
    };

    spawn_node_runtime(
        listener,
        upstream,
        expected_children,
        n_leaves as u32,
        spec.op,
    );

    if child_plans.is_empty() {
        Ok(attach)
    } else {
        let mut out = Vec::with_capacity(n_leaves);
        for g in child_plans {
            out.extend(build_subtree(net, hosts, next_host, addr, g, spec)?);
        }
        Ok(out)
    }
}

/// The relay loops of one interior node.
fn spawn_node_runtime(
    listener: tdp_netsim::Listener,
    upstream: Conn,
    expected_children: usize,
    leaf_count: u32,
    op: ReduceOp,
) {
    let (utx, urx) = upstream.split();
    let acc = Accumulator::new(op, leaf_count);
    thread::Builder::new()
        .name("mrnet-node".to_string())
        .spawn(move || {
            // Phase 1: collect children. The sender list is only ever
            // touched from this thread (accept here, forward in phase
            // 3), so it needs no lock at all.
            let mut child_txs: Vec<ConnTx> = Vec::new();
            let mut rxs = Vec::new();
            for _ in 0..expected_children {
                let Ok(conn) = listener.accept() else { return };
                let (tx, rx) = conn.split();
                child_txs.push(tx);
                rxs.push(rx);
            }
            // Phase 2: per-child upstream reduction readers.
            let utx = Arc::new(utx);
            for rx in rxs {
                let acc = acc.clone();
                let utx = utx.clone();
                thread::Builder::new()
                    .name("mrnet-node-reader".to_string())
                    .spawn(move || {
                        read_reduces(rx, move |wave, value, count| {
                            if let Some((v, c)) = acc.add(wave, value, count) {
                                let _ = utx.send(
                                    &Packet::Reduce {
                                        wave,
                                        value: v,
                                        count: c,
                                    }
                                    .encode(),
                                );
                            }
                        })
                    })
                    .expect("spawn node reader");
            }
            // Phase 3: forward multicasts downstream (bytes queued while
            // we were accepting are drained now, in order).
            let mut urx = urx;
            let mut buf = Vec::new();
            loop {
                match urx.recv() {
                    Ok(chunk) => {
                        buf.extend_from_slice(&chunk);
                        loop {
                            match Packet::decode(&mut buf) {
                                Ok(Some(p @ Packet::Multicast(_))) => {
                                    let enc = p.encode();
                                    for tx in &child_txs {
                                        let _ = tx.send(&enc);
                                    }
                                }
                                Ok(Some(_)) | Ok(None) => break,
                                Err(_) => return,
                            }
                        }
                    }
                    Err(_) => {
                        // Parent gone: propagate EOF downstream.
                        for tx in &child_txs {
                            tx.close();
                        }
                        return;
                    }
                }
            }
        })
        .expect("spawn mrnet node");
}

/// Read loop decoding upstream `Reduce` packets from one child.
fn read_reduces(mut rx: ConnRx, mut on_reduce: impl FnMut(u64, u64, u32)) {
    let mut buf = Vec::new();
    loop {
        match rx.recv() {
            Ok(chunk) => {
                buf.extend_from_slice(&chunk);
                loop {
                    match Packet::decode(&mut buf) {
                        Ok(Some(Packet::Reduce { wave, value, count })) => {
                            on_reduce(wave, value, count)
                        }
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(_) => return,
                    }
                }
            }
            Err(_) => return,
        }
    }
}

/// A tool daemon's endpoint in the tree.
pub struct BackEnd {
    conn: Conn,
    buf: Vec<u8>,
}

impl BackEnd {
    /// Attach to the tree at the given attach address (as handed out by
    /// [`FrontEnd::build`]).
    pub fn connect(net: &Network, from: HostId, attach: Addr) -> TdpResult<BackEnd> {
        Ok(BackEnd {
            conn: net.connect(from, attach)?,
            buf: Vec::new(),
        })
    }

    /// Receive the next multicast payload.
    pub fn recv_multicast(&mut self, timeout: Duration) -> TdpResult<Vec<u8>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(Packet::Multicast(data)) = Packet::decode(&mut self.buf)? {
                return Ok(data);
            }
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(TdpError::Timeout)?;
            let chunk = self.conn.recv_timeout(remaining)?;
            self.buf.extend_from_slice(&chunk);
        }
    }

    /// Contribute this daemon's value to a reduction wave.
    pub fn contribute(&self, wave: u64, value: u64) -> TdpResult<()> {
        self.conn.send(
            &Packet::Reduce {
                wave,
                value,
                count: 1,
            }
            .encode(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_groups_balances() {
        assert_eq!(split_groups(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(split_groups(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_groups(3, 4), vec![1, 1, 1]);
        assert_eq!(split_groups(1, 4), vec![1]);
        assert_eq!(split_groups(5, 1), vec![5]);
    }

    #[test]
    fn accumulator_thresholds() {
        let acc = Accumulator::new(ReduceOp::Sum, 3);
        assert_eq!(acc.add(0, 5, 1), None);
        assert_eq!(acc.add(0, 6, 1), None);
        assert_eq!(acc.add(0, 7, 1), Some((18, 3)));
        // Waves are independent.
        assert_eq!(acc.add(1, 1, 2), None);
        assert_eq!(acc.add(1, 2, 1), Some((3, 3)));
    }
}
