//! # tdp-mrnet — a software multicast/reduction network
//!
//! The paper's *auxiliary services* requirement: "There are entities in
//! addition to the RM and RT that may be required for the proper
//! execution of a RT in a distributed environment. For example, software
//! multicast/reduction networks are crucial to scalable tool use. The RM
//! must be aware of and willing to launch this second kind of
//! non-application entity." (§2, citing MRNet — reference 16 of the paper.)
//!
//! This crate is that entity: a tree of relay nodes between a tool
//! front-end and its per-host daemons.
//!
//! * **Downstream** the front-end [`FrontEnd::multicast`]s byte packets;
//!   every back-end receives each packet once, in order.
//! * **Upstream** back-ends contribute `u64` values to numbered
//!   reduction *waves*; interior nodes combine contributions with the
//!   tree's [`ReduceOp`] so the front-end receives one value per wave
//!   regardless of how many daemons participate.
//!
//! The tree is built with a configurable fan-out; interior nodes are
//! placed round-robin over the provided hosts, exactly how an RM would
//! launch them as auxiliary processes next to the tool daemons.

mod packet;
mod tree;

pub use packet::{Packet, ReduceOp};
pub use tree::{BackEnd, FrontEnd, TreeSpec};
