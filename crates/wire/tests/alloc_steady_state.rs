//! ISSUE 9 acceptance: a steady-state put/get round trip over the
//! epoll backend performs **zero heap allocations**.
//!
//! The whole hot path is built to recycle: `send_msg` encodes into a
//! [`BufferPool`]ed buffer that returns to the pool once `writev` has
//! flushed it; the receive side drains into a retained decoder buffer,
//! decodes key/value strings out of a per-connection scratch pool, and
//! `recycle_msg` puts consumed strings back. This test pins the claim
//! with a counting `#[global_allocator]`: after a warm-up phase grows
//! every pool to its steady footprint, a measured window of full
//! request/reply round trips must not touch the allocator at all.
//!
//! Lives in its own integration-test binary because a global allocator
//! is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tdp_proto::{ContextId, HostId, Message, Reply};
use tdp_wire::{EpollConfig, EpollTransport, Transport};

/// Forwards everything to [`System`], counting allocation entry points
/// (alloc/realloc/alloc_zeroed — frees are irrelevant to the claim).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates to `System` with the caller's exact
// arguments; the only addition is a relaxed counter bump, which cannot
// allocate or otherwise violate the GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the caller's layout unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by this allocator with `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the caller's pointer and layout unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the caller's layout unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_put_get_round_trip_allocates_nothing() {
    let t = EpollTransport::with_config(EpollConfig::default()).unwrap();
    let lis = t.listen(HostId(1), 0).unwrap();
    let client = t.connect(HostId(0), &lis.local_endpoint()).unwrap();
    let server = lis.accept().unwrap();
    lis.close();

    let (client_tx, mut client_rx) = client.split();
    let (server_tx, mut server_rx) = server.split();

    // The request/reply set a real session cycles through — built once;
    // steady state only ever borrows them.
    let put = Message::Put {
        ctx: ContextId(7),
        key: "beam.width".into(),
        value: "0.125".into(),
    };
    let get = Message::Get {
        ctx: ContextId(7),
        key: "beam.width".into(),
        blocking: false,
    };
    let ok = Message::Reply(Reply::Ok);
    let value = Message::Reply(Reply::Value {
        key: "beam.width".into(),
        value: "0.125".into(),
    });

    // One full put/get round trip, driven single-threaded: both ends
    // camp on their own socket (direct read), so the exchange never
    // leaves this thread. Consumed messages go back to each
    // connection's scratch pool.
    let mut round_trip = || {
        client_tx.send_msg(&put).unwrap();
        let m = server_rx.recv_msg().unwrap();
        assert!(matches!(m, Message::Put { .. }));
        server_rx.recycle_msg(m);
        server_tx.send_msg(&ok).unwrap();
        let m = client_rx.recv_msg().unwrap();
        assert!(matches!(m, Message::Reply(Reply::Ok)));
        client_rx.recycle_msg(m);

        client_tx.send_msg(&get).unwrap();
        let m = server_rx.recv_msg().unwrap();
        assert!(matches!(m, Message::Get { .. }));
        server_rx.recycle_msg(m);
        server_tx.send_msg(&value).unwrap();
        let m = client_rx.recv_msg().unwrap();
        assert!(matches!(m, Message::Reply(Reply::Value { .. })));
        client_rx.recycle_msg(m);
    };

    // Warm-up: grows the buffer pool, the decoder buffers, the scratch
    // string pools, and every queue to steady-state capacity.
    for _ in 0..256 {
        round_trip();
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..256 {
        round_trip();
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state put/get must not touch the heap \
         ({} allocations across 256 warm round trips)",
        after - before
    );
}
