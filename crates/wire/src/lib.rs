//! `tdp-wire`: the message transport layer of the TDP workspace.
//!
//! Every protocol component above this crate (the attribute-space
//! servers and clients, `tdp-core`'s `TdpHandle`) exchanges framed
//! [`Message`]s over an abstract connection. This crate defines that
//! abstraction — [`WireConn`] / [`WireTx`] / [`WireRx`] /
//! [`WireListener`], produced by a [`Transport`] — and ships three
//! backends:
//!
//! * [`sim`] — an adapter over `tdp-netsim`'s in-memory fabric, keeping
//!   the simulated topology, firewalls and latency models;
//! * [`tcp`] — real `std::net` TCP sockets on loopback, with an
//!   incremental streaming decoder ([`tdp_proto::FrameDecoder`]),
//!   per-connection write coalescing behind a bounded outbound queue
//!   (backpressure), configurable read/write timeouts, and fail-fast
//!   close semantics matching netsim's;
//! * [`epoll`] — the same loopback sockets multiplexed onto sharded
//!   `epoll` reactor threads plus a worker pool (see [`reactor`]),
//!   with a buffer pool making steady-state put/get allocation-free,
//!   so thread count stays O(shards + workers), not O(connections).
//!
//! The backends are observably equivalent to the layers above: the
//! same scenario driven over any of them produces the same TDP call
//! trace.

// The only crate in the workspace allowed to use `unsafe` (the raw
// epoll/eventfd/fcntl FFI in `sys`); every unsafe operation must be
// explicit even inside unsafe fns, and every block carries a
// `// SAFETY:` comment (clippy::undocumented_unsafe_blocks).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod endpoint;
pub mod epoll;
pub(crate) mod flow;
#[cfg(all(loom, test))]
mod loom_models;
pub(crate) mod pool;
pub(crate) mod reactor;
pub mod sim;
pub mod sys;
pub mod tcp;

pub use endpoint::Endpoint;
pub use epoll::{EpollConfig, EpollTransport};
pub use sim::SimTransport;
pub use tcp::{tcp_connect_via, TcpConfig, TcpProxy, TcpTransport};

use std::time::{Duration, Instant};
use tdp_proto::{HostId, Message, TdpError, TdpResult};
use tdp_sync::Arc;

/// Send half of a connection. Object-safe; shared behind [`WireTx`].
pub trait TxApi: Send + Sync {
    /// Queue one framed message. May block for backpressure; fails fast
    /// once the connection is closed.
    fn send_msg(&self, msg: &Message) -> TdpResult<()>;
    /// Close the connection. Pending sends are abandoned; the peer sees
    /// EOF. Idempotent.
    fn close(&self);
}

/// Receive half of a connection. Object-safe; owned by [`WireRx`].
pub trait RxApi: Send {
    /// Blocking framed receive; `deadline` bounds the wait.
    fn recv_msg_deadline(&mut self, deadline: Option<Instant>) -> TdpResult<Message>;
    /// Non-blocking framed receive: `Ok(None)` when no complete message
    /// has arrived yet.
    fn try_recv_msg(&mut self) -> TdpResult<Option<Message>>;
    /// Hand a consumed message's string buffers back to the decoder's
    /// scratch pool, so the next decode on this connection reuses them
    /// instead of allocating. Purely an optimisation — backends without
    /// a scratch pool just drop the message.
    fn recycle_msg(&mut self, msg: Message) {
        drop(msg);
    }
}

/// A passive listener. Object-safe; shared behind [`WireListener`].
pub trait ListenerApi: Send + Sync {
    /// Block for the next inbound connection.
    fn accept(&self) -> TdpResult<WireConn>;
    /// Where this listener is bound, in transport terms.
    fn local_endpoint(&self) -> Endpoint;
    /// Stop accepting; blocked `accept` calls return an error.
    fn close(&self);
}

/// Clonable send handle — multiple threads may write to one connection.
#[derive(Clone)]
pub struct WireTx {
    inner: Arc<dyn TxApi>,
}

impl WireTx {
    pub fn new(inner: Arc<dyn TxApi>) -> WireTx {
        WireTx { inner }
    }

    pub fn send_msg(&self, msg: &Message) -> TdpResult<()> {
        self.inner.send_msg(msg)
    }

    pub fn close(&self) {
        self.inner.close();
    }
}

/// Exclusive receive handle (framed reads keep per-connection decoder
/// state).
pub struct WireRx {
    inner: Box<dyn RxApi>,
}

impl WireRx {
    pub fn new(inner: Box<dyn RxApi>) -> WireRx {
        WireRx { inner }
    }

    pub fn recv_msg(&mut self) -> TdpResult<Message> {
        self.inner.recv_msg_deadline(None)
    }

    pub fn recv_msg_timeout(&mut self, timeout: Duration) -> TdpResult<Message> {
        self.inner.recv_msg_deadline(Some(Instant::now() + timeout))
    }

    pub fn try_recv_msg(&mut self) -> TdpResult<Option<Message>> {
        self.inner.try_recv_msg()
    }

    /// Return a consumed message's buffers for reuse — see
    /// [`RxApi::recycle_msg`].
    pub fn recycle_msg(&mut self, msg: Message) {
        self.inner.recycle_msg(msg);
    }
}

/// An established connection over either backend.
pub struct WireConn {
    tx: WireTx,
    rx: WireRx,
    local: Endpoint,
    peer: Endpoint,
    /// Logical host of the peer: carried by the address on the simulated
    /// fabric, declared by the `Hello` handshake over TCP. `None` on the
    /// client side of a TCP connection (the dialled server never
    /// introduces itself — the client already knows whom it called).
    peer_host: Option<HostId>,
}

impl WireConn {
    pub fn from_parts(
        tx: WireTx,
        rx: WireRx,
        local: Endpoint,
        peer: Endpoint,
        peer_host: Option<HostId>,
    ) -> WireConn {
        WireConn {
            tx,
            rx,
            local,
            peer,
            peer_host,
        }
    }

    pub fn local_endpoint(&self) -> Endpoint {
        self.local
    }

    pub fn peer_endpoint(&self) -> Endpoint {
        self.peer
    }

    /// Logical host of the peer, when known (see field docs).
    pub fn peer_host(&self) -> Option<HostId> {
        self.peer_host
    }

    pub fn send_msg(&self, msg: &Message) -> TdpResult<()> {
        self.tx.send_msg(msg)
    }

    pub fn recv_msg(&mut self) -> TdpResult<Message> {
        self.rx.recv_msg()
    }

    pub fn recv_msg_timeout(&mut self, timeout: Duration) -> TdpResult<Message> {
        self.rx.recv_msg_timeout(timeout)
    }

    pub fn try_recv_msg(&mut self) -> TdpResult<Option<Message>> {
        self.rx.try_recv_msg()
    }

    /// A clonable handle onto the send half (the connection itself stays
    /// intact).
    pub fn sender(&self) -> WireTx {
        self.tx.clone()
    }

    pub fn close(&self) {
        self.tx.close();
    }

    /// Split into independently owned halves, so a server can fan
    /// replies in from other sessions while one thread blocks reading.
    pub fn split(self) -> (WireTx, WireRx) {
        (self.tx, self.rx)
    }
}

impl std::fmt::Debug for WireConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WireConn({} <-> {})", self.local, self.peer)
    }
}

/// Clonable listener handle.
#[derive(Clone)]
pub struct WireListener {
    inner: Arc<dyn ListenerApi>,
}

impl WireListener {
    pub fn new(inner: Arc<dyn ListenerApi>) -> WireListener {
        WireListener { inner }
    }

    pub fn accept(&self) -> TdpResult<WireConn> {
        self.inner.accept()
    }

    pub fn local_endpoint(&self) -> Endpoint {
        self.inner.local_endpoint()
    }

    pub fn close(&self) {
        self.inner.close();
    }
}

/// A connection factory: one per backend.
///
/// `from` is the logical host the connection originates on — the
/// simulated backend uses it to pick the source address (and so the
/// firewall rules that apply); the TCP backend announces it to the
/// server in the `Hello` handshake.
pub trait Transport: Send + Sync {
    /// Bind a listener. `port` is the logical port (the TCP backend
    /// always binds an ephemeral loopback port; callers map logical to
    /// real addresses — see `tdp-core`'s resolver).
    fn listen(&self, host: HostId, port: u16) -> TdpResult<WireListener>;
    /// Open a connection from logical host `from` to `to`.
    fn connect(&self, from: HostId, to: &Endpoint) -> TdpResult<WireConn>;
}

pub(crate) fn protocol_err(e: tdp_proto::FrameError) -> TdpError {
    TdpError::Protocol(e.to_string())
}

/// Names of this process's live wire-layer OS threads (reactor,
/// workers, TCP writers, accept threads, proxies — every thread this
/// crate spawns is named `wire-…`). Linux-only by way of `/proc`; used
/// by the scaling soak tests and the B8 bench to demonstrate that the
/// epoll backend holds thread count at O(pool size) rather than
/// O(connections). Note `/proc` truncates names to 15 bytes.
pub fn wire_threads() -> Vec<String> {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return Vec::new();
    };
    tasks
        .filter_map(|t| std::fs::read_to_string(t.ok()?.path().join("comm")).ok())
        .map(|comm| comm.trim_end().to_string())
        .filter(|comm| comm.starts_with("wire-"))
        .collect()
}

/// Count of live wire-layer OS threads — see [`wire_threads`].
pub fn wire_thread_count() -> usize {
    wire_threads().len()
}

static STALL_KILLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

pub(crate) fn record_stall_kill() {
    STALL_KILLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Process-wide count of connections this crate has killed because a
/// peer stopped draining for longer than the write-stall timeout (the
/// epoll flow's outbox stall and the TCP writer's socket write
/// timeout). A monotone counter, never reset: ops KPI consumers diff
/// successive samples.
pub fn stall_kill_count() -> u64 {
    STALL_KILLS.load(std::sync::atomic::Ordering::Relaxed)
}
