//! Reactor backend: framed [`Message`] transport over loopback TCP,
//! driven by a Linux `epoll` event loop instead of per-connection
//! threads.
//!
//! The TCP backend ([`crate::tcp`]) spends two OS threads per
//! connection — the blocking reader (the caller parked in `read`) plus
//! the coalescing writer thread — which caps how many attribute-space
//! sessions one process can hold long before the NIC is busy. This
//! backend keeps the exact same observable contract (`Hello` handshake,
//! streaming [`FrameDecoder`] reassembly, bounded-queue backpressure,
//! fail-fast close, byte-relay proxy interop) but serves *all*
//! connections from a set of reactor shards (each with its own epoll
//! set, eventfd, and worker-pool slice; connections hashed to a shard
//! at accept/dial) — see [`crate::reactor`] for the readiness model.
//! Receivers either camp directly on their own fd or park on a condvar
//! fed by the owning shard, so a process can hold thousands of
//! sessions with a fixed, config-derived thread budget.
//!
//! Listeners keep one blocking accept thread each (accept rates are
//! tiny and a serial handshake keeps establishment ordered — the same
//! trade the TCP backend makes); only per-connection threads are gone.

use crate::flow::ConnTuning;
use crate::pool::BufferPool;
use crate::reactor::{ConnState, ReactorSet};
use crate::tcp::{dial_via_proxy, read_hello, spawn_real_listener};
use crate::{Endpoint, RxApi, Transport, TxApi, WireConn, WireListener, WireRx, WireTx};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};
use tdp_proto::{
    encode_frame, encode_frame_into, Addr, FrameDecoder, HostId, Message, TdpError, TdpResult,
};
use tdp_sync::Arc;

/// Tunables for the epoll backend.
#[derive(Debug, Clone)]
pub struct EpollConfig {
    /// Reactor shards. Each shard owns its own epoll set, wake eventfd,
    /// worker-pool slice, and connection table; connections are hashed
    /// to a shard at accept/dial time, so shards share no locks on the
    /// put/get path and readiness scales across cores. Defaults to
    /// `std::thread::available_parallelism()` (capped at 8); the
    /// `TDP_WIRE_REACTORS` environment variable overrides the default
    /// (CI uses it to exercise both the single- and multi-shard paths).
    pub reactors: usize,
    /// Pool threads draining readiness waves, split across the reactor
    /// shards (each shard keeps at least one; the reactor threads
    /// themselves handle lone events — the latency path). Defaults to
    /// `available_parallelism()` clamped to `2..=8`. The whole
    /// transport runs on `reactors + workers` IO threads regardless of
    /// connection count.
    pub workers: usize,
    /// Default bound on a blocking `recv_msg` (`None` = wait forever).
    pub read_timeout: Option<Duration>,
    /// How long a backpressured `send_msg` may wait on a peer that has
    /// stopped draining before the connection is killed.
    pub write_timeout: Duration,
    /// Dial timeout.
    pub connect_timeout: Duration,
    /// How long the accept side waits for the `Hello` frame.
    pub handshake_timeout: Duration,
    /// Inbound bound: decoded messages held per connection before
    /// `EPOLLIN` is paused and TCP flow control pushes back on the peer.
    pub inbox_messages: usize,
    /// Outbound bound, in bytes. A full outbox blocks `send_msg`
    /// (backpressure).
    pub outbox_bytes: usize,
}

impl Default for EpollConfig {
    fn default() -> EpollConfig {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        EpollConfig {
            reactors: reactors_from_env().unwrap_or(parallelism.min(8)),
            workers: parallelism.clamp(2, 8),
            read_timeout: None,
            write_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(2),
            inbox_messages: 1024,
            outbox_bytes: 256 * 1024,
        }
    }
}

/// `TDP_WIRE_REACTORS` override for the default shard count.
fn reactors_from_env() -> Option<usize> {
    std::env::var("TDP_WIRE_REACTORS")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n >= 1)
}

struct EpollShared {
    cfg: EpollConfig,
    reactors: ReactorSet,
    pool: Arc<BufferPool>,
}

impl Drop for EpollShared {
    fn drop(&mut self) {
        self.reactors.shutdown();
    }
}

/// Transport over real loopback TCP sockets, multiplexed onto one
/// epoll reactor. Cheap to clone; all clones share the reactor. Keep
/// the transport alive while its connections are in use — connections
/// outliving it stop receiving readiness service.
#[derive(Clone)]
pub struct EpollTransport {
    shared: Arc<EpollShared>,
}

impl EpollTransport {
    pub fn new() -> TdpResult<EpollTransport> {
        EpollTransport::with_config(EpollConfig::default())
    }

    pub fn with_config(cfg: EpollConfig) -> TdpResult<EpollTransport> {
        let reactors = ReactorSet::start(cfg.reactors.max(1), cfg.workers)?;
        let pool = BufferPool::new();
        Ok(EpollTransport {
            shared: Arc::new(EpollShared {
                cfg,
                reactors,
                pool,
            }),
        })
    }

    pub fn config(&self) -> &EpollConfig {
        &self.shared.cfg
    }

    fn tuning(&self) -> ConnTuning {
        let cfg = &self.shared.cfg;
        ConnTuning {
            inbox_messages: cfg.inbox_messages.max(1),
            outbox_bytes: cfg.outbox_bytes.max(1),
            write_stall: cfg.write_timeout,
            read_timeout: cfg.read_timeout,
        }
    }

    /// Adopt an established, handshake-complete stream: register it
    /// with the reactor and wrap it as a [`WireConn`]. `leftover` holds
    /// bytes the handshake over-read past its frame.
    fn adopt(
        &self,
        stream: TcpStream,
        peer_host: Option<HostId>,
        leftover: FrameDecoder,
    ) -> TdpResult<WireConn> {
        let sub = |e: std::io::Error| TdpError::Substrate(format!("epoll setup: {e}"));
        stream.set_nodelay(true).map_err(sub)?;
        let local = Endpoint::Tcp(stream.local_addr().map_err(sub)?);
        let peer = Endpoint::Tcp(stream.peer_addr().map_err(sub)?);
        let conn = self
            .shared
            .reactors
            .register(stream, leftover, self.tuning())?;
        Ok(WireConn::from_parts(
            WireTx::new(Arc::new(EpollTx {
                conn: conn.clone(),
                pool: self.shared.pool.clone(),
            })),
            WireRx::new(Box::new(EpollRx { conn })),
            local,
            peer,
            peer_host,
        ))
    }

    /// Finish the client side on an established stream: introduce
    /// ourselves with `Hello` (still blocking — the socket goes
    /// non-blocking when it joins the reactor), then adopt.
    fn client_over(&self, stream: TcpStream, from: HostId) -> TdpResult<WireConn> {
        stream
            .set_write_timeout(Some(self.shared.cfg.write_timeout))
            .map_err(|e| TdpError::Substrate(format!("epoll set timeout: {e}")))?;
        use std::io::Write;
        (&stream)
            .write_all(&encode_frame(&Message::Hello { host: from }))
            .map_err(|_| TdpError::Disconnected)?;
        self.adopt(stream, None, FrameDecoder::new())
    }

    /// Open a reactor-managed [`WireConn`] to the logical `target`
    /// through the byte-relay proxy at `proxy` (the §2.4 crossing —
    /// same `CONNECT` protocol as [`crate::tcp_connect_via`]).
    pub fn connect_via(
        &self,
        proxy: SocketAddr,
        target: Addr,
        from: HostId,
    ) -> TdpResult<WireConn> {
        let stream = dial_via_proxy(proxy, target, self.shared.cfg.connect_timeout)?;
        self.client_over(stream, from)
    }
}

impl Transport for EpollTransport {
    /// Bind a loopback listener. Like the TCP backend, the logical
    /// `port` is ignored — real ports are ephemeral and callers map
    /// logical to real addresses.
    fn listen(&self, _host: HostId, _port: u16) -> TdpResult<WireListener> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| TdpError::Substrate(format!("epoll bind: {e}")))?;
        let t = self.clone();
        let handshake_timeout = self.shared.cfg.handshake_timeout;
        spawn_real_listener(listener, "wire-epoll-accept", move |stream| {
            let (host, leftover) = read_hello(&stream, handshake_timeout)?;
            t.adopt(stream, Some(host), leftover)
        })
    }

    fn connect(&self, from: HostId, to: &Endpoint) -> TdpResult<WireConn> {
        let sa = to
            .as_tcp()
            .ok_or_else(|| TdpError::Substrate(format!("epoll transport cannot dial {to}")))?;
        let stream = TcpStream::connect_timeout(&sa, self.shared.cfg.connect_timeout)
            .map_err(|e| TdpError::Substrate(format!("epoll connect {sa}: {e}")))?;
        self.client_over(stream, from)
    }
}

// --------------------------------------------------------- API adapters

struct EpollTx {
    conn: Arc<ConnState>,
    pool: Arc<BufferPool>,
}

impl TxApi for EpollTx {
    fn send_msg(&self, msg: &Message) -> TdpResult<()> {
        // Encode into a recycled buffer; the frame rides the outbox as a
        // `PooledBuf` and returns to the pool when fully written.
        let mut frame = self.pool.acquire();
        encode_frame_into(msg, frame.buf_mut());
        self.conn.send(frame)
    }

    fn close(&self) {
        self.conn.close();
    }
}

impl Drop for EpollTx {
    fn drop(&mut self) {
        self.conn.handle_dropped();
    }
}

struct EpollRx {
    conn: Arc<ConnState>,
}

impl RxApi for EpollRx {
    fn recv_msg_deadline(&mut self, deadline: Option<Instant>) -> TdpResult<Message> {
        self.conn.recv(deadline)
    }

    fn try_recv_msg(&mut self) -> TdpResult<Option<Message>> {
        self.conn.try_recv()
    }

    fn recycle_msg(&mut self, msg: Message) {
        self.conn.recycle(msg);
    }
}

impl Drop for EpollRx {
    fn drop(&mut self) {
        self.conn.handle_dropped();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{spawn_proxy, ProxyResolver};
    use crate::wire_thread_count;
    use tdp_proto::ContextId;

    fn transport() -> EpollTransport {
        EpollTransport::new().unwrap()
    }

    fn pair(t: &EpollTransport) -> (WireConn, WireConn) {
        let lis = t.listen(HostId(1), 0).unwrap();
        let client = t.connect(HostId(0), &lis.local_endpoint()).unwrap();
        let server = lis.accept().unwrap();
        lis.close();
        (client, server)
    }

    #[test]
    fn hello_establishes_peer_host() {
        let t = transport();
        let (_client, server) = pair(&t);
        assert_eq!(server.peer_host(), Some(HostId(0)));
    }

    #[test]
    fn roundtrip_both_directions() {
        let t = transport();
        let (mut client, mut server) = pair(&t);
        let m1 = Message::Join { ctx: ContextId(1) };
        let m2 = Message::Reply(tdp_proto::Reply::Ok);
        client.send_msg(&m1).unwrap();
        assert_eq!(server.recv_msg().unwrap(), m1);
        server.send_msg(&m2).unwrap();
        assert_eq!(client.recv_msg().unwrap(), m2);
    }

    #[test]
    fn many_messages_survive_streaming() {
        let t = transport();
        let (client, mut server) = pair(&t);
        for i in 0..500u64 {
            client
                .send_msg(&Message::Put {
                    ctx: ContextId(i),
                    key: format!("k{i}"),
                    value: "v".repeat((i % 97) as usize),
                })
                .unwrap();
        }
        for i in 0..500u64 {
            match server.recv_msg().unwrap() {
                Message::Put { ctx, key, .. } => {
                    assert_eq!(ctx, ContextId(i));
                    assert_eq!(key, format!("k{i}"));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn recv_timeout_fires() {
        let t = transport();
        let (_client, mut server) = pair(&t);
        let t0 = Instant::now();
        assert_eq!(
            server.recv_msg_timeout(Duration::from_millis(50)),
            Err(TdpError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn try_recv_msg_nonblocking() {
        let t = transport();
        let (client, mut server) = pair(&t);
        assert_eq!(server.try_recv_msg().unwrap(), None);
        let msg = Message::Leave { ctx: ContextId(5) };
        client.send_msg(&msg).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match server.try_recv_msg().unwrap() {
                Some(m) => {
                    assert_eq!(m, msg);
                    break;
                }
                None if Instant::now() < deadline => {
                    std::thread::park_timeout(Duration::from_millis(1))
                }
                None => panic!("message never arrived"),
            }
        }
        client.send_msg(&msg).unwrap();
        assert_eq!(server.recv_msg().unwrap(), msg);
    }

    #[test]
    fn close_fails_fast_and_peer_sees_eof() {
        let t = transport();
        let (mut client, mut server) = pair(&t);
        let m = Message::Join { ctx: ContextId(1) };
        client.send_msg(&m).unwrap();
        client.close();
        assert_eq!(client.send_msg(&m), Err(TdpError::Disconnected));
        // Queued frame flushed before EOF.
        assert_eq!(server.recv_msg().unwrap(), m);
        assert_eq!(
            server.recv_msg_timeout(Duration::from_secs(2)),
            Err(TdpError::Disconnected)
        );
        // The closing side's reader wakes too.
        assert!(client.recv_msg_timeout(Duration::from_secs(2)).is_err());
    }

    #[test]
    fn drop_releases_connection() {
        let t = transport();
        let (client, mut server) = pair(&t);
        drop(client);
        assert_eq!(
            server.recv_msg_timeout(Duration::from_secs(2)),
            Err(TdpError::Disconnected)
        );
    }

    #[test]
    fn listener_close_unblocks_accept() {
        let t = transport();
        let lis = t.listen(HostId(0), 0).unwrap();
        let l2 = lis.clone();
        let (ready_tx, ready_rx) = crossbeam::channel::bounded::<()>(1);
        let th = std::thread::spawn(move || {
            let _ = ready_tx.send(());
            l2.accept()
        });
        ready_rx.recv().unwrap();
        lis.close();
        assert!(th.join().unwrap().is_err());
    }

    #[test]
    fn proxy_relays_with_reactor_endpoints() {
        let t = transport();
        let lis = t.listen(HostId(9), 0).unwrap();
        let real = lis.local_endpoint().as_tcp().unwrap();
        let allowed = Addr::new(HostId(9), 7777);
        let resolver: ProxyResolver = Arc::new(move |a: Addr| {
            if a == allowed {
                Ok(real)
            } else {
                Err(TdpError::BlockedByFirewall {
                    from: HostId(0),
                    to: a,
                })
            }
        });
        let proxy = spawn_proxy(resolver).unwrap();
        let client = t
            .connect_via(proxy.local_addr(), allowed, HostId(3))
            .unwrap();
        let mut server = lis.accept().unwrap();
        assert_eq!(server.peer_host(), Some(HostId(3)));
        let m = Message::Join { ctx: ContextId(4) };
        client.send_msg(&m).unwrap();
        assert_eq!(server.recv_msg().unwrap(), m);
        let err = t
            .connect_via(proxy.local_addr(), Addr::new(HostId(1), 1), HostId(3))
            .unwrap_err();
        assert!(matches!(err, TdpError::Substrate(_)), "{err}");
        proxy.shutdown();
    }

    #[test]
    fn fifty_connections_share_the_thread_budget() {
        let t = transport();
        let lis = t.listen(HostId(1), 0).unwrap();
        let ep = lis.local_endpoint();
        let mut conns = Vec::new();
        let mut after_first = 0;
        for i in 0..50u64 {
            let client = t.connect(HostId(0), &ep).unwrap();
            let mut server = lis.accept().unwrap();
            let m = Message::Join { ctx: ContextId(i) };
            client.send_msg(&m).unwrap();
            assert_eq!(server.recv_msg().unwrap(), m);
            conns.push((client, server));
            if i == 0 {
                // Shards, worker slices and the accept thread are all up
                // once the first round trip completes.
                after_first = wire_thread_count();
            }
        }
        // The thread budget is a function of the config, never of the
        // connection count: 49 more connections grow it by zero. (The
        // census is process-wide, so compare against the count at one
        // connection rather than an absolute.)
        let wire_threads = wire_thread_count();
        assert!(
            wire_threads <= after_first,
            "thread count grew with connections: {after_first} after one, \
             {wire_threads} after fifty"
        );
        // Every connection still works after the census.
        for (i, (client, server)) in conns.iter_mut().enumerate() {
            let m = Message::Leave {
                ctx: ContextId(i as u64),
            };
            client.send_msg(&m).unwrap();
            assert_eq!(server.recv_msg().unwrap(), m);
        }
    }

    #[test]
    fn sharded_reactors_route_connections_across_all_shards() {
        let t = EpollTransport::with_config(EpollConfig {
            reactors: 4,
            ..EpollConfig::default()
        })
        .unwrap();
        assert_eq!(t.shared.reactors.shard_count(), 4);
        let lis = t.listen(HostId(1), 0).unwrap();
        let ep = lis.local_endpoint();
        // 8 sessions = 16 registered connections → every shard (ids are
        // assigned round-robin) carries traffic.
        let mut conns = Vec::new();
        for i in 0..8u64 {
            let client = t.connect(HostId(0), &ep).unwrap();
            let server = lis.accept().unwrap();
            conns.push((i, client, server));
        }
        for (i, client, server) in &mut conns {
            let m = Message::Join { ctx: ContextId(*i) };
            client.send_msg(&m).unwrap();
            assert_eq!(server.recv_msg().unwrap(), m);
            let r = Message::Reply(tdp_proto::Reply::Ok);
            server.send_msg(&r).unwrap();
            assert_eq!(client.recv_msg().unwrap(), r);
        }
    }

    #[test]
    fn backpressure_bounds_the_outbox() {
        // A tiny outbox against a reader that never drains: send_msg
        // must block (bounded memory) and then fail fast once the stall
        // exceeds the write budget — not wedge forever.
        let t = EpollTransport::with_config(EpollConfig {
            outbox_bytes: 4 * 1024,
            write_timeout: Duration::from_millis(200),
            ..EpollConfig::default()
        })
        .unwrap();
        let lis = t.listen(HostId(1), 0).unwrap();
        let client = t.connect(HostId(0), &lis.local_endpoint()).unwrap();
        let _server = lis.accept().unwrap();
        let big = Message::Put {
            ctx: ContextId(1),
            key: "k".into(),
            value: "x".repeat(8 * 1024),
        };
        // Fill the socket buffer plus the outbox; eventually the stall
        // trips and the connection dies instead of hanging.
        let r = (0..10_000).try_for_each(|_| client.send_msg(&big));
        assert_eq!(r, Err(TdpError::Disconnected));
    }
}
