//! The netsim backend: adapts `tdp-netsim`'s in-memory connections to
//! the [`crate::Transport`] abstraction.

use crate::{
    Endpoint, ListenerApi, RxApi, Transport, TxApi, WireConn, WireListener, WireRx, WireTx,
};
use std::time::Instant;
use tdp_netsim::{Conn, ConnRx, ConnTx, Listener, Network};
use tdp_proto::{HostId, Message, TdpError, TdpResult};
use tdp_sync::Arc;

/// Transport over the simulated fabric.
#[derive(Clone)]
pub struct SimTransport {
    net: Network,
}

impl SimTransport {
    pub fn new(net: Network) -> SimTransport {
        SimTransport { net }
    }

    pub fn network(&self) -> &Network {
        &self.net
    }
}

impl Transport for SimTransport {
    fn listen(&self, host: HostId, port: u16) -> TdpResult<WireListener> {
        Ok(wrap_listener(
            self.net.clone(),
            self.net.listen(host, port)?,
        ))
    }

    fn connect(&self, from: HostId, to: &Endpoint) -> TdpResult<WireConn> {
        let addr = to
            .as_sim()
            .ok_or_else(|| TdpError::Substrate(format!("sim transport cannot dial {to}")))?;
        Ok(wrap_conn(self.net.connect(from, addr)?))
    }
}

/// Wrap an established netsim connection (e.g. one returned by the
/// relay proxy) as a [`WireConn`].
pub fn wrap_conn(conn: Conn) -> WireConn {
    let local = Endpoint::Sim(conn.local_addr());
    let peer = Endpoint::Sim(conn.peer_addr());
    let peer_host = Some(conn.peer_addr().host);
    let (tx, rx) = conn.split();
    WireConn::from_parts(
        WireTx::new(Arc::new(SimTx { tx })),
        WireRx::new(Box::new(SimRx { rx })),
        local,
        peer,
        peer_host,
    )
}

/// Wrap a bound netsim listener as a [`WireListener`]. The `Network`
/// handle is kept so `close` can release the port.
pub fn wrap_listener(net: Network, listener: Listener) -> WireListener {
    let addr = listener.local_addr();
    WireListener::new(Arc::new(SimListener {
        net,
        listener: tdp_sync::Mutex::new(listener),
        addr: Endpoint::Sim(addr),
    }))
}

struct SimTx {
    tx: ConnTx,
}

impl TxApi for SimTx {
    fn send_msg(&self, msg: &Message) -> TdpResult<()> {
        self.tx.send_msg(msg)
    }

    fn close(&self) {
        self.tx.close();
    }
}

struct SimRx {
    rx: ConnRx,
}

impl RxApi for SimRx {
    fn recv_msg_deadline(&mut self, deadline: Option<Instant>) -> TdpResult<Message> {
        match deadline {
            None => self.rx.recv_msg(),
            Some(d) => {
                let remaining = d
                    .checked_duration_since(Instant::now())
                    .ok_or(TdpError::Timeout)?;
                self.rx.recv_msg_timeout(remaining)
            }
        }
    }

    fn try_recv_msg(&mut self) -> TdpResult<Option<Message>> {
        self.rx.try_recv_msg()
    }
}

struct SimListener {
    net: Network,
    listener: tdp_sync::Mutex<Listener>,
    addr: Endpoint,
}

impl ListenerApi for SimListener {
    fn accept(&self) -> TdpResult<WireConn> {
        // netsim's accept blocks on a channel; holding the lock for the
        // duration is fine because wire listeners have a single accept
        // loop (matching `std::net::TcpListener` usage).
        let conn = self.listener.lock().accept()?;
        Ok(wrap_conn(conn))
    }

    fn local_endpoint(&self) -> Endpoint {
        self.addr
    }

    fn close(&self) {
        if let Endpoint::Sim(addr) = self.addr {
            // Unbinding drops the fabric-side sender; the blocked accept
            // wakes with `Disconnected`.
            self.net.unbind(addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_proto::{Addr, ContextId};

    #[test]
    fn sim_roundtrip_over_wire_api() {
        let net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let t = SimTransport::new(net);
        let lis = t.listen(b, 7000).unwrap();
        let client = t.connect(a, &Endpoint::Sim(Addr::new(b, 7000))).unwrap();
        let mut server = lis.accept().unwrap();
        assert_eq!(server.peer_host(), Some(a));
        let msg = Message::Join { ctx: ContextId(9) };
        client.send_msg(&msg).unwrap();
        assert_eq!(server.recv_msg().unwrap(), msg);
    }

    #[test]
    fn close_unblocks_accept() {
        let net = Network::new();
        let h = net.add_host();
        let t = SimTransport::new(net);
        let lis = t.listen(h, 7001).unwrap();
        let l2 = lis.clone();
        // Synchronize on the acceptor running instead of sleeping; close
        // must win whether it lands before or after the accept call.
        let (ready_tx, ready_rx) = crossbeam::channel::bounded::<()>(1);
        let th = std::thread::spawn(move || {
            let _ = ready_tx.send(());
            l2.accept()
        });
        ready_rx.recv().unwrap();
        lis.close();
        assert!(th.join().unwrap().is_err());
    }

    #[test]
    fn try_recv_msg_nonblocking() {
        let (a, b) = Conn::pair();
        let mut wa = wrap_conn(a);
        let wb = wrap_conn(b);
        assert_eq!(wa.try_recv_msg().unwrap(), None);
        let msg = Message::Leave { ctx: ContextId(2) };
        wb.send_msg(&msg).unwrap();
        assert_eq!(wa.try_recv_msg().unwrap(), Some(msg));
    }
}
