//! The event loop behind the epoll backend: one reactor thread owning
//! an epoll set, a small worker pool, and per-connection state machines
//! ([`crate::flow::Flow`]) that turn readiness into framed messages.
//!
//! # Readiness model
//!
//! Every connection is a non-blocking socket registered `EPOLLONESHOT`:
//! the kernel reports it at most once, a worker (or the reactor itself,
//! for a single-event wake — the latency path) drains it under the
//! connection's lock, and the registration is rearmed with the interest
//! set the state machine currently wants:
//!
//! * `EPOLLIN` while the decoded-message inbox is below its bound —
//!   above it, reads pause and TCP's window does the backpressure;
//! * `EPOLLOUT` only while the bounded outbox holds bytes a previous
//!   write could not push (`EWOULDBLOCK`) — senders write inline on the
//!   fast path and only fall back to reactor-driven draining when the
//!   socket buffer fills.
//!
//! Because both the IO and the rearm happen under the per-connection
//! mutex, a duplicate readiness report (send racing a worker) is
//! harmless — the second drain finds nothing to do. The state-machine
//! half of this module lives in [`crate::flow`] so the loom models can
//! drive the shipped protocol logic exhaustively; this file keeps the
//! epoll plumbing.
//!
//! An [`EventFd`] registered level-triggered at token 0 kicks
//! `epoll_wait` for shutdown; `epoll_ctl` changes need no kick, the
//! kernel applies them to an in-progress wait.
//!
//! # Thread budget
//!
//! One reactor thread plus [`workers`](crate::EpollConfig::workers)
//! pool threads serve *every* connection of the transport — O(pool),
//! not O(connections), which is the point (ROADMAP's async-backend
//! item).

use crate::flow::{ConnTuning, Flow, FlowIo, Interest};
use crate::pool::PooledBuf;
use crate::sys::{
    Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLONESHOT, EPOLLOUT, EPOLLRDHUP,
};
use crossbeam::channel;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::os::unix::io::AsRawFd;
use std::thread;
use std::time::Instant;
use tdp_proto::{FrameDecoder, Message, TdpError, TdpResult};
use tdp_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tdp_sync::{Arc, Mutex, Weak};

// ---------------------------------------------------------- reactor set

/// The shard a connection lives on: plain modulo over the sequentially
/// assigned connection id. Ids arrive round-robin, so shards stay
/// balanced without coordination, and the mapping is a pure function of
/// the id — nothing ever needs to look a connection's shard up.
pub(crate) fn shard_index(conn_id: u64, nshards: usize) -> usize {
    (conn_id % nshards.max(1) as u64) as usize
}

/// N independent reactors, each owning its own epoll set, wake eventfd,
/// and worker-pool slice. A connection is hashed to a shard when it is
/// registered (accept/dial time) and never migrates, so the whole
/// put/get path — readiness, drains, rearms, wakeups — touches only
/// shard-local state; no lock is shared between shards.
pub(crate) struct ReactorSet {
    shards: Vec<Arc<Reactor>>,
    next_conn: AtomicU64,
}

impl ReactorSet {
    /// Spawn `reactors` shards splitting `workers` pool threads between
    /// them (each shard gets at least one).
    pub fn start(reactors: usize, workers: usize) -> TdpResult<ReactorSet> {
        let reactors = reactors.max(1);
        let per_shard = workers.max(1).div_ceil(reactors);
        let shards = (0..reactors)
            .map(|i| Reactor::start(i, per_shard))
            .collect::<TdpResult<Vec<_>>>()?;
        Ok(ReactorSet {
            shards,
            next_conn: AtomicU64::new(0),
        })
    }

    /// Hash the new connection to a shard and register it there.
    pub fn register(
        &self,
        stream: TcpStream,
        leftover: FrameDecoder,
        tuning: ConnTuning,
    ) -> TdpResult<Arc<ConnState>> {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        self.shards[shard_index(id, self.shards.len())].register(stream, leftover, tuning)
    }

    #[cfg(test)]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Stop every shard and join its threads. Idempotent.
    pub fn shutdown(&self) {
        for s in &self.shards {
            s.shutdown();
        }
    }
}

// -------------------------------------------------------------- reactor

pub(crate) struct Reactor {
    ep: Epoll,
    wake: EventFd,
    conns: Mutex<HashMap<u64, Arc<ConnState>>>,
    next_token: AtomicU64,
    stop: AtomicBool,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

const WAKE_TOKEN: u64 = 0;

impl Reactor {
    /// Spawn shard `shard`'s reactor thread plus `workers` pool threads.
    pub fn start(shard: usize, workers: usize) -> TdpResult<Arc<Reactor>> {
        let sub = |e: std::io::Error| TdpError::Substrate(format!("epoll reactor: {e}"));
        let ep = Epoll::new().map_err(sub)?;
        let wake = EventFd::new().map_err(sub)?;
        ep.add(wake.fd(), EPOLLIN, WAKE_TOKEN).map_err(sub)?;
        let reactor = Arc::new(Reactor {
            ep,
            wake,
            conns: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        });
        let spawn_err = |e: std::io::Error| TdpError::Substrate(format!("spawn wire thread: {e}"));

        // The reactor thread owns the only job `Sender`: when it exits,
        // the workers' `recv` disconnects and they exit too. The
        // channel (like everything else here) is per shard: a wave on
        // one shard never contends with another shard's dispatch.
        let (jobs_tx, jobs_rx) = channel::unbounded::<(u64, u32)>();
        let mut threads = reactor.threads.lock();
        for i in 0..workers.max(1) {
            let rx = jobs_rx.clone();
            let r = reactor.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("wire-epoll-{shard}-{i}"))
                    .spawn(move || {
                        while let Ok((token, revents)) = rx.recv() {
                            if let Some(conn) = r.lookup(token) {
                                conn.handle_event(revents);
                            }
                        }
                    })
                    .map_err(spawn_err)?,
            );
        }
        let r = reactor.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("wire-reactor-{shard}"))
                .spawn(move || r.run(jobs_tx))
                .map_err(spawn_err)?,
        );
        drop(threads);
        Ok(reactor)
    }

    fn run(&self, jobs: channel::Sender<(u64, u32)>) {
        let mut buf = [EpollEvent {
            events: 0,
            token: 0,
        }; 256];
        // Copied out of `buf` each wake: it is reused and (on x86-64)
        // packed. A fixed array, not a `Vec` — the event loop allocates
        // nothing in steady state.
        let mut events = [(0u64, 0u32); 256];
        // Loop until the epoll fd is torn down or shutdown is flagged.
        while let Ok(ready) = self.ep.wait(&mut buf, -1) {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let mut n = 0;
            let mut woken = false;
            for e in ready {
                let (token, revents) = ({ e.token }, { e.events });
                if token == WAKE_TOKEN {
                    woken = true;
                } else {
                    events[n] = (token, revents);
                    n += 1;
                }
            }
            if woken {
                self.wake.drain();
            }
            if let [(token, revents)] = events[..n] {
                // Latency path: a lone readiness report is handled on
                // the reactor thread itself, skipping a dispatch hop.
                if let Some(conn) = self.lookup(token) {
                    conn.handle_event(revents);
                }
            } else {
                // A wave: fan out so slow connections don't serialize.
                for ev in &events[..n] {
                    if jobs.send(*ev).is_err() {
                        return;
                    }
                }
            }
        }
    }

    fn lookup(&self, token: u64) -> Option<Arc<ConnState>> {
        self.conns.lock().get(&token).cloned()
    }

    /// Adopt an established, handshake-complete stream: make it
    /// non-blocking, pump any bytes the handshake over-read, and start
    /// watching it. Returns the shared connection state.
    pub fn register(
        self: &Arc<Reactor>,
        stream: TcpStream,
        leftover: FrameDecoder,
        tuning: ConnTuning,
    ) -> TdpResult<Arc<ConnState>> {
        let sub = |e: std::io::Error| TdpError::Substrate(format!("epoll register: {e}"));
        crate::sys::set_nonblocking(stream.as_raw_fd()).map_err(sub)?;
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let io = SocketIo {
            stream,
            reactor: Arc::downgrade(self),
            token,
        };
        let conn = Arc::new(ConnState {
            token,
            // Frames pipelined behind the handshake are pumped out of
            // `leftover` by `Flow::new`; readiness will never re-report
            // those bytes.
            flow: Flow::new(io, tuning, leftover),
            handles: AtomicU64::new(2), // one Tx wrapper + one Rx wrapper
        });
        self.conns.lock().insert(token, conn.clone());
        if let Err(e) = self
            .ep
            .add(conn.fd(), EPOLLIN | EPOLLRDHUP | EPOLLONESHOT, token)
        {
            self.conns.lock().remove(&token);
            return Err(sub(e));
        }
        Ok(conn)
    }

    fn deregister(&self, token: u64, fd: i32) {
        let _ = self.ep.delete(fd);
        self.conns.lock().remove(&token);
    }

    /// Stop the loop and join every thread. Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.wake.signal();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

// ------------------------------------------------------------ socket IO

/// The production [`FlowIo`]: a non-blocking socket whose readiness
/// registration is rearmed through the owning reactor's epoll set.
pub(crate) struct SocketIo {
    stream: TcpStream,
    reactor: Weak<Reactor>,
    token: u64,
}

impl FlowIo for SocketIo {
    fn read(&self, buf: &mut [u8]) -> std::io::Result<usize> {
        std::io::Read::read(&mut (&self.stream), buf)
    }

    fn write(&self, buf: &[u8]) -> std::io::Result<usize> {
        std::io::Write::write(&mut (&self.stream), buf)
    }

    fn writev(&self, bufs: &[&[u8]]) -> std::io::Result<usize> {
        crate::sys::writev_fd(self.stream.as_raw_fd(), bufs)
    }

    fn supports_direct_read(&self) -> bool {
        true
    }

    fn wait_readable(&self, timeout_ms: i32) -> std::io::Result<bool> {
        crate::sys::poll_readable(self.stream.as_raw_fd(), timeout_ms)
    }

    fn shutdown_read(&self) {
        let _ = self.stream.shutdown(Shutdown::Read);
    }

    fn shutdown_write(&self) {
        let _ = self.stream.shutdown(Shutdown::Write);
    }

    fn shutdown_both(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn rearm(&self, interest: Interest) {
        let mut mask = 0;
        if interest.read {
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.write {
            mask |= EPOLLOUT;
        }
        if let Some(r) = self.reactor.upgrade() {
            let _ =
                r.ep.modify(self.stream.as_raw_fd(), mask | EPOLLONESHOT, self.token);
        }
    }
}

// ----------------------------------------------------- connection state

/// Shared state of one reactor-managed connection: the generic flow
/// state machine bound to its socket, plus handle accounting. All
/// socket IO and all interest changes happen under the flow's lock, so
/// concurrent senders, the receiver, and pool workers serialize per
/// connection while different connections proceed in parallel.
pub(crate) struct ConnState {
    token: u64,
    flow: Flow<SocketIo>,
    /// Live API handles (Tx + Rx wrappers); the last one out
    /// deregisters and closes the socket.
    handles: AtomicU64,
}

impl ConnState {
    fn fd(&self) -> i32 {
        self.flow.io().stream.as_raw_fd()
    }

    /// Translate an epoll readiness report for the flow. Error/hangup
    /// conditions count as both readable and writable so the drains
    /// observe the failure.
    pub fn handle_event(&self, revents: u32) {
        let readable = revents & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0;
        let writable = revents & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0;
        self.flow.on_ready(readable, writable);
    }

    pub fn send(&self, frame: PooledBuf) -> TdpResult<()> {
        self.flow.send(frame)
    }

    pub fn close(&self) {
        self.flow.close();
    }

    pub fn recv(&self, deadline: Option<Instant>) -> TdpResult<Message> {
        self.flow.recv(deadline)
    }

    pub fn try_recv(&self) -> TdpResult<Option<Message>> {
        self.flow.try_recv()
    }

    pub fn recycle(&self, msg: Message) {
        self.flow.recycle(msg);
    }

    // ---- lifecycle ----------------------------------------------------

    /// Called when a Tx or Rx API wrapper drops; the last one releases
    /// the connection.
    pub fn handle_dropped(&self) {
        if self.handles.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.release();
        }
    }

    /// Deregister from the reactor; dropping the last `Arc` then closes
    /// the socket (peer sees EOF). Frames still queued are flushed
    /// synchronously first — the same guarantee the TCP writer thread
    /// gives a dropped connection. The flow is quiesced *before* the
    /// socket flips to blocking mode, so a worker holding a stale
    /// readiness event cannot enter a drain and block a pool thread on
    /// the now-blocking socket.
    fn release(&self) {
        let plan = self.flow.begin_release();
        if let Some(plan) = plan {
            let mut stream = &self.flow.io().stream;
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_write_timeout(Some(self.flow.tuning().write_stall));
            let mut first = true;
            for front in plan.frames {
                let from = if first { plan.head_off } else { 0 };
                first = false;
                if stream.write_all(&front[from..]).is_err() {
                    break;
                }
            }
            if plan.shutdown_write_after {
                let _ = stream.shutdown(Shutdown::Write);
            }
        }
        if let Some(r) = self.flow.io().reactor.upgrade() {
            r.deregister(self.token, self.fd());
        }
    }
}
