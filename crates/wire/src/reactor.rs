//! The event loop behind the epoll backend: one reactor thread owning
//! an epoll set, a small worker pool, and the per-connection state
//! machine ([`ConnState`]) that turns readiness into framed messages.
//!
//! # Readiness model
//!
//! Every connection is a non-blocking socket registered `EPOLLONESHOT`:
//! the kernel reports it at most once, a worker (or the reactor itself,
//! for a single-event wake — the latency path) drains it under the
//! connection's lock, and the registration is rearmed with the interest
//! set the state machine currently wants:
//!
//! * `EPOLLIN` while the decoded-message inbox is below its bound —
//!   above it, reads pause and TCP's window does the backpressure;
//! * `EPOLLOUT` only while the bounded outbox holds bytes a previous
//!   write could not push (`EWOULDBLOCK`) — senders write inline on the
//!   fast path and only fall back to reactor-driven draining when the
//!   socket buffer fills.
//!
//! Because both the IO and the rearm happen under the per-connection
//! mutex, a duplicate readiness report (send racing a worker) is
//! harmless — the second drain finds nothing to do.
//!
//! An [`EventFd`] registered level-triggered at token 0 kicks
//! `epoll_wait` for shutdown; `epoll_ctl` changes need no kick, the
//! kernel applies them to an in-progress wait.
//!
//! # Thread budget
//!
//! One reactor thread plus [`workers`](crate::EpollConfig::workers)
//! pool threads serve *every* connection of the transport — O(pool),
//! not O(connections), which is the point (ROADMAP's async-backend
//! item).

use crate::protocol_err;
use crate::sys::{
    Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLONESHOT, EPOLLOUT, EPOLLRDHUP,
};
use bytes::Bytes;
use crossbeam::channel;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::{Duration, Instant};
use tdp_proto::{FrameDecoder, Message, TdpError, TdpResult};

/// Per-connection tunables, derived from [`crate::EpollConfig`].
#[derive(Debug, Clone)]
pub(crate) struct ConnTuning {
    /// Pause `EPOLLIN` while this many decoded messages are undelivered.
    pub inbox_messages: usize,
    /// `send_msg` blocks (backpressure) while the outbox holds this many
    /// bytes.
    pub outbox_bytes: usize,
    /// How long a backpressured `send_msg` waits before declaring the
    /// peer wedged and killing the connection (the TCP backend's
    /// `write_timeout` analogue).
    pub write_stall: Duration,
    /// Default bound on a blocking `recv` (`None` = wait forever).
    pub read_timeout: Option<Duration>,
}

// -------------------------------------------------------------- reactor

pub(crate) struct Reactor {
    ep: Epoll,
    wake: EventFd,
    conns: Mutex<HashMap<u64, Arc<ConnState>>>,
    next_token: AtomicU64,
    stop: AtomicBool,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

const WAKE_TOKEN: u64 = 0;

impl Reactor {
    /// Spawn the reactor thread plus `workers` pool threads.
    pub fn start(workers: usize) -> TdpResult<Arc<Reactor>> {
        let sub = |e: std::io::Error| TdpError::Substrate(format!("epoll reactor: {e}"));
        let ep = Epoll::new().map_err(sub)?;
        let wake = EventFd::new().map_err(sub)?;
        ep.add(wake.fd(), EPOLLIN, WAKE_TOKEN).map_err(sub)?;
        let reactor = Arc::new(Reactor {
            ep,
            wake,
            conns: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        });
        let spawn_err = |e: std::io::Error| TdpError::Substrate(format!("spawn wire thread: {e}"));

        // The reactor thread owns the only job `Sender`: when it exits,
        // the workers' `recv` disconnects and they exit too.
        let (jobs_tx, jobs_rx) = channel::unbounded::<(u64, u32)>();
        let mut threads = reactor.threads.lock();
        for i in 0..workers.max(1) {
            let rx = jobs_rx.clone();
            let r = reactor.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("wire-epoll-{i}"))
                    .spawn(move || {
                        while let Ok((token, revents)) = rx.recv() {
                            if let Some(conn) = r.lookup(token) {
                                conn.handle_event(revents);
                            }
                        }
                    })
                    .map_err(spawn_err)?,
            );
        }
        let r = reactor.clone();
        threads.push(
            thread::Builder::new()
                .name("wire-reactor".into())
                .spawn(move || r.run(jobs_tx))
                .map_err(spawn_err)?,
        );
        drop(threads);
        Ok(reactor)
    }

    fn run(&self, jobs: channel::Sender<(u64, u32)>) {
        let mut buf = [EpollEvent {
            events: 0,
            token: 0,
        }; 256];
        // Loop until the epoll fd is torn down or shutdown is flagged.
        while let Ok(ready) = self.ep.wait(&mut buf, -1) {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            // Copy out: `buf` is reused and (on x86-64) packed.
            let events: Vec<(u64, u32)> = ready
                .iter()
                .map(|e| ({ e.token }, { e.events }))
                .filter(|&(t, _)| t != WAKE_TOKEN)
                .collect();
            if events.len() < ready.len() {
                self.wake.drain();
            }
            if let [(token, revents)] = events[..] {
                // Latency path: a lone readiness report is handled on
                // the reactor thread itself, skipping a dispatch hop.
                if let Some(conn) = self.lookup(token) {
                    conn.handle_event(revents);
                }
            } else {
                // A wave: fan out so slow connections don't serialize.
                for ev in events {
                    if jobs.send(ev).is_err() {
                        return;
                    }
                }
            }
        }
    }

    fn lookup(&self, token: u64) -> Option<Arc<ConnState>> {
        self.conns.lock().get(&token).cloned()
    }

    /// Adopt an established, handshake-complete stream: make it
    /// non-blocking, pump any bytes the handshake over-read, and start
    /// watching it. Returns the shared connection state.
    pub fn register(
        self: &Arc<Reactor>,
        stream: TcpStream,
        leftover: FrameDecoder,
        tuning: ConnTuning,
    ) -> TdpResult<Arc<ConnState>> {
        let sub = |e: std::io::Error| TdpError::Substrate(format!("epoll register: {e}"));
        crate::sys::set_nonblocking(stream.as_raw_fd()).map_err(sub)?;
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let conn = Arc::new(ConnState {
            token,
            stream,
            reactor: Arc::downgrade(self),
            tuning,
            inner: Mutex::new(ConnInner {
                dec: leftover,
                inbox: VecDeque::new(),
                rx_err: None,
                read_open: true,
                paused: false,
                outbox: VecDeque::new(),
                outbox_bytes: 0,
                head_off: 0,
                want_write: false,
                flush_then_shutdown: false,
                closed: false,
            }),
            rx_cv: Condvar::new(),
            tx_cv: Condvar::new(),
            handles: AtomicU64::new(2), // one Tx wrapper + one Rx wrapper
        });
        {
            // Frames pipelined behind the handshake are already in the
            // decoder; readiness will never re-report those bytes.
            let mut inner = conn.inner.lock();
            conn.pump_decoder(&mut inner);
        }
        self.conns.lock().insert(token, conn.clone());
        if let Err(e) = self.ep.add(
            conn.stream.as_raw_fd(),
            EPOLLIN | EPOLLRDHUP | EPOLLONESHOT,
            token,
        ) {
            self.conns.lock().remove(&token);
            return Err(sub(e));
        }
        Ok(conn)
    }

    fn deregister(&self, token: u64, fd: i32) {
        let _ = self.ep.delete(fd);
        self.conns.lock().remove(&token);
    }

    /// Stop the loop and join every thread. Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.wake.signal();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

// ----------------------------------------------------- connection state

/// Shared state of one reactor-managed connection. All socket IO and
/// all interest changes happen under `inner`'s lock, so concurrent
/// senders, the receiver, and pool workers serialize per connection
/// while different connections proceed in parallel.
pub(crate) struct ConnState {
    token: u64,
    stream: TcpStream,
    reactor: Weak<Reactor>,
    tuning: ConnTuning,
    inner: Mutex<ConnInner>,
    rx_cv: Condvar,
    tx_cv: Condvar,
    /// Live API handles (Tx + Rx wrappers); the last one out
    /// deregisters and closes the socket.
    handles: AtomicU64,
}

struct ConnInner {
    // Receive side.
    dec: FrameDecoder,
    inbox: VecDeque<Message>,
    /// Terminal receive condition, reported once the inbox drains.
    rx_err: Option<TdpError>,
    read_open: bool,
    /// `EPOLLIN` withheld because the inbox is at its bound.
    paused: bool,
    // Send side.
    outbox: VecDeque<Bytes>,
    outbox_bytes: usize,
    /// Partial-write offset into the front outbox frame.
    head_off: usize,
    /// `EPOLLOUT` armed: the reactor owes us a drain.
    want_write: bool,
    /// `close()` ran with frames still queued: half-close after flush.
    flush_then_shutdown: bool,
    /// Local close or fatal socket error: sends fail fast.
    closed: bool,
}

impl ConnState {
    // ---- interest -----------------------------------------------------

    fn interest(inner: &ConnInner) -> u32 {
        let mut mask = 0;
        if inner.read_open && !inner.paused {
            mask |= EPOLLIN | EPOLLRDHUP;
        }
        if inner.want_write {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Rearm the (oneshot) registration to the current interest set.
    fn rearm(&self, inner: &ConnInner) {
        let mask = Self::interest(inner);
        if mask == 0 {
            return; // stay disarmed; a state change will rearm
        }
        if let Some(r) = self.reactor.upgrade() {
            let _ =
                r.ep.modify(self.stream.as_raw_fd(), mask | EPOLLONESHOT, self.token);
        }
    }

    // ---- event handling (reactor / workers) ---------------------------

    pub fn handle_event(&self, revents: u32) {
        let mut inner = self.inner.lock();
        if revents & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 && inner.read_open {
            self.drain_read(&mut inner);
        }
        if revents & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0
            && (inner.want_write || inner.flush_then_shutdown)
        {
            self.drain_write(&mut inner);
        }
        self.rearm(&inner);
    }

    /// Read until `EWOULDBLOCK`, EOF, error, or the inbox bound.
    fn drain_read(&self, inner: &mut ConnInner) {
        let mut chunk = [0u8; 16 * 1024];
        let mut delivered = false;
        loop {
            if inner.inbox.len() >= self.tuning.inbox_messages {
                inner.paused = true; // consumer will unpause + rearm
                break;
            }
            match (&self.stream).read(&mut chunk) {
                Ok(0) => {
                    inner.read_open = false;
                    inner.rx_err.get_or_insert(TdpError::Disconnected);
                    break;
                }
                Ok(n) => {
                    inner.dec.feed(&chunk[..n]);
                    if self.pump_decoder(inner) {
                        delivered = true;
                    }
                    if !inner.read_open {
                        break; // decoder hit a malformed frame
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Hard socket error kills both directions.
                    inner.read_open = false;
                    inner.rx_err.get_or_insert(TdpError::Disconnected);
                    inner.closed = true;
                    self.tx_cv.notify_all();
                    break;
                }
            }
        }
        if delivered || inner.rx_err.is_some() {
            self.rx_cv.notify_all();
        }
    }

    /// Move complete frames out of the decoder into the inbox. Returns
    /// whether anything was delivered.
    fn pump_decoder(&self, inner: &mut ConnInner) -> bool {
        let mut delivered = false;
        loop {
            match inner.dec.next() {
                Ok(Some(msg)) => {
                    inner.inbox.push_back(msg);
                    delivered = true;
                }
                Ok(None) => break,
                Err(e) => {
                    inner.read_open = false;
                    inner.rx_err.get_or_insert(protocol_err(e));
                    break;
                }
            }
        }
        delivered
    }

    /// Write outbox frames until empty or `EWOULDBLOCK` (which arms
    /// `EPOLLOUT` — interest re-registration — so the reactor resumes
    /// the drain when the socket buffer empties).
    fn drain_write(&self, inner: &mut ConnInner) {
        while let Some(front) = inner.outbox.front() {
            let from = inner.head_off;
            match (&self.stream).write(&front[from..]) {
                Ok(n) => {
                    inner.outbox_bytes -= n;
                    inner.head_off += n;
                    if inner.head_off == front.len() {
                        inner.outbox.pop_front();
                        inner.head_off = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    inner.want_write = true;
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Peer gone: fail fast, like the TCP writer thread.
                    inner.closed = true;
                    inner.want_write = false;
                    inner.outbox.clear();
                    inner.outbox_bytes = 0;
                    inner.head_off = 0;
                    let _ = self.stream.shutdown(Shutdown::Write);
                    self.tx_cv.notify_all();
                    return;
                }
            }
        }
        inner.want_write = false;
        self.tx_cv.notify_all(); // backpressured senders may proceed
        if inner.flush_then_shutdown {
            inner.flush_then_shutdown = false;
            let _ = self.stream.shutdown(Shutdown::Write);
        }
    }

    // ---- send path ----------------------------------------------------

    pub fn send(&self, frame: Bytes) -> TdpResult<()> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(TdpError::Disconnected);
        }
        // Backpressure: wait for outbox space (a lone oversized frame is
        // admitted so progress is always possible). A peer that stops
        // draining for `write_stall` kills the connection instead of
        // wedging the sender — the TCP backend's write-timeout contract.
        if inner.outbox_bytes + frame.len() > self.tuning.outbox_bytes && !inner.outbox.is_empty() {
            let deadline = Instant::now() + self.tuning.write_stall;
            while inner.outbox_bytes + frame.len() > self.tuning.outbox_bytes
                && !inner.outbox.is_empty()
                && !inner.closed
            {
                if self.tx_cv.wait_until(&mut inner, deadline).timed_out() {
                    inner.closed = true;
                    inner.read_open = false;
                    inner.rx_err.get_or_insert(TdpError::Disconnected);
                    let _ = self.stream.shutdown(Shutdown::Both);
                    self.rx_cv.notify_all();
                    self.tx_cv.notify_all();
                    return Err(TdpError::Disconnected);
                }
            }
            if inner.closed {
                return Err(TdpError::Disconnected);
            }
        }
        inner.outbox_bytes += frame.len();
        inner.outbox.push_back(frame);
        if !inner.want_write {
            // Fast path: the socket was writable last we knew — drain
            // inline, no reactor round trip. Falls back to EPOLLOUT on
            // a partial write.
            self.drain_write(&mut inner);
            if inner.want_write {
                self.rearm(&inner);
            }
        }
        Ok(())
    }

    pub fn close(&self) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        inner.closed = true;
        // Local reads fail fast (after already-decoded frames drain),
        // matching the TCP backend's immediate read-side shutdown.
        inner.read_open = false;
        inner.rx_err.get_or_insert(TdpError::Disconnected);
        let _ = self.stream.shutdown(Shutdown::Read);
        if inner.outbox.is_empty() {
            let _ = self.stream.shutdown(Shutdown::Write);
        } else {
            // Queued frames flush first, then the peer sees EOF.
            inner.flush_then_shutdown = true;
            if !inner.want_write {
                self.drain_write(&mut inner);
                if inner.want_write {
                    self.rearm(&inner);
                }
            }
        }
        self.rx_cv.notify_all();
        self.tx_cv.notify_all();
    }

    // ---- receive path -------------------------------------------------

    pub fn recv(&self, deadline: Option<Instant>) -> TdpResult<Message> {
        let deadline = match deadline {
            Some(d) => Some(d),
            None => self.tuning.read_timeout.map(|t| Instant::now() + t),
        };
        let mut inner = self.inner.lock();
        loop {
            if let Some(msg) = self.pop_inbox(&mut inner) {
                return Ok(msg);
            }
            if let Some(e) = inner.rx_err.clone() {
                return Err(e);
            }
            match deadline {
                None => self.rx_cv.wait(&mut inner),
                Some(d) => {
                    if self.rx_cv.wait_until(&mut inner, d).timed_out() {
                        return Err(TdpError::Timeout);
                    }
                }
            }
        }
    }

    pub fn try_recv(&self) -> TdpResult<Option<Message>> {
        let mut inner = self.inner.lock();
        if let Some(msg) = self.pop_inbox(&mut inner) {
            return Ok(Some(msg));
        }
        match inner.rx_err.clone() {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }

    fn pop_inbox(&self, inner: &mut MutexGuard<'_, ConnInner>) -> Option<Message> {
        let msg = inner.inbox.pop_front()?;
        if inner.paused && inner.read_open && inner.inbox.len() * 2 <= self.tuning.inbox_messages {
            inner.paused = false;
            self.rearm(inner);
        }
        Some(msg)
    }

    // ---- lifecycle ----------------------------------------------------

    /// Called when a Tx or Rx API wrapper drops; the last one releases
    /// the connection.
    pub fn handle_dropped(&self) {
        if self.handles.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.release();
        }
    }

    /// Deregister from the reactor; dropping the last `Arc` then closes
    /// the socket (peer sees EOF). Frames still queued are flushed
    /// synchronously first — the same guarantee the TCP writer thread
    /// gives a dropped connection.
    fn release(&self) {
        {
            let mut inner = self.inner.lock();
            let flush = !inner.outbox.is_empty() && (!inner.closed || inner.flush_then_shutdown);
            if flush {
                let _ = self.stream.set_nonblocking(false);
                let _ = self.stream.set_write_timeout(Some(self.tuning.write_stall));
                let off = inner.head_off;
                let mut first = true;
                while let Some(front) = inner.outbox.pop_front() {
                    let from = if first { off } else { 0 };
                    first = false;
                    if (&self.stream).write_all(&front[from..]).is_err() {
                        break;
                    }
                }
                inner.outbox_bytes = 0;
                inner.head_off = 0;
                if inner.flush_then_shutdown {
                    inner.flush_then_shutdown = false;
                    let _ = self.stream.shutdown(Shutdown::Write);
                }
            }
        }
        if let Some(r) = self.reactor.upgrade() {
            r.deregister(self.token, self.stream.as_raw_fd());
        }
    }
}
