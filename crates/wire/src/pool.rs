//! Frame-buffer recycling for the socket backends.
//!
//! Every `send_msg` needs a byte buffer to encode into, and that buffer
//! lives until the frame has fully left the socket — often on a
//! different thread (a pool worker draining the outbox) than the one
//! that allocated it. A [`BufferPool`] makes the steady state
//! allocation-free: released buffers park on a small per-thread free
//! list (no lock on the hit path) and overflow into a shared,
//! mutex-protected spill list that any thread can refill from.
//!
//! Ownership rule: a [`PooledBuf`] *is* the buffer — release happens in
//! `Drop`, exactly once, wherever the buffer dies (outbox drain,
//! stall-kill clear, or the synchronous release flush). Nothing hands
//! raw `BytesMut`s around, so use-after-release and double-release are
//! unrepresentable; the loom model `loom_buffer_pool_stall_kill_vs_drain`
//! checks the accounting stays balanced under races anyway.
//!
//! Under `--cfg loom` the thread-local layer is compiled out (models
//! want every cross-thread interaction visible to the scheduler), so
//! every acquire/release goes through the shared list.

use bytes::BytesMut;
use tdp_sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use tdp_sync::Weak;
use tdp_sync::{Arc, Mutex};

/// Free buffers parked per thread (per pool) before spilling.
#[cfg(not(loom))]
const LOCAL_FREE_CAP: usize = 16;
/// Distinct pools one thread tracks; beyond this the oldest entry is
/// evicted and its buffers flushed back to the shared spill (a pool is
/// per transport — more than a handful live at once means transports
/// are being churned, where local caching is pointless anyway).
#[cfg(not(loom))]
const LOCAL_POOLS_CAP: usize = 4;
/// Free buffers the shared spill list holds before releases just drop.
const SHARED_SPILL_CAP: usize = 1024;
/// Buffers that grew beyond this are not retained — one pathological
/// frame must not pin its footprint forever.
const MAX_RETAINED_CAP: usize = 64 * 1024;
/// Starting capacity of a fresh buffer: covers every control-plane
/// frame in one shot.
const FRESH_CAP: usize = 256;

#[cfg(not(loom))]
thread_local! {
    /// Per-thread free lists, one entry per pool this thread has
    /// released into. The table's `Drop` (thread exit) and the eviction
    /// path flush parked buffers back to their pool's shared list, so
    /// short-lived threads don't strand recycled capacity.
    static LOCAL_FREE: std::cell::RefCell<LocalTable> =
        const { std::cell::RefCell::new(LocalTable(Vec::new())) };
}

#[cfg(not(loom))]
struct LocalEntry {
    /// The pool's `Arc` address — cheap identity for the hit-path scan.
    key: usize,
    /// Weak so a parked entry never keeps a dead transport's pool alive.
    pool: Weak<BufferPool>,
    bufs: Vec<BytesMut>,
}

#[cfg(not(loom))]
impl LocalEntry {
    /// Hand this entry's buffers back to the pool's shared spill (if
    /// the pool is still alive).
    fn flush(self) {
        let Some(pool) = self.pool.upgrade() else {
            return;
        };
        let mut shared = pool.shared.lock();
        for b in self.bufs {
            if shared.len() >= SHARED_SPILL_CAP {
                break;
            }
            shared.push(b);
        }
    }
}

#[cfg(not(loom))]
struct LocalTable(Vec<LocalEntry>);

#[cfg(not(loom))]
impl Drop for LocalTable {
    fn drop(&mut self) {
        for e in self.0.drain(..) {
            e.flush();
        }
    }
}

/// Shared recycling pool for frame buffers. One per transport; cheap
/// handles via `Arc`.
pub(crate) struct BufferPool {
    shared: Mutex<Vec<BytesMut>>,
    /// Buffers created because no free one was available.
    fresh: AtomicU64,
    /// Acquires served from a free list.
    reused: AtomicU64,
    /// Buffers currently out (acquired, not yet released).
    live: AtomicU64,
}

impl BufferPool {
    pub fn new() -> Arc<BufferPool> {
        Arc::new(BufferPool {
            shared: Mutex::new(Vec::new()),
            fresh: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            live: AtomicU64::new(0),
        })
    }

    #[cfg(not(loom))]
    fn key(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Take a cleared buffer: thread-local free list, then the shared
    /// spill, then a fresh allocation.
    pub fn acquire(self: &Arc<Self>) -> PooledBuf {
        self.live.fetch_add(1, Ordering::Relaxed);
        if let Some(buf) = self.take_local().or_else(|| self.shared.lock().pop()) {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return PooledBuf {
                buf,
                pool: self.clone(),
            };
        }
        self.fresh.fetch_add(1, Ordering::Relaxed);
        PooledBuf {
            buf: BytesMut::with_capacity(FRESH_CAP),
            pool: self.clone(),
        }
    }

    /// Acquire and fill from a slice (tests and loom models).
    #[cfg(any(test, loom))]
    pub fn pooled(self: &Arc<Self>, bytes: &[u8]) -> PooledBuf {
        let mut b = self.acquire();
        b.buf_mut().extend_from_slice(bytes);
        b
    }

    #[cfg(not(loom))]
    fn take_local(self: &Arc<Self>) -> Option<BytesMut> {
        let key = self.key();
        LOCAL_FREE
            .try_with(|cell| {
                let mut table = cell.borrow_mut();
                let entry = table.0.iter_mut().find(|e| e.key == key)?;
                entry.bufs.pop()
            })
            .ok()
            .flatten()
    }

    #[cfg(loom)]
    fn take_local(self: &Arc<Self>) -> Option<BytesMut> {
        None
    }

    fn release(self: &Arc<Self>, mut buf: BytesMut) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        buf.clear();
        if buf.capacity() > MAX_RETAINED_CAP {
            return;
        }
        let Some(buf) = self.store_local(buf) else {
            return;
        };
        let mut shared = self.shared.lock();
        if shared.len() < SHARED_SPILL_CAP {
            shared.push(buf);
        }
    }

    /// Try to park `buf` on this thread's free list; hand it back for
    /// the shared spill when the local list is full (or TLS is gone,
    /// e.g. during thread teardown).
    #[cfg(not(loom))]
    fn store_local(self: &Arc<Self>, buf: BytesMut) -> Option<BytesMut> {
        let key = self.key();
        // `slot` survives the closure so the buffer is handed back for
        // the shared spill both when the local list is full and when TLS
        // is already torn down (`try_with` fails without running it).
        let mut slot = Some(buf);
        let evicted = LOCAL_FREE
            .try_with(|cell| {
                let buf = slot.take().expect("slot filled above");
                let mut table = cell.borrow_mut();
                if let Some(entry) = table.0.iter_mut().find(|e| e.key == key) {
                    if entry.bufs.len() < LOCAL_FREE_CAP {
                        entry.bufs.push(buf);
                    } else {
                        slot = Some(buf);
                    }
                    return None;
                }
                let evicted = if table.0.len() >= LOCAL_POOLS_CAP {
                    // Evict the oldest pool's entry; its buffers go back
                    // to that pool's shared spill outside the borrow.
                    Some(table.0.remove(0))
                } else {
                    None
                };
                table.0.push(LocalEntry {
                    key,
                    pool: Arc::downgrade(self),
                    bufs: vec![buf],
                });
                evicted
            })
            .ok()
            .flatten();
        if let Some(entry) = evicted {
            entry.flush();
        }
        slot
    }

    #[cfg(loom)]
    fn store_local(self: &Arc<Self>, buf: BytesMut) -> Option<BytesMut> {
        Some(buf)
    }

    /// Buffers currently acquired and not yet released.
    #[cfg(any(test, loom))]
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Buffers created fresh because no recycled one was free.
    #[cfg(any(test, loom))]
    pub fn fresh_count(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Acquires served from a free list instead of the allocator.
    #[cfg(all(test, not(loom)))]
    pub fn reused_count(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }
}

/// An owned, recycled frame buffer. Dereferences to the encoded bytes;
/// dropping it returns the backing storage to its pool.
pub(crate) struct PooledBuf {
    buf: BytesMut,
    pool: Arc<BufferPool>,
}

impl PooledBuf {
    /// The underlying buffer, for encoding into.
    pub fn buf_mut(&mut self) -> &mut BytesMut {
        &mut self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        self.pool.release(buf);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_reuses_capacity() {
        let pool = BufferPool::new();
        let mut a = pool.acquire();
        a.buf_mut().extend_from_slice(&[7u8; 100]);
        drop(a);
        assert_eq!(pool.live(), 0);
        let b = pool.acquire();
        assert_eq!(b.len(), 0, "recycled buffer must come back cleared");
        assert_eq!(pool.fresh_count(), 1);
        assert_eq!(pool.reused_count(), 1);
    }

    #[test]
    fn cross_thread_release_spills_to_shared() {
        let pool = BufferPool::new();
        // Fill this thread's local list past its cap from another
        // thread's perspective: release LOCAL_FREE_CAP + 3 buffers on a
        // worker thread, then verify this thread can still reuse the
        // spilled ones.
        let bufs: Vec<_> = (0..LOCAL_FREE_CAP + 3).map(|_| pool.acquire()).collect();
        let p2 = pool.clone();
        std::thread::spawn(move || drop(bufs)).join().unwrap();
        assert_eq!(pool.live(), 0);
        let before = p2.fresh_count();
        let _again: Vec<_> = (0..LOCAL_FREE_CAP + 3).map(|_| p2.acquire()).collect();
        assert_eq!(p2.fresh_count(), before, "all acquires served recycled");
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = BufferPool::new();
        let mut a = pool.acquire();
        a.buf_mut()
            .extend_from_slice(&vec![0u8; MAX_RETAINED_CAP + 1]);
        drop(a);
        let b = pool.acquire();
        assert!(b.buf.capacity() <= MAX_RETAINED_CAP);
    }
}
