//! Loom models of the reactor's per-connection protocols. Run with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p tdp-wire --release loom_
//! ```
//!
//! Each test drives the *shipped* [`Flow`] state machine (the exact
//! code the epoll backend runs — see `reactor::SocketIo` for the
//! production binding) against a scripted in-memory [`FakeIo`], under
//! every interleaving of senders, receivers, and pool workers that the
//! checker can produce. Blocking waits with deadlines are explored
//! both ways (notified and timed out); a lost wakeup shows up as a
//! reported deadlock, not a hung test.
//!
//! Protocols covered (ISSUE 5 acceptance list):
//! 1. inbox pause-at-cap / resume-at-half (`loom_inbox_pause_resume`)
//! 2. outbox write-stall vs. kill-connection (`loom_outbox_stall_kill_vs_drain`)
//! 3. EPOLLOUT arm-on-EWOULDBLOCK vs. inline write (`loom_epollout_arm_vs_inline_write`)
//! 4. shutdown vs. in-flight notify (`loom_shutdown_vs_inflight_notify`,
//!    `loom_close_races_send`)
//!
//! plus the regression model for the partial-drain lost-wakeup fix
//! (`loom_outbox_partial_drain_wakes_sender`), the shard-routing model
//! (`loom_shard_routing`) and the buffer-pool accounting model
//! (`loom_buffer_pool_stall_kill_vs_drain`) from ISSUE 9.

use crate::flow::{ConnTuning, Flow, FlowIo, Interest};
use crate::pool::{BufferPool, PooledBuf};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::sync::Mutex as StdMutex;
use std::time::Duration;
use tdp_proto::{encode_frame, ContextId, FrameDecoder, Message, TdpError};
use tdp_sync::atomic::{AtomicU64, Ordering};
use tdp_sync::{Arc, Condvar, Mutex};

// ------------------------------------------------------------- fake IO

enum ReadStep {
    Data(Vec<u8>),
    Eof,
}

/// A scripted endpoint. Internal state uses plain `std` locks on
/// purpose: the shim serializes model threads, so these never contend
/// and — unlike loom-instrumented locks — add no scheduling points,
/// keeping the state space down to the decisions that matter.
struct FakeIo {
    reads: StdMutex<VecDeque<ReadStep>>,
    /// Bytes the "socket buffer" accepts before `EWOULDBLOCK`.
    write_capacity: StdMutex<usize>,
    written: StdMutex<Vec<u8>>,
    rearms: StdMutex<Vec<Interest>>,
    shutdowns: StdMutex<Vec<&'static str>>,
}

impl FakeIo {
    fn new(reads: Vec<ReadStep>, write_capacity: usize) -> Arc<FakeIo> {
        Arc::new(FakeIo {
            reads: StdMutex::new(reads.into_iter().collect()),
            write_capacity: StdMutex::new(write_capacity),
            written: StdMutex::new(Vec::new()),
            rearms: StdMutex::new(Vec::new()),
            shutdowns: StdMutex::new(Vec::new()),
        })
    }

    fn add_write_capacity(&self, n: usize) {
        *self.write_capacity.lock().unwrap() += n;
    }

    fn written(&self) -> Vec<u8> {
        self.written.lock().unwrap().clone()
    }

    fn rearmed_read(&self) -> bool {
        self.rearms.lock().unwrap().iter().any(|i| i.read)
    }

    fn rearmed_write(&self) -> bool {
        self.rearms.lock().unwrap().iter().any(|i| i.write)
    }
}

impl FlowIo for Arc<FakeIo> {
    fn read(&self, buf: &mut [u8]) -> io::Result<usize> {
        match self.reads.lock().unwrap().pop_front() {
            Some(ReadStep::Data(chunk)) => {
                assert!(chunk.len() <= buf.len(), "script chunk exceeds read buf");
                buf[..chunk.len()].copy_from_slice(&chunk);
                Ok(chunk.len())
            }
            Some(ReadStep::Eof) => Ok(0),
            None => Err(io::ErrorKind::WouldBlock.into()),
        }
    }

    fn write(&self, buf: &[u8]) -> io::Result<usize> {
        let mut cap = self.write_capacity.lock().unwrap();
        if *cap == 0 {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let n = buf.len().min(*cap);
        *cap -= n;
        self.written.lock().unwrap().extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn shutdown_read(&self) {
        self.shutdowns.lock().unwrap().push("read");
    }

    fn shutdown_write(&self) {
        self.shutdowns.lock().unwrap().push("write");
    }

    fn shutdown_both(&self) {
        self.shutdowns.lock().unwrap().push("both");
    }

    fn rearm(&self, interest: Interest) {
        self.rearms.lock().unwrap().push(interest);
    }
}

// ------------------------------------------------------------- helpers

fn frame(n: u64) -> Vec<u8> {
    encode_frame(&Message::Join { ctx: ContextId(n) }).to_vec()
}

fn tuning(inbox_messages: usize, outbox_bytes: usize) -> ConnTuning {
    ConnTuning {
        inbox_messages,
        outbox_bytes,
        // The numeric value is irrelevant under loom: the checker
        // explores the timeout as a nondeterministic event.
        write_stall: Duration::from_millis(1),
        read_timeout: None,
    }
}

fn new_flow(io: Arc<FakeIo>, t: ConnTuning) -> Arc<Flow<Arc<FakeIo>>> {
    Arc::new(Flow::new(io, t, FrameDecoder::new()))
}

/// Wrap raw frame bytes as a [`PooledBuf`] the way the transports do
/// (under loom the pool's thread-local layer is compiled out, so every
/// acquire/release is a model-visible shared-lock interaction).
fn pooled(pool: &Arc<BufferPool>, bytes: &[u8]) -> PooledBuf {
    pool.pooled(bytes)
}

/// Leaked cross-execution outcome set, for asserting that a particular
/// outcome is *reachable* (e.g. the notify path, not just the timeout
/// path) once the checker has explored every schedule.
fn outcome_set() -> &'static StdMutex<HashSet<&'static str>> {
    Box::leak(Box::default())
}

// -------------------------------------------------------------- models

/// Protocol 1: the inbox pauses read interest at its bound and resumes
/// (with a rearm) once the consumer drains it to half. The consumer's
/// `recv` and the worker's readiness delivery interleave freely; the
/// second readiness report is gated on the resume-rearm, exactly as
/// the oneshot kernel registration would gate it.
#[test]
fn loom_inbox_pause_resume() {
    loom::model(|| {
        // Chunk A carries two frames: one readiness report fills the
        // inbox to its bound (2) and pauses. Chunk B is the third
        // frame, deliverable only after the resume-rearm.
        let mut chunk_a = frame(1);
        chunk_a.extend_from_slice(&frame(2));
        let io = FakeIo::new(vec![ReadStep::Data(chunk_a), ReadStep::Data(frame(3))], 0);
        let flow = new_flow(Arc::clone(&io), tuning(2, 1024));

        let rearmed = Arc::new((Mutex::new(false), Condvar::new()));

        let w_flow = Arc::clone(&flow);
        let w_io = Arc::clone(&io);
        let w_rearmed = Arc::clone(&rearmed);
        let worker = loom::thread::spawn(move || {
            w_flow.on_ready(true, false);
            // The kernel re-reports readiness only after the oneshot
            // registration is rearmed for reads (the resume).
            let (m, cv) = &*w_rearmed;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            drop(g);
            assert!(w_io.rearmed_read(), "resume must rearm read interest");
            w_flow.on_ready(true, false);
        });

        let m1 = flow.recv(None).unwrap();
        assert_eq!(m1, Message::Join { ctx: ContextId(1) });
        // recv returned ⇒ chunk A was processed ⇒ the inbox hit its
        // bound and paused; popping below half resumed + rearmed.
        {
            let (m, cv) = &*rearmed;
            *m.lock() = true;
            cv.notify_all();
        }
        let m2 = flow.recv(None).unwrap();
        let m3 = flow.recv(None).unwrap();
        assert_eq!(m2, Message::Join { ctx: ContextId(2) });
        assert_eq!(m3, Message::Join { ctx: ContextId(3) });
        worker.join().unwrap();

        let (inbox_len, paused, _, _, _) = flow.snapshot();
        assert_eq!(inbox_len, 0);
        assert!(!paused, "fully drained inbox must not stay paused");
    });
}

/// Protocol 2: a backpressured sender either gets woken by the
/// reactor's drain (Ok) or its write-stall timeout fires and kills the
/// connection (Disconnected + full shutdown). Both outcomes must be
/// reachable, and no schedule may deadlock or double-kill.
#[test]
fn loom_outbox_stall_kill_vs_drain() {
    let seen = outcome_set();
    loom::model(move || {
        let f1 = frame(1);
        let f2 = frame(2);
        let io = FakeIo::new(vec![], 0);
        let pool = BufferPool::new();
        let flow = new_flow(Arc::clone(&io), tuning(8, f2.len() + 1));

        // First frame is admitted unconditionally (lone oversized
        // frame rule) and arms write interest on EWOULDBLOCK.
        flow.send(pooled(&pool, &f1)).unwrap();

        let w_flow = Arc::clone(&flow);
        let w_io = Arc::clone(&io);
        let f1_len = f1.len();
        let worker = loom::thread::spawn(move || {
            // The peer drained its receive buffer: the socket can take
            // the whole queued frame, and EPOLLOUT fires.
            w_io.add_write_capacity(f1_len);
            w_flow.on_ready(false, true);
        });

        match flow.send(pooled(&pool, &f2)) {
            Ok(()) => {
                seen.lock().unwrap().insert("ok");
                let (_, _, _, closed, _) = flow.snapshot();
                assert!(!closed, "successful send must not kill the connection");
            }
            Err(TdpError::Disconnected) => {
                seen.lock().unwrap().insert("killed");
                // The kill path must tear down both directions so the
                // peer and the local receiver both unblock.
                assert!(io.shutdowns.lock().unwrap().contains(&"both"));
                assert!(matches!(flow.recv(None), Err(TdpError::Disconnected)));
            }
            Err(e) => panic!("unexpected send error: {e:?}"),
        }
        worker.join().unwrap();
    });
    let seen = seen.lock().unwrap();
    assert!(
        seen.contains("ok"),
        "drain-wakes-sender path never explored"
    );
    assert!(
        seen.contains("killed"),
        "write-stall kill path never explored"
    );
}

/// Regression model for the partial-drain lost wakeup: a drain that
/// frees outbox space but ends in `EWOULDBLOCK` must still wake
/// backpressured senders. The waiter here blocks *untimed* on the
/// exact condvar + predicate `send` uses, so the stall timeout cannot
/// mask the bug: without the `freed` notify in `drain_write`, every
/// schedule where the waiter parks before the drain leaves it parked
/// forever — reported by the checker as a deadlock.
#[test]
fn loom_outbox_partial_drain_wakes_sender() {
    loom::model(|| {
        let f1 = frame(1);
        let f2_len = frame(2).len();
        let io = FakeIo::new(vec![], 0);
        let pool = BufferPool::new();
        let flow = new_flow(Arc::clone(&io), tuning(8, f2_len + 1));

        flow.send(pooled(&pool, &f1)).unwrap(); // queued; write armed

        let w_flow = Arc::clone(&flow);
        let w_io = Arc::clone(&io);
        let partial = f1.len() - 1; // all but the last byte of f1
        let worker = loom::thread::spawn(move || {
            w_io.add_write_capacity(partial);
            w_flow.on_ready(false, true);
        });

        // Needs f2_len+1 free bytes; the partial drain leaves exactly
        // one byte queued, so (with the notify fix) space opens up.
        assert!(
            flow.await_outbox_space(f2_len),
            "connection must stay open through a partial drain"
        );
        worker.join().unwrap();
    });
}

/// Protocol 3: the inline-write fast path vs. arm-on-EWOULDBLOCK.
/// Whatever the interleaving, every queued byte is written exactly
/// once, in order, and write interest is never left armed after the
/// outbox empties.
#[test]
fn loom_epollout_arm_vs_inline_write() {
    loom::model(|| {
        let f1 = frame(1);
        let f2 = frame(2);
        let io = FakeIo::new(vec![], f1.len()); // room for exactly f1
        let pool = BufferPool::new();
        let flow = new_flow(Arc::clone(&io), tuning(8, 1024));

        // Inline fast path: the socket takes the whole frame, no
        // reactor round trip, no write interest.
        flow.send(pooled(&pool, &f1)).unwrap();

        let w_flow = Arc::clone(&flow);
        let w_io = Arc::clone(&io);
        let f2_len = f2.len();
        let worker = loom::thread::spawn(move || {
            w_io.add_write_capacity(f2_len);
            w_flow.on_ready(false, true);
        });

        // Races the capacity top-up: either the inline write drains it
        // (worker's on_ready finds nothing) or it hits EWOULDBLOCK and
        // arms EPOLLOUT for the worker to finish.
        flow.send(pooled(&pool, &f2)).unwrap();
        worker.join().unwrap();

        let mut expect = f1.clone();
        expect.extend_from_slice(&f2);
        assert_eq!(io.written(), expect, "bytes lost, duplicated, or reordered");
        let (_, _, want_write, _, outbox_bytes) = flow.snapshot();
        assert_eq!(outbox_bytes, 0);
        assert!(!want_write, "write interest left armed on empty outbox");
        if io.rearmed_write() {
            // The EWOULDBLOCK branch was taken in this schedule; the
            // oneshot contract was honored.
        }
    });
}

/// Protocol 4a: shutdown vs. an in-flight receiver. A `close` racing a
/// blocked untimed `recv` and a worker delivering EOF must always
/// unblock the receiver with `Disconnected` — a missing notify on
/// either path is a deadlock the checker reports.
#[test]
fn loom_shutdown_vs_inflight_notify() {
    loom::model(|| {
        let io = FakeIo::new(vec![ReadStep::Eof], 0);
        let flow = new_flow(Arc::clone(&io), tuning(8, 1024));

        let c_flow = Arc::clone(&flow);
        let closer = loom::thread::spawn(move || c_flow.close());

        let w_flow = Arc::clone(&flow);
        let worker = loom::thread::spawn(move || w_flow.on_ready(true, false));

        // Untimed: only a correctly-notified rx_cv can unblock this.
        match flow.recv(None) {
            Err(TdpError::Disconnected) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
        closer.join().unwrap();
        worker.join().unwrap();

        let (_, _, _, closed, _) = flow.snapshot();
        assert!(closed);
    });
}

/// Protocol 4b: shutdown vs. an in-flight sender. `send` racing
/// `close` must fail fast or succeed-and-flush — and when it reports
/// Ok the frame's bytes must actually reach the wire (close flushes
/// queued frames before the half-close).
#[test]
fn loom_close_races_send() {
    loom::model(|| {
        let f1 = frame(1);
        let io = FakeIo::new(vec![], 1024);
        let pool = BufferPool::new();
        let flow = new_flow(Arc::clone(&io), tuning(8, 1024));

        let c_flow = Arc::clone(&flow);
        let closer = loom::thread::spawn(move || c_flow.close());

        let sent = flow.send(pooled(&pool, &f1));
        closer.join().unwrap();

        match sent {
            Ok(()) => assert_eq!(io.written(), f1, "Ok send must reach the wire"),
            Err(TdpError::Disconnected) => {
                assert!(io.written().is_empty(), "failed send must not leak bytes");
            }
            Err(e) => panic!("unexpected send error: {e:?}"),
        }
        let (_, _, _, closed, outbox_bytes) = flow.snapshot();
        assert!(closed);
        assert_eq!(outbox_bytes, 0);
        // Close must half-close the write side so the peer sees EOF.
        assert!(io.shutdowns.lock().unwrap().contains(&"write"));
    });
}

/// ISSUE 9 model: connection registration across reactor shards, over
/// the exact primitives `ReactorSet::register` uses — a shared
/// `fetch_add` id counter and `shard_index` (pure modulo) into
/// per-shard connection maps. Two threads registering concurrently
/// must get distinct ids, land each connection in exactly the shard
/// its id computes to, and a concurrent deregister must find the entry
/// in that same shard — no entry is ever visible from two shards and
/// none is lost.
#[test]
fn loom_shard_routing() {
    loom::model(|| {
        use crate::reactor::shard_index;
        const SHARDS: usize = 2;
        let next = Arc::new(AtomicU64::new(0));
        let maps: Arc<Vec<Mutex<HashMap<u64, u64>>>> =
            Arc::new((0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect());

        let handles: Vec<_> = (0..2u64)
            .map(|tid| {
                let next = Arc::clone(&next);
                let maps = Arc::clone(&maps);
                loom::thread::spawn(move || {
                    let id = next.fetch_add(1, Ordering::Relaxed);
                    let shard = shard_index(id, SHARDS);
                    let prev = maps[shard].lock().insert(id, tid);
                    assert!(prev.is_none(), "two connections mapped to one slot");
                    id
                })
            })
            .collect();
        let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        assert_ne!(ids[0], ids[1], "id allocation must be unique");
        for id in ids {
            let shard = shard_index(id, SHARDS);
            // Deregistration looks up the same pure function — the
            // entry is in that shard and no other.
            for (s, m) in maps.iter().enumerate() {
                let found = m.lock().remove(&id).is_some();
                assert_eq!(found, s == shard, "conn {id} visible from shard {s}");
            }
        }
    });
}

/// ISSUE 9 model: buffer-pool accounting when a stall-kill (close
/// clearing the outbox) races a worker's drain. Whichever side ends up
/// dropping the queued frame's `PooledBuf`, the release happens exactly
/// once: `live` returns to zero and a later acquire is served from the
/// recycled buffer, not the allocator.
#[test]
fn loom_buffer_pool_stall_kill_vs_drain() {
    loom::model(|| {
        let f1 = frame(1);
        let io = FakeIo::new(vec![], 0); // no capacity: frame queues
        let pool = BufferPool::new();
        let flow = new_flow(Arc::clone(&io), tuning(8, 1024));

        flow.send(pooled(&pool, &f1)).unwrap();
        assert_eq!(pool.live(), 1);

        let c_flow = Arc::clone(&flow);
        let closer = loom::thread::spawn(move || c_flow.close());

        let w_flow = Arc::clone(&flow);
        let w_io = Arc::clone(&io);
        let n = f1.len();
        let worker = loom::thread::spawn(move || {
            w_io.add_write_capacity(n);
            w_flow.on_ready(false, true);
        });

        closer.join().unwrap();
        worker.join().unwrap();

        // Exactly one release: a double release would leave `live` at
        // u64::MAX (wrapping), a leak at 1.
        assert_eq!(pool.live(), 0, "frame buffer leaked or double-released");
        let fresh_before = pool.fresh_count();
        drop(pool.acquire());
        assert_eq!(
            pool.fresh_count(),
            fresh_before,
            "released buffer must be reusable"
        );
    });
}
