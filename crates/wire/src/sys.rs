//! Minimal unsafe FFI shim over the Linux syscalls the reactor backend
//! needs: `epoll_create1` / `epoll_ctl` / `epoll_wait`, `eventfd` for
//! cross-thread wakeups, and `fcntl` for `O_NONBLOCK`.
//!
//! This build environment has no crates.io access (see
//! `stubs/README.md`), so instead of pulling in `libc`/`mio` we declare
//! exactly the handful of symbols we use against the C library every
//! Rust binary on linux-gnu already links. Everything unsafe lives in
//! this module, behind the safe [`Epoll`] / [`EventFd`] wrappers;
//! errors are surfaced as `std::io::Error` via `last_os_error`.

use std::io;
use std::os::unix::io::RawFd;

// ------------------------------------------------------------ constants
//
// Values are identical across the Linux architectures Rust supports
// (asm-generic); x86_64 additionally packs `epoll_event` (see below).

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLONESHOT: u32 = 1 << 30;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`. x86-64 is the one Linux ABI where
/// it is packed (a 32-bit-compat leftover); everywhere else it has
/// natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    /// User token; we never store pointers here, only plain ids.
    pub token: u64,
}

/// The kernel's `struct iovec` for [`writev`].
#[repr(C)]
struct IoVec {
    iov_base: *const core::ffi::c_void,
    iov_len: usize,
}

/// The kernel's `struct pollfd` for [`poll`].
#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
    fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
    fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, ...) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

/// Close an owned fd, checking the return. `EINTR` is deliberately not
/// retried: on Linux the descriptor is released even when `close`
/// reports it, and a retry could close an unrelated recycled fd. Any
/// other failure (`EBADF` above all) means fd bookkeeping is corrupt —
/// debug builds assert, release builds drop the error the way `File`'s
/// own `Drop` does.
fn close_fd(fd: RawFd) {
    // SAFETY: callers own `fd` and never use it after this call.
    let ret = unsafe { close(fd) };
    if ret < 0 {
        let err = io::Error::last_os_error();
        debug_assert_eq!(err.raw_os_error(), Some(EINTR), "close({fd}) failed: {err}");
    }
}

/// How many slices one [`writev_fd`] call gathers at most; callers
/// batch in chunks of this size.
pub const WRITEV_BATCH: usize = 64;

/// Vectored write: push up to [`WRITEV_BATCH`] byte slices through one
/// `writev(2)` syscall. Returns the number of bytes accepted (possibly
/// a partial gather — the kernel stops wherever the socket buffer
/// fills). Empty slices are legal and contribute nothing.
pub fn writev_fd(fd: RawFd, bufs: &[&[u8]]) -> io::Result<usize> {
    let mut iov = [const {
        IoVec {
            iov_base: std::ptr::null(),
            iov_len: 0,
        }
    }; WRITEV_BATCH];
    let n = bufs.len().min(WRITEV_BATCH);
    for (slot, b) in iov.iter_mut().zip(bufs.iter()) {
        slot.iov_base = b.as_ptr().cast();
        slot.iov_len = b.len();
    }
    // SAFETY: `iov[..n]` points at live slices borrowed for this whole
    // call; the kernel only reads from them.
    let ret = unsafe { writev(fd, iov.as_ptr(), n as i32) };
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret as usize)
    }
}

/// Block until `fd` is readable (or in an error/hangup state — those
/// also wake the poll, and the subsequent read surfaces them), or until
/// `timeout_ms` elapses (`< 0` waits forever). Returns whether the fd
/// was reported ready. Retries on `EINTR` without re-extending the
/// timeout beyond the caller's budget — callers pass deadlines, so they
/// recompute on the retry path themselves if they need exactness.
pub fn poll_readable(fd: RawFd, timeout_ms: i32) -> io::Result<bool> {
    let mut pfd = PollFd {
        fd,
        events: POLLIN,
        revents: 0,
    };
    loop {
        // SAFETY: `pfd` is a live stack slot for the whole call.
        let ret = unsafe { poll(&mut pfd, 1, timeout_ms) };
        if ret < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(e);
        }
        // POLLERR/POLLHUP are delivered regardless of `events`; any
        // non-zero revents means a read will make progress (data, EOF,
        // or a hard error to surface).
        return Ok(ret > 0);
    }
}

/// Put a descriptor into non-blocking mode via `fcntl(F_SETFL)`.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl with F_GETFL/F_SETFL reads/writes no memory.
    unsafe {
        let flags = cvt(fcntl(fd, F_GETFL))?;
        cvt(fcntl(fd, F_SETFL, flags | O_NONBLOCK))?;
    }
    Ok(())
}

// ---------------------------------------------------------------- epoll

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain fd-returning syscall.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Start watching `fd` for `events`, tagging readiness with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the interest set of an already-watched `fd` (also rearms
    /// an `EPOLLONESHOT` registration that has fired).
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Stop watching `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block for readiness; `timeout_ms < 0` waits forever. Retries on
    /// `EINTR`. Returns the filled prefix of `events`.
    pub fn wait<'e>(
        &self,
        events: &'e mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<&'e [EpollEvent]> {
        loop {
            // SAFETY: the out-buffer is valid for `events.len()` entries.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            match cvt(n) {
                Ok(n) => return Ok(&events[..n as usize]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

// -------------------------------------------------------------- eventfd

/// A non-blocking eventfd used to kick `epoll_wait` from other threads
/// (registration changes take effect on their own; this is for shutdown
/// and deferred work).
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: plain fd-returning syscall.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wake whoever has this eventfd in an epoll set. `EAGAIN` means
    /// the counter is saturated — the fd is already readable, so the
    /// wakeup is delivered and the error is not worth surfacing. Any
    /// other failure is a bookkeeping bug and asserts in debug builds.
    pub fn signal(&self) {
        let one: u64 = 1;
        loop {
            // SAFETY: writes 8 bytes from a live stack slot.
            let n = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
            if n >= 0 {
                return;
            }
            let err = io::Error::last_os_error();
            match err.raw_os_error() {
                Some(EINTR) => continue,
                Some(EAGAIN) => return, // counter saturated: still readable
                _ => {
                    debug_assert!(false, "eventfd write failed: {err}");
                    return;
                }
            }
        }
    }

    /// Consume pending wakeups so level-triggered polling quiesces.
    /// `EAGAIN` (nothing pending) is the expected no-op case.
    pub fn drain(&self) {
        let mut buf = 0u64;
        loop {
            // SAFETY: reads 8 bytes into a live stack slot.
            let n = unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
            if n >= 0 {
                return;
            }
            let err = io::Error::last_os_error();
            match err.raw_os_error() {
                Some(EINTR) => continue,
                Some(EAGAIN) => return, // already drained
                _ => {
                    debug_assert!(false, "eventfd read failed: {err}");
                    return;
                }
            }
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.fd(), EPOLLIN, 7).unwrap();
        let mut buf = [EpollEvent {
            events: 0,
            token: 0,
        }; 8];
        // Nothing signalled: times out empty.
        assert!(ep.wait(&mut buf, 0).unwrap().is_empty());
        ev.signal();
        let ready = ep.wait(&mut buf, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!({ ready[0].token }, 7);
        ev.drain();
        assert!(ep.wait(&mut buf, 0).unwrap().is_empty());
    }

    #[test]
    fn writev_gathers_multiple_slices() {
        use std::io::Read;
        use std::os::unix::io::AsRawFd;
        let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let a = std::net::TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (mut b, _) = l.accept().unwrap();
        let parts: [&[u8]; 4] = [b"he", b"", b"llo ", b"world"];
        let n = writev_fd(a.as_raw_fd(), &parts).unwrap();
        assert_eq!(n, 11);
        let mut got = [0u8; 11];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello world");
    }

    #[test]
    fn poll_readable_times_out_then_wakes() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let mut a = std::net::TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        assert!(!poll_readable(b.as_raw_fd(), 0).unwrap());
        a.write_all(b"x").unwrap();
        assert!(poll_readable(b.as_raw_fd(), 1000).unwrap());
        // EOF also reads as ready.
        drop(a);
        assert!(poll_readable(b.as_raw_fd(), 1000).unwrap());
    }

    #[test]
    fn nonblocking_flag_sticks() {
        let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        use std::os::unix::io::AsRawFd;
        set_nonblocking(l.as_raw_fd()).unwrap();
        // A non-blocking accept with no pending client returns WouldBlock.
        match l.accept() {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            Ok(_) => panic!("no client was connecting"),
        }
    }
}
