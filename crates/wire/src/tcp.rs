//! Real-socket backend: framed [`Message`] transport over loopback TCP.
//!
//! Design points, mirroring what the simulated backend guarantees:
//!
//! * **Streaming decode** — reads go through an incremental
//!   [`FrameDecoder`], so frames torn across arbitrary TCP segment
//!   boundaries reassemble correctly and corruption is detected (not
//!   spun on).
//! * **Write batching** — each connection owns a writer thread draining
//!   a *bounded* queue; consecutive queued frames are coalesced into a
//!   single `write_all` (up to [`TcpConfig::coalesce_bytes`]), cutting
//!   syscalls under bursty fan-out. A full queue blocks the sender —
//!   backpressure, not unbounded memory.
//! * **Fail-fast close** — `close` marks the connection dead (local
//!   sends fail immediately), lets already-queued frames flush, then
//!   half-closes the socket so the peer sees EOF; the local read side is
//!   shut down immediately so a blocked reader wakes. This matches the
//!   netsim `Conn::close` contract.
//! * **Hello handshake** — TCP carries no logical host identity, so the
//!   dialling side's first frame is [`Message::Hello`]; the accept side
//!   consumes it and records `peer_host` for the LASS locality rule.

use crate::pool::{BufferPool, PooledBuf};
use crate::{
    protocol_err, Endpoint, ListenerApi, RxApi, Transport, TxApi, WireConn, WireListener, WireRx,
    WireTx,
};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};
use tdp_proto::{
    encode_frame, encode_frame_into, Addr, FrameDecoder, HostId, Message, TdpError, TdpResult,
};
use tdp_sync::atomic::{AtomicBool, Ordering};
use tdp_sync::Arc;

/// Tunables for the TCP backend.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Default bound on a blocking `recv_msg` (`None` = wait forever).
    /// Explicit `recv_msg_timeout` deadlines always take precedence.
    pub read_timeout: Option<Duration>,
    /// Bound on a single socket write; a peer that stops draining for
    /// this long kills the connection rather than wedging the writer.
    pub write_timeout: Duration,
    /// Dial timeout.
    pub connect_timeout: Duration,
    /// How long the accept side waits for the `Hello` frame.
    pub handshake_timeout: Duration,
    /// Outbound queue depth, in frames. A full queue blocks `send_msg`
    /// (backpressure).
    pub queue_frames: usize,
    /// Coalesce consecutive queued frames into one write up to this many
    /// bytes.
    pub coalesce_bytes: usize,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            read_timeout: None,
            write_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(2),
            queue_frames: 256,
            coalesce_bytes: 16 * 1024,
        }
    }
}

/// Transport over real loopback TCP sockets.
#[derive(Clone)]
pub struct TcpTransport {
    cfg: TcpConfig,
    /// Frame buffers recycled across every connection this transport
    /// opens (same pool the epoll backend uses — see [`crate::pool`]).
    pool: Arc<BufferPool>,
}

impl Default for TcpTransport {
    fn default() -> TcpTransport {
        TcpTransport::new()
    }
}

impl TcpTransport {
    pub fn new() -> TcpTransport {
        TcpTransport::with_config(TcpConfig::default())
    }

    pub fn with_config(cfg: TcpConfig) -> TcpTransport {
        TcpTransport {
            cfg,
            pool: BufferPool::new(),
        }
    }

    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }
}

impl Transport for TcpTransport {
    /// Bind a loopback listener. The logical `port` is ignored — real
    /// port numbers are always ephemeral and the caller maps logical
    /// addresses to the [`Endpoint`] this returns.
    fn listen(&self, host: HostId, _port: u16) -> TdpResult<WireListener> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| TdpError::Substrate(format!("tcp bind: {e}")))?;
        let cfg = self.cfg.clone();
        let pool = self.pool.clone();
        let _ = host; // identity is per-connection (Hello), not per-listener
        spawn_real_listener(listener, "wire-accept", move |stream| {
            accept_handshake(stream, &cfg, &pool)
        })
    }

    fn connect(&self, from: HostId, to: &Endpoint) -> TdpResult<WireConn> {
        let sa = to
            .as_tcp()
            .ok_or_else(|| TdpError::Substrate(format!("tcp transport cannot dial {to}")))?;
        let stream = TcpStream::connect_timeout(&sa, self.cfg.connect_timeout)
            .map_err(|e| TdpError::Substrate(format!("tcp connect {sa}: {e}")))?;
        client_conn_over(stream, from, &self.cfg, &self.pool)
    }
}

/// Finish the client side of a connection on an established stream:
/// introduce ourselves with `Hello`, then wrap.
fn client_conn_over(
    mut stream: TcpStream,
    from: HostId,
    cfg: &TcpConfig,
    pool: &Arc<BufferPool>,
) -> TdpResult<WireConn> {
    stream
        .set_write_timeout(Some(cfg.write_timeout))
        .map_err(|e| TdpError::Substrate(format!("tcp set timeout: {e}")))?;
    stream
        .write_all(&encode_frame(&Message::Hello { host: from }))
        .map_err(|_| TdpError::Disconnected)?;
    conn_from_stream(stream, cfg, pool, None, FrameDecoder::new())
}

/// Wrap an established, handshake-complete stream as a [`WireConn`].
/// `leftover` holds bytes the handshake over-read past its frame.
fn conn_from_stream(
    stream: TcpStream,
    cfg: &TcpConfig,
    pool: &Arc<BufferPool>,
    peer_host: Option<HostId>,
    leftover: FrameDecoder,
) -> TdpResult<WireConn> {
    let sub = |e: std::io::Error| TdpError::Substrate(format!("tcp setup: {e}"));
    stream.set_nodelay(true).map_err(sub)?;
    stream
        .set_write_timeout(Some(cfg.write_timeout))
        .map_err(sub)?;
    let local = Endpoint::Tcp(stream.local_addr().map_err(sub)?);
    let peer = Endpoint::Tcp(stream.peer_addr().map_err(sub)?);
    let write_stream = stream.try_clone().map_err(sub)?;
    let (q_tx, q_rx) = bounded::<WriteOp>(cfg.queue_frames.max(1));
    let shared = Arc::new(TcpTxShared {
        q: q_tx,
        closed: AtomicBool::new(false),
        stream: stream.try_clone().map_err(sub)?,
        pool: pool.clone(),
    });
    let coalesce = cfg.coalesce_bytes.max(1);
    thread::Builder::new()
        .name("wire-writer".into())
        .spawn(move || writer_loop(write_stream, q_rx, coalesce))
        .map_err(|e| TdpError::Substrate(format!("spawn writer thread: {e}")))?;
    let rx = TcpRx {
        stream,
        dec: leftover,
        default_read_timeout: cfg.read_timeout,
        nonblocking: false,
    };
    Ok(WireConn::from_parts(
        WireTx::new(shared),
        WireRx::new(Box::new(rx)),
        local,
        peer,
        peer_host,
    ))
}

enum WriteOp {
    Frame(PooledBuf),
    Shutdown,
}

struct TcpTxShared {
    q: Sender<WriteOp>,
    closed: AtomicBool,
    /// Kept only to force-shutdown the socket on fail-fast close.
    stream: TcpStream,
    pool: Arc<BufferPool>,
}

impl TxApi for TcpTxShared {
    fn send_msg(&self, msg: &Message) -> TdpResult<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TdpError::Disconnected);
        }
        // Encode into a recycled buffer; the writer thread returns it to
        // the pool once the frame has been coalesced into its write.
        let mut frame = self.pool.acquire();
        encode_frame_into(msg, frame.buf_mut());
        // Blocking send on the bounded queue = backpressure. Errors mean
        // the writer thread is gone (socket died).
        self.q
            .send(WriteOp::Frame(frame))
            .map_err(|_| TdpError::Disconnected)
    }

    fn close(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake a local reader blocked on this connection immediately —
        // matching netsim, where close severs both directions.
        let _ = self.stream.shutdown(Shutdown::Read);
        match self.q.try_send(WriteOp::Shutdown) {
            Ok(()) => {} // queued frames flush, then the writer half-closes
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                // Queue wedged or writer gone: abandon pending output.
                let _ = self.stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// Drain the outbound queue, coalescing bursts into single writes.
fn writer_loop(mut stream: TcpStream, q: Receiver<WriteOp>, coalesce: usize) {
    let mut buf: Vec<u8> = Vec::with_capacity(coalesce);
    // `recv` erring means every sender dropped: connection released.
    'outer: while let Ok(first) = q.recv() {
        let mut shutdown = false;
        match first {
            WriteOp::Shutdown => break,
            WriteOp::Frame(frame) => {
                buf.clear();
                buf.extend_from_slice(&frame);
                while buf.len() < coalesce {
                    match q.try_recv() {
                        Ok(WriteOp::Frame(f)) => buf.extend_from_slice(&f),
                        Ok(WriteOp::Shutdown) => {
                            shutdown = true;
                            break;
                        }
                        Err(_) => break,
                    }
                }
                if let Err(e) = stream.write_all(&buf) {
                    // Peer gone or write timeout: fail fast. A timeout
                    // is specifically a stalled (undraining) peer —
                    // count it for the ops KPI plane.
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) {
                        crate::record_stall_kill();
                    }
                    break 'outer;
                }
            }
        }
        if shutdown {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}

struct TcpRx {
    stream: TcpStream,
    dec: FrameDecoder,
    default_read_timeout: Option<Duration>,
    /// Tracks the socket's current non-blocking flag so `try_recv_msg`
    /// toggles only when needed.
    nonblocking: bool,
}

impl TcpRx {
    fn set_nonblocking(&mut self, on: bool) -> TdpResult<()> {
        if self.nonblocking != on {
            self.stream
                .set_nonblocking(on)
                .map_err(|e| TdpError::Substrate(format!("tcp set_nonblocking: {e}")))?;
            self.nonblocking = on;
        }
        Ok(())
    }
}

impl RxApi for TcpRx {
    fn recv_msg_deadline(&mut self, deadline: Option<Instant>) -> TdpResult<Message> {
        self.set_nonblocking(false)?;
        let mut chunk = [0u8; 8 * 1024];
        loop {
            if let Some(msg) = self.dec.next().map_err(protocol_err)? {
                return Ok(msg);
            }
            let timeout = match deadline {
                Some(d) => Some(
                    d.checked_duration_since(Instant::now())
                        .ok_or(TdpError::Timeout)?,
                ),
                None => self.default_read_timeout,
            };
            // set_read_timeout(Some(0)) is an error; clamp to 1ms.
            let timeout = timeout.map(|t| t.max(Duration::from_millis(1)));
            self.stream
                .set_read_timeout(timeout)
                .map_err(|e| TdpError::Substrate(format!("tcp set timeout: {e}")))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TdpError::Disconnected),
                Ok(n) => self.dec.feed(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(TdpError::Timeout)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(TdpError::Disconnected),
            }
        }
    }

    fn try_recv_msg(&mut self) -> TdpResult<Option<Message>> {
        if let Some(msg) = self.dec.next().map_err(protocol_err)? {
            return Ok(Some(msg));
        }
        self.set_nonblocking(true)?;
        let mut chunk = [0u8; 8 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TdpError::Disconnected),
                Ok(n) => {
                    self.dec.feed(&chunk[..n]);
                    if let Some(msg) = self.dec.next().map_err(protocol_err)? {
                        return Ok(Some(msg));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(TdpError::Disconnected),
            }
        }
    }
}

/// Listener scaffolding shared by both real-socket backends (TCP and
/// epoll): a blocking accept thread feeding a bounded channel, with the
/// self-connection trick to unblock `accept` on close. What differs per
/// backend — handshake + connection wrapping — comes in as `upgrade`.
pub(crate) struct RealListener {
    local: SocketAddr,
    incoming: Receiver<WireConn>,
    closed: Arc<AtomicBool>,
    thread: tdp_sync::Mutex<Option<thread::JoinHandle<()>>>,
}

impl ListenerApi for RealListener {
    fn accept(&self) -> TdpResult<WireConn> {
        self.incoming.recv().map_err(|_| TdpError::Disconnected)
    }

    fn local_endpoint(&self) -> Endpoint {
        Endpoint::Tcp(self.local)
    }

    fn close(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // `std::net::TcpListener::accept` cannot be interrupted; wake the
        // accept thread with a throwaway self-connection.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_millis(500));
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
    }
}

/// Spawn the accept thread for a bound listener and wrap it as a
/// [`WireListener`]. `upgrade` performs the backend's handshake and
/// turns the raw stream into a [`WireConn`]; it runs inline on the
/// accept thread — LASS/CASS accept rates are tiny and a serial
/// handshake keeps connection establishment ordered.
pub(crate) fn spawn_real_listener(
    listener: TcpListener,
    name: &str,
    upgrade: impl Fn(TcpStream) -> TdpResult<WireConn> + Send + 'static,
) -> TdpResult<WireListener> {
    let local = listener
        .local_addr()
        .map_err(|e| TdpError::Substrate(format!("listener local_addr: {e}")))?;
    let (tx, rx) = bounded::<WireConn>(64);
    let closed = Arc::new(AtomicBool::new(false));
    let closed2 = closed.clone();
    let thread = thread::Builder::new()
        .name(format!("{name}-{local}"))
        .spawn(move || accept_loop(listener, upgrade, closed2, tx))
        .map_err(|e| TdpError::Substrate(format!("spawn accept thread: {e}")))?;
    Ok(WireListener::new(Arc::new(RealListener {
        local,
        incoming: rx,
        closed,
        thread: tdp_sync::Mutex::new(Some(thread)),
    })))
}

fn accept_loop(
    listener: TcpListener,
    upgrade: impl Fn(TcpStream) -> TdpResult<WireConn>,
    closed: Arc<AtomicBool>,
    out: Sender<WireConn>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => break,
        };
        if closed.load(Ordering::Acquire) {
            break; // the wake-up self-connection
        }
        match upgrade(stream) {
            Ok(conn) => {
                if out.send(conn).is_err() {
                    break;
                }
            }
            Err(_) => continue, // bad client; drop it
        }
    }
}

/// Server side of connection establishment: consume the `Hello` frame
/// and return the peer's logical host plus a decoder holding any bytes
/// the client pipelined right behind its Hello. Shared by both
/// real-socket backends; the stream is left in blocking mode with no
/// read timeout.
pub(crate) fn read_hello(
    stream: &TcpStream,
    handshake_timeout: Duration,
) -> TdpResult<(HostId, FrameDecoder)> {
    let sub = |e: std::io::Error| TdpError::Substrate(format!("handshake: {e}"));
    stream
        .set_read_timeout(Some(handshake_timeout))
        .map_err(sub)?;
    let mut dec = FrameDecoder::new();
    let mut chunk = [0u8; 1024];
    let mut reader = stream;
    let host = loop {
        if let Some(msg) = dec.next().map_err(protocol_err)? {
            match msg {
                Message::Hello { host } => break host,
                other => return Err(TdpError::Protocol(format!("expected Hello, got {other:?}"))),
            }
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Err(TdpError::Disconnected),
            Ok(n) => dec.feed(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(TdpError::Timeout),
        }
    };
    stream.set_read_timeout(None).map_err(sub)?;
    Ok((host, dec))
}

/// TCP-backend accept handshake: read `Hello`, then wrap with a writer
/// thread and blocking reader.
fn accept_handshake(
    stream: TcpStream,
    cfg: &TcpConfig,
    pool: &Arc<BufferPool>,
) -> TdpResult<WireConn> {
    let (host, dec) = read_hello(&stream, cfg.handshake_timeout)?;
    conn_from_stream(stream, cfg, pool, Some(host), dec)
}

// ---------------------------------------------------------------- proxy

/// Resolves a *logical* target address (as named in a CONNECT header) to
/// the real socket address to dial — and decides whether the crossing is
/// permitted at all. `tdp-core` supplies a closure that consults the
/// simulated topology's firewall rules plus its logical→real map.
pub type ProxyResolver = Arc<dyn Fn(Addr) -> TdpResult<SocketAddr> + Send + Sync>;

/// A running byte-relay proxy over real TCP — the §2.4 mechanism, same
/// one-line `CONNECT host:port\n` protocol as the netsim relay, so a
/// client can reach a logical address its own routes do not permit.
pub struct TcpProxy {
    local: SocketAddr,
    closed: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl TcpProxy {
    /// Real loopback address clients dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_millis(500));
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Spawn a relay proxy on an ephemeral loopback port.
pub fn spawn_proxy(resolver: ProxyResolver) -> TdpResult<TcpProxy> {
    let listener = TcpListener::bind(("127.0.0.1", 0))
        .map_err(|e| TdpError::Substrate(format!("proxy bind: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| TdpError::Substrate(format!("proxy local_addr: {e}")))?;
    let closed = Arc::new(AtomicBool::new(false));
    let closed2 = closed.clone();
    let thread = thread::Builder::new()
        .name(format!("wire-proxy-{local}"))
        .spawn(move || {
            while let Ok((client, _)) = listener.accept() {
                if closed2.load(Ordering::Acquire) {
                    break;
                }
                let resolver = resolver.clone();
                let _ = thread::Builder::new()
                    .name("wire-proxy-relay".into())
                    .spawn(move || relay_session(client, resolver));
            }
        })
        .map_err(|e| TdpError::Substrate(format!("spawn proxy thread: {e}")))?;
    Ok(TcpProxy {
        local,
        closed,
        thread: Some(thread),
    })
}

fn relay_session(mut client: TcpStream, resolver: ProxyResolver) {
    let _ = client.set_read_timeout(Some(Duration::from_secs(2)));
    let header = match read_header_line(&mut client) {
        Ok(h) => h,
        Err(_) => return,
    };
    let target = match header.strip_prefix("CONNECT ").and_then(Addr::parse) {
        Some(t) => t,
        None => {
            let _ = client.write_all(b"ERR bad connect header\n");
            return;
        }
    };
    let upstream = match resolver(target).and_then(|sa| {
        TcpStream::connect_timeout(&sa, Duration::from_secs(2))
            .map_err(|e| TdpError::Substrate(format!("dial {sa}: {e}")))
    }) {
        Ok(s) => s,
        Err(e) => {
            let _ = client.write_all(format!("ERR {e}\n").as_bytes());
            return;
        }
    };
    let _ = client.set_read_timeout(None);
    if client.write_all(b"OK\n").is_err() {
        return;
    }
    let (Ok(c2), Ok(u2)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };
    let up = thread::Builder::new()
        .name("tdp-tcp-pump".into())
        .spawn(move || pump(client, upstream))
        .expect("spawn tcp pump");
    pump(u2, c2);
    let _ = up.join();
}

/// Copy one direction until EOF or error, then propagate the close.
fn pump(mut from: TcpStream, mut to: TcpStream) {
    let _ = std::io::copy(&mut from, &mut to);
    let _ = to.shutdown(Shutdown::Write);
    let _ = from.shutdown(Shutdown::Read);
}

/// Read a `\n`-terminated header, byte at a time (headers are tiny and
/// this never over-reads into the relayed stream).
fn read_header_line(stream: &mut TcpStream) -> TdpResult<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err(TdpError::Disconnected),
            Ok(_) => {
                if byte[0] == b'\n' {
                    return String::from_utf8(line)
                        .map_err(|_| TdpError::Protocol("non-utf8 header".into()));
                }
                line.push(byte[0]);
                if line.len() > 256 {
                    return Err(TdpError::Protocol("connect header too long".into()));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(TdpError::Timeout),
        }
    }
}

/// Dial the logical `target` through the relay proxy at `proxy` and run
/// the `CONNECT` exchange, returning the established raw stream (ready
/// for the backend's `Hello`). Shared by both real-socket backends.
pub(crate) fn dial_via_proxy(
    proxy: SocketAddr,
    target: Addr,
    connect_timeout: Duration,
) -> TdpResult<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&proxy, connect_timeout)
        .map_err(|e| TdpError::Substrate(format!("tcp connect {proxy}: {e}")))?;
    stream
        .set_read_timeout(Some(connect_timeout))
        .map_err(|e| TdpError::Substrate(format!("tcp set timeout: {e}")))?;
    stream
        .write_all(format!("CONNECT {}\n", target.to_attr_value()).as_bytes())
        .map_err(|_| TdpError::Disconnected)?;
    let reply = read_header_line(&mut stream)?;
    if reply == "OK" {
        stream
            .set_read_timeout(None)
            .map_err(|e| TdpError::Substrate(format!("tcp set timeout: {e}")))?;
        Ok(stream)
    } else if let Some(e) = reply.strip_prefix("ERR ") {
        Err(TdpError::Substrate(format!("proxy: {e}")))
    } else {
        Err(TdpError::Protocol(format!("bad proxy reply: {reply:?}")))
    }
}

/// Client side: open a [`WireConn`] to the logical `target` through the
/// relay proxy at `proxy` (cf. `tdp_netsim::proxy::connect_via`).
pub fn tcp_connect_via(
    proxy: SocketAddr,
    target: Addr,
    from: HostId,
    cfg: &TcpConfig,
) -> TdpResult<WireConn> {
    let stream = dial_via_proxy(proxy, target, cfg.connect_timeout)?;
    // Standalone entry point (no transport in scope): a per-connection
    // pool still recycles buffers across this connection's frames.
    client_conn_over(stream, from, cfg, &BufferPool::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_proto::ContextId;

    fn transport() -> TcpTransport {
        TcpTransport::new()
    }

    fn pair(t: &TcpTransport) -> (WireConn, WireConn) {
        let lis = t.listen(HostId(1), 0).unwrap();
        let client = t.connect(HostId(0), &lis.local_endpoint()).unwrap();
        let server = lis.accept().unwrap();
        lis.close();
        (client, server)
    }

    #[test]
    fn hello_establishes_peer_host() {
        let t = transport();
        let (_client, server) = pair(&t);
        assert_eq!(server.peer_host(), Some(HostId(0)));
    }

    #[test]
    fn roundtrip_both_directions() {
        let t = transport();
        let (mut client, mut server) = pair(&t);
        let m1 = Message::Join { ctx: ContextId(1) };
        let m2 = Message::Reply(tdp_proto::Reply::Ok);
        client.send_msg(&m1).unwrap();
        assert_eq!(server.recv_msg().unwrap(), m1);
        server.send_msg(&m2).unwrap();
        assert_eq!(client.recv_msg().unwrap(), m2);
    }

    #[test]
    fn many_messages_survive_coalescing() {
        let t = transport();
        let (client, mut server) = pair(&t);
        for i in 0..500u64 {
            client
                .send_msg(&Message::Put {
                    ctx: ContextId(i),
                    key: format!("k{i}"),
                    value: "v".repeat((i % 97) as usize),
                })
                .unwrap();
        }
        for i in 0..500u64 {
            match server.recv_msg().unwrap() {
                Message::Put { ctx, key, .. } => {
                    assert_eq!(ctx, ContextId(i));
                    assert_eq!(key, format!("k{i}"));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn recv_timeout_fires() {
        let t = transport();
        let (_client, mut server) = pair(&t);
        let t0 = Instant::now();
        assert_eq!(
            server.recv_msg_timeout(Duration::from_millis(50)),
            Err(TdpError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn try_recv_msg_nonblocking() {
        let t = transport();
        let (client, mut server) = pair(&t);
        assert_eq!(server.try_recv_msg().unwrap(), None);
        let msg = Message::Leave { ctx: ContextId(5) };
        client.send_msg(&msg).unwrap();
        // Loopback delivery is fast but not instant.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match server.try_recv_msg().unwrap() {
                Some(m) => {
                    assert_eq!(m, msg);
                    break;
                }
                None if Instant::now() < deadline => {
                    // Parked wait, not a yield_now spin: poll cadence
                    // without burning a core while the frame is in flight.
                    std::thread::park_timeout(Duration::from_millis(1))
                }
                None => panic!("message never arrived"),
            }
        }
        // Blocking recv still works after the non-blocking toggle.
        client.send_msg(&msg).unwrap();
        assert_eq!(server.recv_msg().unwrap(), msg);
    }

    #[test]
    fn close_fails_fast_and_peer_sees_eof() {
        let t = transport();
        let (mut client, mut server) = pair(&t);
        let m = Message::Join { ctx: ContextId(1) };
        client.send_msg(&m).unwrap();
        client.close();
        assert_eq!(client.send_msg(&m), Err(TdpError::Disconnected));
        // Queued frame flushed before EOF.
        assert_eq!(server.recv_msg().unwrap(), m);
        assert_eq!(
            server.recv_msg_timeout(Duration::from_secs(2)),
            Err(TdpError::Disconnected)
        );
        // The closing side's reader wakes too.
        assert!(client.recv_msg_timeout(Duration::from_secs(2)).is_err());
    }

    #[test]
    fn drop_releases_connection() {
        let t = transport();
        let (client, mut server) = pair(&t);
        drop(client);
        assert_eq!(
            server.recv_msg_timeout(Duration::from_secs(2)),
            Err(TdpError::Disconnected)
        );
    }

    #[test]
    fn listener_close_unblocks_accept() {
        let t = transport();
        let lis = t.listen(HostId(0), 0).unwrap();
        let l2 = lis.clone();
        // Synchronize on the acceptor actually running (not a sleep):
        // close() must unblock accept() whether it lands before or after
        // the accept call itself, so entering the thread is enough.
        let (ready_tx, ready_rx) = bounded::<()>(1);
        let th = std::thread::spawn(move || {
            let _ = ready_tx.send(());
            l2.accept()
        });
        ready_rx.recv().unwrap();
        lis.close();
        assert!(th.join().unwrap().is_err());
    }

    #[test]
    fn proxy_relays_and_enforces_resolver() {
        let t = transport();
        let lis = t.listen(HostId(9), 0).unwrap();
        let real = lis.local_endpoint().as_tcp().unwrap();
        let allowed = Addr::new(HostId(9), 7777);
        let resolver: ProxyResolver = Arc::new(move |a: Addr| {
            if a == allowed {
                Ok(real)
            } else {
                Err(TdpError::BlockedByFirewall {
                    from: HostId(0),
                    to: a,
                })
            }
        });
        let proxy = spawn_proxy(resolver).unwrap();
        // Allowed target relays end to end, Hello intact.
        let client = tcp_connect_via(
            proxy.local_addr(),
            allowed,
            HostId(3),
            &TcpConfig::default(),
        )
        .unwrap();
        let mut server = lis.accept().unwrap();
        assert_eq!(server.peer_host(), Some(HostId(3)));
        let m = Message::Join { ctx: ContextId(4) };
        client.send_msg(&m).unwrap();
        assert_eq!(server.recv_msg().unwrap(), m);
        // Disallowed target is refused with the resolver's error text.
        let err = tcp_connect_via(
            proxy.local_addr(),
            Addr::new(HostId(1), 1),
            HostId(3),
            &TcpConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TdpError::Substrate(_)), "{err}");
        proxy.shutdown();
    }
}
