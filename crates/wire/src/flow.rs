//! The per-connection state machine of the epoll backend, extracted
//! from the reactor so it is generic over its IO — production wires it
//! to a non-blocking `TcpStream` + `epoll_ctl` rearm
//! (`reactor::SocketIo`); the `loom_` tests wire it to a scripted
//! in-memory IO and drive every interleaving of senders, receivers,
//! and pool workers through the exact code that ships.
//!
//! All synchronization goes through `tdp-sync`, so under
//! `RUSTFLAGS="--cfg loom"` the mutex/condvars here are loom's
//! instrumented ones. See DESIGN.md "Concurrency invariants" for the
//! lock-ordering and state-machine rules this module must uphold.

use crate::pool::PooledBuf;
use crate::protocol_err;
use std::collections::VecDeque;
use std::time::{Duration, Instant};
use tdp_proto::{DecodeScratch, FrameDecoder, Message, TdpError, TdpResult};
use tdp_sync::{Condvar, Mutex};

/// Cap on slices gathered per [`FlowIo::writev`] call (mirrors
/// [`crate::sys::WRITEV_BATCH`] without depending on the FFI module).
pub(crate) const WRITEV_BATCH: usize = 64;

/// Per-connection tunables, derived from [`crate::EpollConfig`].
#[derive(Debug, Clone)]
pub(crate) struct ConnTuning {
    /// Pause `EPOLLIN` while this many decoded messages are undelivered.
    pub inbox_messages: usize,
    /// `send_msg` blocks (backpressure) while the outbox holds this many
    /// bytes.
    pub outbox_bytes: usize,
    /// How long a backpressured `send_msg` waits before declaring the
    /// peer wedged and killing the connection (the TCP backend's
    /// `write_timeout` analogue).
    pub write_stall: Duration,
    /// Default bound on a blocking `recv` (`None` = wait forever).
    pub read_timeout: Option<Duration>,
}

/// The readiness the state machine currently wants from its IO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    pub read: bool,
    pub write: bool,
}

/// What [`Flow`] needs from a transport endpoint. The real
/// implementation is a non-blocking socket; the loom models script
/// results. Every method is called *with the flow lock held*, so
/// implementations must not block (beyond a non-blocking syscall) and
/// must not call back into the flow.
pub(crate) trait FlowIo {
    /// Non-blocking read; `WouldBlock` when nothing is buffered.
    fn read(&self, buf: &mut [u8]) -> std::io::Result<usize>;
    /// Non-blocking write; `WouldBlock` when the send buffer is full.
    fn write(&self, buf: &[u8]) -> std::io::Result<usize>;
    /// Non-blocking vectored write: push several frames in one syscall.
    /// Returns bytes accepted (possibly a partial gather). The default
    /// degenerates to a plain write of the first non-empty slice, so
    /// scripted test IOs keep their one-write-per-step semantics.
    fn writev(&self, bufs: &[&[u8]]) -> std::io::Result<usize> {
        for b in bufs {
            if !b.is_empty() {
                return self.write(b);
            }
        }
        Ok(0)
    }
    /// Half-close the receive side (local reads fail fast).
    fn shutdown_read(&self);
    /// Half-close the send side (peer sees EOF).
    fn shutdown_write(&self);
    /// Tear down both directions (wedged-peer kill path).
    fn shutdown_both(&self);
    /// Re-register readiness interest. Only called with a non-empty
    /// set; an empty interest leaves the registration disarmed until a
    /// state change rearms it.
    fn rearm(&self, interest: Interest);
    /// Whether a blocked receiver may take over the read side and wait
    /// on the endpoint directly ([`FlowIo::wait_readable`]) instead of
    /// parking on the reactor-fed condvar. `false` for scripted IOs.
    fn supports_direct_read(&self) -> bool {
        false
    }
    /// Block until the endpoint is readable (data, EOF, or error) or
    /// `timeout_ms` elapses (`< 0` = forever); returns whether it was
    /// reported ready. Unlike every other method, this is called
    /// *without* the flow lock — it parks the calling thread. Only
    /// called when [`FlowIo::supports_direct_read`] returns true.
    fn wait_readable(&self, timeout_ms: i32) -> std::io::Result<bool> {
        let _ = timeout_ms;
        Ok(true)
    }
}

pub(crate) struct Flow<IO> {
    io: IO,
    tuning: ConnTuning,
    inner: Mutex<FlowInner>,
    rx_cv: Condvar,
    tx_cv: Condvar,
}

struct FlowInner {
    // Receive side.
    dec: FrameDecoder,
    inbox: VecDeque<Message>,
    /// Recycled-string storage: decoded string fields reuse capacity of
    /// messages the consumer handed back through [`Flow::recycle`].
    scratch: DecodeScratch,
    /// Terminal receive condition, reported once the inbox drains.
    rx_err: Option<TdpError>,
    read_open: bool,
    /// Read interest withheld because the inbox is at its bound.
    paused: bool,
    /// A consumer blocked in `recv` owns the read side: it waits on the
    /// endpoint itself and drains in place, so readiness handlers must
    /// neither read nor arm read interest (a reactor-side drain here
    /// would strand the consumer in its endpoint wait — a lost wakeup).
    direct_reader: bool,
    // Send side.
    outbox: VecDeque<PooledBuf>,
    outbox_bytes: usize,
    /// Partial-write offset into the front outbox frame.
    head_off: usize,
    /// Write interest armed: the reactor owes us a drain.
    want_write: bool,
    /// `close()` ran with frames still queued: half-close after flush.
    flush_then_shutdown: bool,
    /// Local close or fatal socket error: sends fail fast.
    closed: bool,
}

/// Outbox contents handed back by [`Flow::begin_release`] for the
/// owner to flush synchronously (outside the flow lock).
pub(crate) struct FlushPlan {
    pub frames: VecDeque<PooledBuf>,
    pub head_off: usize,
    /// `close()` had requested a half-close once the queue drained.
    pub shutdown_write_after: bool,
}

impl<IO: FlowIo> Flow<IO> {
    /// Wrap an established endpoint. Frames the handshake over-read
    /// (already sitting in `dec`) are pumped into the inbox here —
    /// readiness will never re-report those bytes.
    pub fn new(io: IO, tuning: ConnTuning, dec: FrameDecoder) -> Flow<IO> {
        let flow = Flow {
            io,
            tuning,
            inner: Mutex::new(FlowInner {
                dec,
                inbox: VecDeque::new(),
                scratch: DecodeScratch::new(),
                rx_err: None,
                read_open: true,
                paused: false,
                direct_reader: false,
                outbox: VecDeque::new(),
                outbox_bytes: 0,
                head_off: 0,
                want_write: false,
                flush_then_shutdown: false,
                closed: false,
            }),
            rx_cv: Condvar::new(),
            tx_cv: Condvar::new(),
        };
        {
            let mut inner = flow.inner.lock();
            flow.pump_decoder(&mut inner);
        }
        flow
    }

    pub fn io(&self) -> &IO {
        &self.io
    }

    pub fn tuning(&self) -> &ConnTuning {
        &self.tuning
    }

    // ---- interest -----------------------------------------------------

    fn interest(inner: &FlowInner) -> Interest {
        Interest {
            // No read interest while a direct reader camps on the
            // endpoint: it sees readability itself, and a racing
            // reactor drain would strand it.
            read: inner.read_open && !inner.paused && !inner.direct_reader,
            write: inner.want_write,
        }
    }

    /// Rearm the (oneshot) registration to the current interest set.
    fn rearm(&self, inner: &FlowInner) {
        let interest = Self::interest(inner);
        if !interest.read && !interest.write {
            return; // stay disarmed; a state change will rearm
        }
        self.io.rearm(interest);
    }

    // ---- event handling (reactor / workers) ---------------------------

    /// One readiness report. Error/hangup conditions map to both flags:
    /// the drains will surface the failure through the IO result.
    pub fn on_ready(&self, readable: bool, writable: bool) {
        let mut inner = self.inner.lock();
        if readable && inner.read_open && !inner.direct_reader {
            self.drain_read(&mut inner);
        }
        if writable && (inner.want_write || inner.flush_then_shutdown) {
            self.drain_write(&mut inner);
        }
        self.rearm(&inner);
    }

    /// Read until `EWOULDBLOCK`, EOF, error, or the inbox bound.
    fn drain_read(&self, inner: &mut FlowInner) {
        let mut chunk = [0u8; 16 * 1024];
        let mut delivered = false;
        loop {
            if inner.inbox.len() >= self.tuning.inbox_messages {
                inner.paused = true; // consumer will unpause + rearm
                break;
            }
            match self.io.read(&mut chunk) {
                Ok(0) => {
                    inner.read_open = false;
                    inner.rx_err.get_or_insert(TdpError::Disconnected);
                    break;
                }
                Ok(n) => {
                    inner.dec.feed(&chunk[..n]);
                    if self.pump_decoder(inner) {
                        delivered = true;
                    }
                    if !inner.read_open {
                        break; // decoder hit a malformed frame
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Hard socket error kills both directions.
                    inner.read_open = false;
                    inner.rx_err.get_or_insert(TdpError::Disconnected);
                    inner.closed = true;
                    self.tx_cv.notify_all();
                    break;
                }
            }
        }
        if delivered || inner.rx_err.is_some() {
            self.rx_cv.notify_all();
        }
    }

    /// Move complete frames out of the decoder into the inbox. Returns
    /// whether anything was delivered.
    fn pump_decoder(&self, inner: &mut FlowInner) -> bool {
        let mut delivered = false;
        loop {
            let FlowInner { dec, scratch, .. } = inner;
            match dec.next_with(scratch) {
                Ok(Some(msg)) => {
                    inner.inbox.push_back(msg);
                    delivered = true;
                }
                Ok(None) => break,
                Err(e) => {
                    inner.read_open = false;
                    inner.rx_err.get_or_insert(protocol_err(e));
                    break;
                }
            }
        }
        delivered
    }

    /// Write outbox frames until empty or `EWOULDBLOCK` (which arms
    /// write interest — so the reactor resumes the drain when the
    /// socket buffer empties). Queued frames are coalesced into
    /// vectored writes: a burst of small puts leaves in one `writev`
    /// instead of one syscall per frame.
    fn drain_write(&self, inner: &mut FlowInner) {
        // Whether this drain freed any outbox space: backpressured
        // senders must be woken even when the drain ends in
        // `EWOULDBLOCK`, or a partial drain strands them until the
        // write-stall timer kills the connection (found by the loom
        // model `loom_outbox_partial_drain_wakes_sender`).
        let mut freed = false;
        while !inner.outbox.is_empty() {
            let res = {
                let mut iovs: [&[u8]; WRITEV_BATCH] = [&[]; WRITEV_BATCH];
                let mut n = 0;
                for (slot, frame) in iovs.iter_mut().zip(inner.outbox.iter()) {
                    *slot = if n == 0 {
                        &frame[inner.head_off..]
                    } else {
                        frame
                    };
                    n += 1;
                }
                self.io.writev(&iovs[..n])
            };
            match res {
                Ok(mut written) => {
                    if written > 0 {
                        freed = true;
                    }
                    inner.outbox_bytes -= written;
                    // Retire fully-written frames; a partial tail frame
                    // keeps its offset for the next pass. Dropping a
                    // retired frame returns its buffer to the pool.
                    while written > 0 {
                        let front_rem = inner.outbox.front().expect("bytes imply a frame").len()
                            - inner.head_off;
                        if written >= front_rem {
                            written -= front_rem;
                            inner.outbox.pop_front();
                            inner.head_off = 0;
                        } else {
                            inner.head_off += written;
                            written = 0;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    inner.want_write = true;
                    if freed {
                        self.tx_cv.notify_all();
                    }
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Peer gone: fail fast, like the TCP writer thread.
                    inner.closed = true;
                    inner.want_write = false;
                    inner.outbox.clear();
                    inner.outbox_bytes = 0;
                    inner.head_off = 0;
                    self.io.shutdown_write();
                    self.tx_cv.notify_all();
                    return;
                }
            }
        }
        inner.want_write = false;
        self.tx_cv.notify_all(); // backpressured senders may proceed
        if inner.flush_then_shutdown {
            inner.flush_then_shutdown = false;
            self.io.shutdown_write();
        }
    }

    // ---- send path ----------------------------------------------------

    pub fn send(&self, frame: PooledBuf) -> TdpResult<()> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(TdpError::Disconnected);
        }
        // Backpressure: wait for outbox space (a lone oversized frame is
        // admitted so progress is always possible). A peer that stops
        // draining for `write_stall` kills the connection instead of
        // wedging the sender — the TCP backend's write-timeout contract.
        if inner.outbox_bytes + frame.len() > self.tuning.outbox_bytes && !inner.outbox.is_empty() {
            let deadline = Instant::now() + self.tuning.write_stall;
            while inner.outbox_bytes + frame.len() > self.tuning.outbox_bytes
                && !inner.outbox.is_empty()
                && !inner.closed
            {
                if self.tx_cv.wait_until(&mut inner, deadline).timed_out() {
                    // The stall timer races the reactor's drain: space
                    // may have been freed concurrently with the
                    // deadline. Kill only if the stall is still real —
                    // otherwise loop, recheck, and proceed (found by
                    // the loom stall/kill model).
                    if inner.outbox_bytes + frame.len() <= self.tuning.outbox_bytes
                        || inner.outbox.is_empty()
                        || inner.closed
                    {
                        continue;
                    }
                    inner.closed = true;
                    inner.read_open = false;
                    inner.rx_err.get_or_insert(TdpError::Disconnected);
                    crate::record_stall_kill();
                    self.io.shutdown_both();
                    self.rx_cv.notify_all();
                    self.tx_cv.notify_all();
                    return Err(TdpError::Disconnected);
                }
            }
            if inner.closed {
                return Err(TdpError::Disconnected);
            }
        }
        inner.outbox_bytes += frame.len();
        inner.outbox.push_back(frame);
        if !inner.want_write {
            // Fast path: the socket was writable last we knew — drain
            // inline, no reactor round trip. Falls back to armed write
            // interest on a partial write.
            self.drain_write(&mut inner);
            if inner.want_write {
                self.rearm(&inner);
            }
        }
        Ok(())
    }

    pub fn close(&self) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        inner.closed = true;
        // Local reads fail fast (after already-decoded frames drain),
        // matching the TCP backend's immediate read-side shutdown.
        inner.read_open = false;
        inner.rx_err.get_or_insert(TdpError::Disconnected);
        self.io.shutdown_read();
        if inner.outbox.is_empty() {
            self.io.shutdown_write();
        } else {
            // Queued frames flush first, then the peer sees EOF.
            inner.flush_then_shutdown = true;
            if !inner.want_write {
                self.drain_write(&mut inner);
                if inner.want_write {
                    self.rearm(&inner);
                }
            }
        }
        self.rx_cv.notify_all();
        self.tx_cv.notify_all();
    }

    // ---- receive path -------------------------------------------------

    pub fn recv(&self, deadline: Option<Instant>) -> TdpResult<Message> {
        let deadline = match deadline {
            Some(d) => Some(d),
            None => self.tuning.read_timeout.map(|t| Instant::now() + t),
        };
        let mut inner = self.inner.lock();
        if self.io.supports_direct_read() && !inner.direct_reader {
            return self.recv_direct(inner, deadline);
        }
        loop {
            if let Some(msg) = self.pop_inbox(&mut inner) {
                return Ok(msg);
            }
            if let Some(e) = inner.rx_err.clone() {
                return Err(e);
            }
            match deadline {
                None => self.rx_cv.wait(&mut inner),
                Some(d) => {
                    if self.rx_cv.wait_until(&mut inner, d).timed_out() {
                        return Err(TdpError::Timeout);
                    }
                }
            }
        }
    }

    /// Blocking receive that owns the read side: instead of parking on
    /// the condvar and paying a reactor wakeup plus a cross-thread
    /// handoff per message, the consumer waits on the endpoint itself
    /// (`poll(2)` on the production socket) and drains under the flow
    /// lock. While `direct_reader` is set, readiness handlers skip the
    /// read half entirely and the interest mask excludes reads — the
    /// registration stays read-disarmed between camps, so a
    /// request/reply loop never wakes the reactor at all. Data arriving
    /// while nobody is receiving simply waits in the socket buffer
    /// (TCP's window still backpressures the peer) until the next
    /// `recv`/`try_recv` drains it.
    fn recv_direct<'a>(
        &'a self,
        mut inner: tdp_sync::MutexGuard<'a, FlowInner>,
        deadline: Option<Instant>,
    ) -> TdpResult<Message> {
        inner.direct_reader = true;
        let res = loop {
            if inner.read_open {
                self.drain_read(&mut inner);
            }
            if let Some(msg) = self.pop_inbox(&mut inner) {
                break Ok(msg);
            }
            if let Some(e) = inner.rx_err.clone() {
                break Err(e);
            }
            let timeout_ms = match deadline {
                None => -1,
                Some(d) => {
                    let now = Instant::now();
                    if d <= now {
                        break Err(TdpError::Timeout);
                    }
                    // Round up so the final wait cannot spin at 0 ms.
                    d.duration_since(now)
                        .as_millis()
                        .saturating_add(1)
                        .min(i32::MAX as u128) as i32
                }
            };
            drop(inner);
            let ready = self.io.wait_readable(timeout_ms);
            inner = self.inner.lock();
            match ready {
                // Ready (or spurious): loop drains and re-checks.
                Ok(true) => {}
                // Timeout: loop re-checks the deadline (and anything a
                // concurrent close delivered meanwhile).
                Ok(false) => {}
                Err(_) => {
                    // A failing poll cannot make progress; surface it
                    // as a dead connection rather than spinning.
                    inner.read_open = false;
                    inner.rx_err.get_or_insert(TdpError::Disconnected);
                }
            }
        };
        inner.direct_reader = false;
        res
    }

    pub fn try_recv(&self) -> TdpResult<Option<Message>> {
        let mut inner = self.inner.lock();
        // With the registration read-disarmed between direct-read
        // camps, arrived-but-unread bytes sit in the socket buffer; a
        // non-blocking probe drains them here.
        if inner.inbox.is_empty()
            && inner.read_open
            && !inner.direct_reader
            && self.io.supports_direct_read()
        {
            self.drain_read(&mut inner);
        }
        if let Some(msg) = self.pop_inbox(&mut inner) {
            return Ok(Some(msg));
        }
        match inner.rx_err.clone() {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }

    /// Hand a finished message's string capacity back for future
    /// decodes (the zero-alloc receive loop's other half).
    pub fn recycle(&self, msg: Message) {
        self.inner.lock().scratch.recycle_message(msg);
    }

    fn pop_inbox(&self, inner: &mut FlowInner) -> Option<Message> {
        let msg = inner.inbox.pop_front()?;
        if inner.paused && inner.read_open && inner.inbox.len() * 2 <= self.tuning.inbox_messages {
            inner.paused = false;
            self.rearm(inner);
        }
        Some(msg)
    }

    // ---- lifecycle ----------------------------------------------------

    /// First half of tearing the connection down: quiesce the state
    /// machine (stale readiness reports and senders become no-ops) and
    /// hand any unflushed outbox back to the caller, which flushes it
    /// synchronously *outside* the flow lock. Quiescing before the
    /// owner flips the socket to blocking mode is load-bearing: a pool
    /// worker holding a stale readiness event must find `read_open ==
    /// false` here rather than enter `drain_read` on a now-blocking
    /// socket and wedge its thread.
    pub fn begin_release(&self) -> Option<FlushPlan> {
        let mut inner = self.inner.lock();
        let flush = !inner.outbox.is_empty() && (!inner.closed || inner.flush_then_shutdown);
        inner.closed = true;
        inner.read_open = false;
        inner.paused = false;
        inner.want_write = false;
        inner.rx_err.get_or_insert(TdpError::Disconnected);
        let shutdown_write_after = inner.flush_then_shutdown;
        inner.flush_then_shutdown = false;
        let frames = std::mem::take(&mut inner.outbox);
        let head_off = std::mem::take(&mut inner.head_off);
        inner.outbox_bytes = 0;
        if !flush {
            return None;
        }
        Some(FlushPlan {
            frames,
            head_off,
            shutdown_write_after,
        })
    }

    /// Test-only: block *untimed* on the same condvar and predicate as
    /// `send`'s backpressure wait. The loom models use this to prove
    /// the notify side of the protocol without the stall timeout as an
    /// escape hatch — a drain that frees space but fails to notify
    /// leaves this parked forever, which the checker reports as a
    /// deadlock. Returns whether the connection was still open.
    #[cfg(all(loom, test))]
    pub fn await_outbox_space(&self, frame_len: usize) -> bool {
        let mut inner = self.inner.lock();
        while inner.outbox_bytes + frame_len > self.tuning.outbox_bytes
            && !inner.outbox.is_empty()
            && !inner.closed
        {
            self.tx_cv.wait(&mut inner);
        }
        !inner.closed
    }

    /// Test-only visibility into the state machine (loom assertions).
    #[cfg(test)]
    pub fn snapshot(&self) -> (usize, bool, bool, bool, usize) {
        let inner = self.inner.lock();
        (
            inner.inbox.len(),
            inner.paused,
            inner.want_write,
            inner.closed,
            inner.outbox_bytes,
        )
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::pool::BufferPool;
    use proptest::prelude::*;
    use std::sync::Mutex as StdMutex;
    use tdp_proto::{encode_frame, ContextId, Reply};
    use tdp_sync::Arc;

    /// A scripted endpoint for the writev-coalescing property: each
    /// `writev` call consumes one allowance from the script — `0` means
    /// `EWOULDBLOCK`, `n` accepts up to `n` bytes gathered across the
    /// iovec in order. Once the script runs dry the socket accepts
    /// everything, so every run terminates with a full flush.
    #[derive(Clone)]
    struct GatherIo {
        inner: Arc<StdMutex<GatherState>>,
    }

    struct GatherState {
        allowances: VecDeque<usize>,
        written: Vec<u8>,
        /// writev calls that gathered more than one frame (coalescing
        /// actually exercised, not just frame-at-a-time).
        gathers: usize,
    }

    impl GatherIo {
        fn new(allowances: Vec<usize>) -> GatherIo {
            GatherIo {
                inner: Arc::new(StdMutex::new(GatherState {
                    allowances: allowances.into_iter().collect(),
                    written: Vec::new(),
                    gathers: 0,
                })),
            }
        }

        fn written(&self) -> Vec<u8> {
            self.inner.lock().unwrap().written.clone()
        }

        fn gathers(&self) -> usize {
            self.inner.lock().unwrap().gathers
        }
    }

    impl FlowIo for GatherIo {
        fn read(&self, _buf: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::ErrorKind::WouldBlock.into())
        }

        fn write(&self, buf: &[u8]) -> std::io::Result<usize> {
            self.writev(&[buf])
        }

        fn writev(&self, bufs: &[&[u8]]) -> std::io::Result<usize> {
            let mut st = self.inner.lock().unwrap();
            let mut allowance = match st.allowances.pop_front() {
                Some(0) => return Err(std::io::ErrorKind::WouldBlock.into()),
                Some(n) => n,
                None => usize::MAX, // script exhausted: accept all
            };
            if bufs.iter().filter(|b| !b.is_empty()).count() > 1 {
                st.gathers += 1;
            }
            let mut accepted = 0;
            for b in bufs {
                if allowance == 0 {
                    break;
                }
                let n = b.len().min(allowance);
                st.written.extend_from_slice(&b[..n]);
                accepted += n;
                allowance -= n;
            }
            Ok(accepted)
        }

        fn shutdown_read(&self) {}
        fn shutdown_write(&self) {}
        fn shutdown_both(&self) {}
        fn rearm(&self, _interest: Interest) {}
    }

    fn arb_string() -> impl Strategy<Value = String> {
        proptest::string::string_regex(".{0,64}").unwrap()
    }

    fn arb_message() -> impl Strategy<Value = Message> {
        let ctx = any::<u64>().prop_map(ContextId);
        prop_oneof![
            (ctx.clone(), arb_string(), arb_string())
                .prop_map(|(ctx, key, value)| { Message::Put { ctx, key, value } }),
            (ctx.clone(), arb_string(), any::<bool>())
                .prop_map(|(ctx, key, blocking)| { Message::Get { ctx, key, blocking } }),
            ctx.prop_map(|ctx| Message::Join { ctx }),
            Just(Message::Reply(Reply::Ok)),
            (arb_string(), arb_string())
                .prop_map(|(key, value)| Message::Reply(Reply::Value { key, value })),
        ]
    }

    proptest! {
        /// ISSUE 9: frames pushed through the pooled outbox and drained
        /// by partial, gathering `writev` calls come out as the exact
        /// byte stream of their individual encodings — and that stream
        /// re-decodes to the original messages under arbitrary read
        /// chunk boundaries.
        #[test]
        fn writev_coalesced_frames_decode_byte_identically(
            msgs in proptest::collection::vec(arb_message(), 1..12),
            allowances in proptest::collection::vec(0usize..48, 0..32),
            cuts in proptest::collection::vec(1usize..17, 0..96),
        ) {
            let io = GatherIo::new(allowances.clone());
            let pool = BufferPool::new();
            let flow = Flow::new(
                io.clone(),
                ConnTuning {
                    inbox_messages: 64,
                    outbox_bytes: 1 << 20,
                    write_stall: Duration::from_secs(5),
                    read_timeout: None,
                },
                FrameDecoder::new(),
            );

            let mut expected = Vec::new();
            for m in &msgs {
                let frame = encode_frame(m);
                expected.extend_from_slice(&frame);
                flow.send(pool.pooled(&frame)).unwrap();
            }
            // Flush whatever the scripted EWOULDBLOCKs left queued; the
            // exhausted script accepts everything, so this terminates.
            for _ in 0..allowances.len() + 2 {
                let (_, _, _, _, outbox_bytes) = flow.snapshot();
                if outbox_bytes == 0 {
                    break;
                }
                flow.on_ready(false, true);
            }

            let written = io.written();
            prop_assert_eq!(&written, &expected, "byte stream diverged");
            let _ = io.gathers(); // coalescing path is schedule-dependent

            // Re-decode under unrelated chunk boundaries.
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            let mut off = 0;
            let mut cuts = cuts.into_iter();
            while off < written.len() {
                let n = cuts.next().unwrap_or(written.len()).min(written.len() - off);
                dec.feed(&written[off..off + n]);
                off += n;
                while let Some(msg) = dec.next().expect("stream is well-formed") {
                    got.push(msg);
                }
            }
            prop_assert_eq!(&got, &msgs);
            prop_assert_eq!(pool.live(), 0, "flushed frames must return to the pool");
        }
    }
}
