//! Transport-independent endpoint naming.

use std::fmt;
use std::net::SocketAddr;
use tdp_proto::Addr;

/// Where a connection goes (or came from), in whichever address family
/// the backing transport speaks.
///
/// The rest of TDP keeps thinking in logical [`Addr`]s (`host:port` on
/// the simulated fabric); only the transport layer and the resolver in
/// `tdp-core` touch real socket addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// An address on the simulated network.
    Sim(Addr),
    /// A real socket address (loopback TCP in this workspace).
    Tcp(SocketAddr),
}

impl Endpoint {
    /// The simulated address, if this endpoint is one.
    pub fn as_sim(&self) -> Option<Addr> {
        match self {
            Endpoint::Sim(a) => Some(*a),
            Endpoint::Tcp(_) => None,
        }
    }

    /// The socket address, if this endpoint is one.
    pub fn as_tcp(&self) -> Option<SocketAddr> {
        match self {
            Endpoint::Tcp(sa) => Some(*sa),
            Endpoint::Sim(_) => None,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Sim(a) => write!(f, "sim://{a}"),
            Endpoint::Tcp(sa) => write!(f, "tcp://{sa}"),
        }
    }
}

impl From<Addr> for Endpoint {
    fn from(a: Addr) -> Endpoint {
        Endpoint::Sim(a)
    }
}

impl From<SocketAddr> for Endpoint {
    fn from(sa: SocketAddr) -> Endpoint {
        Endpoint::Tcp(sa)
    }
}
