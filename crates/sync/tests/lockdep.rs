//! Seeded self-test for the lockdep detector: prove it catches a real
//! inversion before trusting it to clear the full suites.
//!
//! Only compiled with the feature on — the default build has nothing
//! to test (the facade is a pure re-export).
#![cfg(all(feature = "lockdep", not(loom)))]

use std::sync::mpsc;
use std::time::Duration;
use tdp_sync::{Arc, Mutex};

/// Thread 1 takes A then B; thread 2 takes B then A. Neither schedule
/// has to actually interleave into the deadlock — the second *order*
/// alone must panic with a cycle report naming both chains.
#[test]
fn seeded_ab_ba_inversion_panics_with_cycle_report() {
    let a = Arc::new(Mutex::new(0u32)); // class A (this line)
    let b = Arc::new(Mutex::new(0u32)); // class B (this line)

    // Establish A -> B on a throwaway thread.
    {
        let (a, b) = (a.clone(), b.clone());
        std::thread::Builder::new()
            .name("lockdep-ab".into())
            .spawn(move || {
                let ga = a.lock();
                let gb = b.lock();
                drop(gb);
                drop(ga);
            })
            .expect("spawn")
            .join()
            .expect("A->B order is legal");
    }

    // B -> A must be refused at the acquisition attempt, loudly.
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name("lockdep-ba".into())
        .spawn(move || {
            let gb = b.lock();
            let ga = a.lock(); // must panic here, *before* blocking
            drop(ga);
            drop(gb);
            tx.send(()).expect("report survival");
        })
        .expect("spawn");

    // The panic must arrive promptly — a detector that deadlocks
    // instead of reporting would hang the join forever.
    assert!(
        rx.recv_timeout(Duration::from_secs(10)).is_err(),
        "B->A inversion was silently allowed"
    );
    let err = handle.join().expect_err("inversion must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into());
    assert!(
        msg.contains("lock-order cycle"),
        "panic is not a lockdep report: {msg}"
    );
    // The report must carry both sides of the inversion: the new
    // acquisition's backtrace and the recorded chain's.
    assert!(
        msg.contains("new order:") && msg.contains("first recorded here:"),
        "report missing one side of the cycle: {msg}"
    );
    assert!(
        msg.contains("lockdep.rs"),
        "report does not name the lock sites: {msg}"
    );
}

/// Consistent ordering never fires, including across many threads and
/// repeated acquisitions — the detector must not false-positive on the
/// pattern the whole workspace uses.
#[test]
fn consistent_order_is_clean() {
    let outer = Arc::new(Mutex::new(0u32));
    let inner = Arc::new(Mutex::new(0u32));
    let mut handles = Vec::new();
    for i in 0..8 {
        let (outer, inner) = (outer.clone(), inner.clone());
        handles.push(
            std::thread::Builder::new()
                .name(format!("lockdep-ok-{i}"))
                .spawn(move || {
                    for _ in 0..100 {
                        let mut g1 = outer.lock();
                        let mut g2 = inner.lock();
                        *g2 += 1;
                        *g1 += 1;
                    }
                })
                .expect("spawn"),
        );
    }
    for h in handles {
        h.join().expect("consistent order must not panic");
    }
    assert_eq!(*outer.lock(), 800);
}

/// `try_lock` holders order later blocking acquisitions (they are in
/// the held set) but a `try` acquisition itself records no inbound
/// edge — it cannot block, so it cannot close a cycle.
#[test]
fn try_lock_does_not_close_cycles() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));

    // A -> B via blocking acquisitions.
    {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }
    // B then try(A): must NOT panic — if A is busy we just move on.
    let gb = b.lock();
    let ga = a.try_lock();
    assert!(ga.is_some());
    drop(ga);
    drop(gb);
}
