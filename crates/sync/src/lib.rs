//! Synchronization facade for the TDP workspace.
//!
//! All runtime code takes its `Mutex`/`Condvar`/`RwLock`/`Arc`/atomics
//! from this crate instead of naming `parking_lot` or `std::sync`
//! directly. In a normal build the types *are* the `parking_lot`/`std`
//! ones (pure re-exports, zero cost). Under `RUSTFLAGS="--cfg loom"`
//! they switch to `loom::sync`-backed adapters with the same
//! (parking_lot-shaped, poison-free) API, so the exact code that ships
//! can be driven through loom's exhaustive interleaving checker — see
//! `tdp-wire`'s `loom_` tests and DESIGN.md "Concurrency invariants".
//!
//! API surface intentionally matches `parking_lot`:
//! - `Mutex::lock()` returns the guard directly (no `Result`, no
//!   poisoning — a panicking holder aborts the test/run instead of
//!   poisoning peers).
//! - `Condvar::wait(&mut guard)` takes the guard by `&mut` and
//!   reacquires in place; `wait_for`/`wait_until` return a
//!   [`WaitTimeoutResult`]. Under loom the duration/deadline is a
//!   *nondeterministic event*: the checker explores both the notified
//!   and the timed-out path regardless of the numeric value.

// Third backend: `--features lockdep` swaps in order-checked wrappers
// around the parking_lot types (see `lockdep.rs`). Zero cost when off —
// this default branch stays a pure re-export.
#[cfg(all(not(loom), feature = "lockdep"))]
mod lockdep;
#[cfg(all(not(loom), feature = "lockdep"))]
use lockdep as imp;

#[cfg(all(not(loom), not(feature = "lockdep")))]
mod imp {
    pub use parking_lot::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
    };
    pub use std::sync::{Arc, Weak};

    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

#[cfg(loom)]
mod imp {
    //! parking_lot-shaped adapters over `loom::sync`.

    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::time::{Duration, Instant};

    pub use loom::sync::{atomic, Arc, Weak};

    fn ok<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
        r.unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub struct Mutex<T: ?Sized>(loom::sync::Mutex<T>);

    pub struct MutexGuard<'a, T: ?Sized> {
        // `Option` so `Condvar` can take the loom guard out while
        // blocking and put the reacquired one back.
        inner: Option<loom::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(loom::sync::Mutex::new(value))
        }

        pub fn into_inner(self) -> T {
            ok(self.0.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: Some(ok(self.0.lock())),
            }
        }

        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match self.0.try_lock() {
                Ok(g) => Some(MutexGuard { inner: Some(g) }),
                Err(_) => None,
            }
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Mutex")
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult {
        timed_out: bool,
    }

    impl WaitTimeoutResult {
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }

    #[derive(Default)]
    pub struct Condvar(loom::sync::Condvar);

    impl Condvar {
        pub fn new() -> Self {
            Condvar(loom::sync::Condvar::new())
        }

        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            let g = guard.inner.take().expect("guard taken");
            guard.inner = Some(ok(self.0.wait(g)));
        }

        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            _timeout: Duration,
        ) -> WaitTimeoutResult {
            let g = guard.inner.take().expect("guard taken");
            // The duration is irrelevant under the model: the checker
            // decides nondeterministically whether the timeout fires.
            let (g, res) = ok(self.0.wait_timeout(g, Duration::from_millis(1)));
            guard.inner = Some(g);
            WaitTimeoutResult {
                timed_out: res.timed_out(),
            }
        }

        pub fn wait_until<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            _deadline: Instant,
        ) -> WaitTimeoutResult {
            self.wait_for(guard, Duration::from_millis(1))
        }

        pub fn wait_while<'a, T>(
            &self,
            guard: &mut MutexGuard<'a, T>,
            mut condition: impl FnMut(&mut T) -> bool,
        ) {
            while condition(&mut **guard) {
                self.wait(guard);
            }
        }

        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Condvar")
        }
    }

    // Modelled as exclusive: loom's state space does not benefit from
    // reader parallelism, and exclusivity is the conservative choice.
    pub struct RwLock<T: ?Sized>(Mutex<T>);

    pub struct RwLockReadGuard<'a, T: ?Sized>(MutexGuard<'a, T>);
    pub struct RwLockWriteGuard<'a, T: ?Sized>(MutexGuard<'a, T>);

    impl<T> RwLock<T> {
        pub fn new(value: T) -> Self {
            RwLock(Mutex::new(value))
        }

        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }

    impl<T: ?Sized> RwLock<T> {
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            RwLockReadGuard(self.0.lock())
        }

        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            RwLockWriteGuard(self.0.lock())
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }
}

pub use imp::{
    atomic, Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult, Weak,
};

// One-shot/rendezvous primitives have no loom model and no lockdep
// story (they express no ordering a cycle could invert), so they are
// plain std re-exports and only exist in non-loom builds. Code that is
// loom-modelled must not use them.
#[cfg(not(loom))]
pub use std::sync::{Barrier, BarrierWaitResult, Once};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = 7;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while *g != 7 {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(1)).timed_out());
    }

    #[test]
    fn atomics_are_usable() {
        use atomic::{AtomicU64, Ordering};
        let a = AtomicU64::new(1);
        a.fetch_add(2, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 3);
    }
}
