//! Lock-order verification (`--features lockdep`): a lockdep-style
//! dynamic detector in the spirit of the Linux kernel's, scaled to this
//! workspace.
//!
//! Every [`Mutex`]/[`RwLock`] belongs to a *class* keyed by its
//! construction site (`#[track_caller]` on `new`), the same way kernel
//! lockdep keys by lock-initializer. Each thread keeps the ordered set
//! of classes it currently holds; a blocking acquisition records a
//! `held → wanted` edge per held class into one global order graph.
//! Before the edge goes in, a reachability check asks whether `wanted`
//! already reaches `held` — if it does, the new edge closes a cycle,
//! i.e. two call paths acquire the same two classes in opposite orders,
//! and we panic **at the acquisition attempt** with the backtrace of
//! every edge on the conflicting chain plus the current one. The bug is
//! reported the first time the *order* is exercised, long before the
//! 1-in-10⁶ schedule where both threads interleave into the actual
//! deadlock.
//!
//! Precision notes, deliberate and documented:
//! - `try_lock`/`try_read`/`try_write` add the class to the held set
//!   (later blocking acquisitions order against it) but record no
//!   inbound edge — a `try` that fails cannot block, so it can close no
//!   cycle.
//! - Same-class edges are skipped. Instances created at one site (or
//!   through `Default`, which collapses to the `default()` impl's
//!   location) are indistinguishable, and ordered same-class nesting
//!   (parent → child process tables) would false-positive.
//! - `Condvar::wait` leaves the mutex's class in the held set while
//!   blocked. The thread acquires nothing while parked, so no spurious
//!   edge can form, and the wakeup path's reacquisition re-records the
//!   same edges it recorded going in.
//!
//! Everything here is behind `cfg(all(not(loom), feature = "lockdep"))`
//! — the default build re-exports `parking_lot` unchanged and pays
//! nothing. The detector's own bookkeeping uses `std::sync::Mutex`
//! (the one crate allowed to by `tdp-lint`): bookkeeping never acquires
//! user locks, so it cannot participate in the orders it checks.

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

pub use parking_lot::WaitTimeoutResult;
pub use std::sync::{Arc, Weak};

pub mod atomic {
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

// ------------------------------------------------------------ registry

/// A lock class: one static construction site.
#[derive(Clone, Copy)]
struct Class {
    file: &'static str,
    line: u32,
    col: u32,
}

impl Class {
    fn of(loc: &'static Location<'static>) -> Class {
        Class {
            file: loc.file(),
            line: loc.line(),
            col: loc.column(),
        }
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.col)
    }
}

struct Edge {
    /// Where the `from → to` order was first exercised.
    backtrace: String,
}

#[derive(Default)]
struct Graph {
    /// Site → dense class id.
    ids: HashMap<(&'static str, u32, u32), u32>,
    classes: Vec<Class>,
    /// Adjacency + first-witness backtrace per edge.
    edges: HashMap<(u32, u32), Edge>,
    succ: HashMap<u32, Vec<u32>>,
}

impl Graph {
    fn class_id(&mut self, c: Class) -> u32 {
        *self.ids.entry((c.file, c.line, c.col)).or_insert_with(|| {
            self.classes.push(c);
            (self.classes.len() - 1) as u32
        })
    }

    /// Is `to` reachable from `from`? Returns the path if so.
    fn path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut stack = vec![vec![from]];
        let mut seen = vec![false; self.classes.len()];
        while let Some(p) = stack.pop() {
            let last = *p.last().expect("non-empty path");
            if last == to {
                return Some(p);
            }
            if std::mem::replace(&mut seen[last as usize], true) {
                continue;
            }
            for &n in self.succ.get(&last).into_iter().flatten() {
                let mut q = p.clone();
                q.push(n);
                stack.push(q);
            }
        }
        None
    }
}

fn graph() -> std::sync::MutexGuard<'static, Graph> {
    static GRAPH: std::sync::LazyLock<std::sync::Mutex<Graph>> =
        std::sync::LazyLock::new(Default::default);
    GRAPH
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    /// Class ids of locks this thread currently holds, acquisition order.
    static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Assign-once cache of a lock instance's class id (`u32::MAX` = unset).
struct ClassCell {
    site: Class,
    id: AtomicU32,
}

impl ClassCell {
    fn new(loc: &'static Location<'static>) -> ClassCell {
        ClassCell {
            site: Class::of(loc),
            id: AtomicU32::new(u32::MAX),
        }
    }

    fn id(&self) -> u32 {
        let cached = self.id.load(Ordering::Relaxed);
        if cached != u32::MAX {
            return cached;
        }
        let id = graph().class_id(self.site);
        self.id.store(id, Ordering::Relaxed);
        id
    }
}

/// Record `held → wanted` edges and panic on a closed cycle. Called
/// *before* the underlying blocking acquisition, so an inverted order
/// reports instead of deadlocking.
fn before_blocking_acquire(wanted: u32) {
    let held: Vec<u32> = match HELD.try_with(|h| h.borrow().clone()) {
        Ok(h) => h,
        Err(_) => return, // TLS torn down: thread exit path, untracked
    };
    for &h in &held {
        if h == wanted {
            continue; // same-class nesting: see module docs
        }
        let mut g = graph();
        if g.edges.contains_key(&(h, wanted)) {
            continue;
        }
        // Would `h → wanted` close a cycle, i.e. does `wanted` already
        // reach `h`?
        if let Some(path) = g.path(wanted, h) {
            let mut report = String::new();
            report.push_str("lockdep: lock-order cycle detected\n");
            report.push_str(&format!(
                "  new order: {} -> {}\n  acquired here:\n{}\n",
                g.classes[h as usize],
                g.classes[wanted as usize],
                indent(&Backtrace::force_capture().to_string()),
            ));
            report.push_str("  conflicts with previously recorded chain:\n");
            for w in path.windows(2) {
                let e = &g.edges[&(w[0], w[1])];
                report.push_str(&format!(
                    "    {} -> {}\n  first recorded here:\n{}\n",
                    g.classes[w[0] as usize],
                    g.classes[w[1] as usize],
                    indent(&e.backtrace),
                ));
            }
            drop(g);
            panic!("{report}");
        }
        let bt = Backtrace::force_capture().to_string();
        g.edges.insert((h, wanted), Edge { backtrace: bt });
        g.succ.entry(h).or_default().push(wanted);
    }
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("      {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn push_held(class: u32) {
    let _ = HELD.try_with(|h| h.borrow_mut().push(class));
}

fn pop_held(class: u32) {
    let _ = HELD.try_with(|h| {
        let mut h = h.borrow_mut();
        if let Some(i) = h.iter().rposition(|&c| c == class) {
            h.remove(i);
        }
    });
}

// ------------------------------------------------------------- wrappers

pub struct Mutex<T: ?Sized> {
    class: ClassCell,
    inner: parking_lot::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    class: u32,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    #[track_caller]
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            class: ClassCell::new(Location::caller()),
            inner: parking_lot::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let class = self.class.id();
        before_blocking_acquire(class);
        let inner = self.inner.lock();
        push_held(class);
        MutexGuard { class, inner }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let class = self.class.id();
        let inner = self.inner.try_lock()?;
        push_held(class);
        Some(MutexGuard { class, inner })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        pop_held(self.class);
    }
}

pub struct RwLock<T: ?Sized> {
    class: ClassCell,
    inner: parking_lot::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    class: u32,
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    class: u32,
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    #[track_caller]
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            class: ClassCell::new(Location::caller()),
            inner: parking_lot::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let class = self.class.id();
        before_blocking_acquire(class);
        let inner = self.inner.read();
        push_held(class);
        RwLockReadGuard { class, inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let class = self.class.id();
        before_blocking_acquire(class);
        let inner = self.inner.write();
        push_held(class);
        RwLockWriteGuard { class, inner }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        pop_held(self.class);
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        pop_held(self.class);
    }
}

pub struct Condvar {
    inner: parking_lot::Condvar,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            inner: parking_lot::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.inner.wait(&mut guard.inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.inner.wait_for(&mut guard.inner, timeout)
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        self.inner.wait_until(&mut guard.inner, deadline)
    }

    pub fn wait_while<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut *guard.inner) {
            self.inner.wait(&mut guard.inner);
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}
