//! [`TdpHandle`] — the per-daemon TDP library instance.

use crate::world::World;
use std::collections::HashMap;
use std::time::Duration;
use tdp_attrspace::AttrClient;
use tdp_netsim::Conn;
use tdp_proto::{
    names, Addr, ContextId, HostId, Pid, ProcRequest, ProcStatus, TdpError, TdpResult,
};
use tdp_simos::kernel::ProcSpec;
use tdp_simos::{ProbeSnapshot, Sink, StartMode, TraceHandle};

/// Token identifying a registered asynchronous callback, returned by
/// [`TdpHandle::async_get`] / [`TdpHandle::watch`].
pub type Token = u64;

/// Which side of the protocol this daemon is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The resource manager (or one of its daemons, e.g. the starter):
    /// starts the LASS, owns process control.
    ResourceManager,
    /// A run-time tool daemon: connects to the RM-provided LASS.
    Tool,
}

/// Specification for `tdp_create_process` — the paper's create call with
/// its `run` / `paused` option.
#[derive(Clone)]
pub struct TdpCreate {
    pub executable: String,
    pub args: Vec<String>,
    pub env: Vec<(String, String)>,
    /// `true` = stop the process right after exec, before any program
    /// code runs (§3.1); the RM continues it once the tool is ready.
    pub paused: bool,
    pub stdin: Vec<u8>,
    pub stdout: Sink,
    pub stderr: Sink,
    /// Host to create on; defaults to the creating daemon's host.
    pub host: Option<HostId>,
}

impl TdpCreate {
    pub fn new(executable: impl Into<String>) -> TdpCreate {
        TdpCreate {
            executable: executable.into(),
            args: Vec::new(),
            env: Vec::new(),
            paused: false,
            stdin: Vec::new(),
            stdout: Sink::Capture,
            stderr: Sink::Capture,
            host: None,
        }
    }

    pub fn args<S: Into<String>>(mut self, args: impl IntoIterator<Item = S>) -> Self {
        self.args = args.into_iter().map(Into::into).collect();
        self
    }

    pub fn env_var(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.env.push((k.into(), v.into()));
        self
    }

    pub fn paused(mut self) -> Self {
        self.paused = true;
        self
    }

    pub fn stdout(mut self, sink: Sink) -> Self {
        self.stdout = sink;
        self
    }

    pub fn stderr(mut self, sink: Sink) -> Self {
        self.stderr = sink;
        self
    }

    pub fn stdin_bytes(mut self, data: impl Into<Vec<u8>>) -> Self {
        self.stdin = data.into();
        self
    }

    pub fn on_host(mut self, host: HostId) -> Self {
        self.host = Some(host);
        self
    }
}

/// Boxed user callback for asynchronous operations.
type AttrCallback = Box<dyn FnMut(&str, &str) + Send>;

struct CallbackEntry {
    f: AttrCallback,
    persistent: bool,
    key: String,
}

/// Completion queued by `async_put` so its callback runs at the next
/// `service_events` (a safe point), never inline (§3.3).
struct PendingCompletion {
    token: Token,
    key: String,
    value: String,
}

/// The TDP library handle — what `tdp_init` returns.
///
/// One handle per daemon (RM-side starter, or RT daemon). All methods
/// take `&mut self`: the handle is single-threaded by design, matching
/// the paper's poll-loop daemon model.
pub struct TdpHandle {
    world: World,
    host: HostId,
    ctx: ContextId,
    actor: String,
    role: Role,
    lass: AttrClient,
    cass: Option<AttrClient>,
    callbacks: HashMap<Token, CallbackEntry>,
    completions: Vec<PendingCompletion>,
    next_token: u64,
    traces: HashMap<Pid, TraceHandle>,
    closed: bool,
}

impl TdpHandle {
    /// `tdp_init`: establish the TDP framework on this daemon.
    ///
    /// An RM-side daemon starts the host's LASS if it is not already
    /// running ("the LASS's are started by the RM", §2.1); a tool
    /// connects to the existing one. Both join `ctx` — the per-(RM,RT)
    /// space of §3.2.
    pub fn init(
        world: &World,
        host: HostId,
        ctx: ContextId,
        actor: &str,
        role: Role,
    ) -> TdpResult<TdpHandle> {
        let lass_addr = match role {
            Role::ResourceManager => world.ensure_lass(host)?,
            Role::Tool => world.lass_addr(host).ok_or_else(|| {
                TdpError::Substrate(format!(
                    "no LASS on {host}: the resource manager must tdp_init first"
                ))
            })?,
        };
        let mut lass = world.attr_connect(host, lass_addr)?;
        lass.join(ctx)?;
        world.trace().record(actor, format!("tdp_init({ctx})"));
        Ok(TdpHandle {
            world: world.clone(),
            host,
            ctx,
            actor: actor.to_string(),
            role,
            lass,
            cass: None,
            callbacks: HashMap::new(),
            completions: Vec::new(),
            next_token: 1,
            traces: HashMap::new(),
            closed: false,
        })
    }

    /// The world this handle lives in.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Host this daemon runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Context joined at init.
    pub fn context(&self) -> ContextId {
        self.ctx
    }

    /// Daemon name used in the call trace.
    pub fn actor(&self) -> &str {
        &self.actor
    }

    /// Role declared at init.
    pub fn role(&self) -> Role {
        self.role
    }

    fn check_open(&self) -> TdpResult<()> {
        if self.closed {
            Err(TdpError::HandleClosed)
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Attribute space (§3.2)
    // ------------------------------------------------------------------

    /// Blocking `tdp_put`.
    pub fn put(&mut self, key: &str, value: &str) -> TdpResult<()> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_put({key})"));
        self.lass.put(self.ctx, key, value)
    }

    /// Blocking `tdp_get`: parks this daemon until the attribute exists.
    pub fn get(&mut self, key: &str) -> TdpResult<String> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_get({key})"));
        self.lass.get(self.ctx, key)
    }

    /// Blocking get with a deadline.
    pub fn get_timeout(&mut self, key: &str, timeout: Duration) -> TdpResult<String> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_get({key})"));
        self.lass.get_timeout(self.ctx, key, timeout)
    }

    /// Non-blocking get: error if absent (§3.2's error case).
    pub fn try_get(&mut self, key: &str) -> TdpResult<String> {
        self.check_open()?;
        self.lass.try_get(self.ctx, key)
    }

    /// Remove an attribute.
    pub fn remove(&mut self, key: &str) -> TdpResult<()> {
        self.check_open()?;
        self.lass.remove(self.ctx, key)
    }

    /// Keys with a prefix (extension used by the MPI universe).
    pub fn list_keys(&mut self, prefix: &str) -> TdpResult<Vec<String>> {
        self.check_open()?;
        self.lass.list_keys(self.ctx, prefix)
    }

    /// `tdp_async_get`: returns immediately; `callback(key, value)` runs
    /// from a later [`TdpHandle::service_events`] once the attribute is
    /// (or becomes) available.
    pub fn async_get(
        &mut self,
        key: &str,
        callback: impl FnMut(&str, &str) + Send + 'static,
    ) -> TdpResult<Token> {
        self.check_open()?;
        let token = self.next_token;
        self.next_token += 1;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_async_get({key})"));
        self.lass.subscribe(self.ctx, key, token, false)?;
        self.callbacks.insert(
            token,
            CallbackEntry {
                f: Box::new(callback),
                persistent: false,
                key: key.to_string(),
            },
        );
        Ok(token)
    }

    /// `tdp_async_put`: performs the put and defers the completion
    /// callback to the next `service_events` — callbacks only ever run
    /// at the daemon's safe point (§3.3).
    pub fn async_put(
        &mut self,
        key: &str,
        value: &str,
        callback: impl FnMut(&str, &str) + Send + 'static,
    ) -> TdpResult<Token> {
        self.check_open()?;
        let token = self.next_token;
        self.next_token += 1;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_async_put({key})"));
        self.lass.put(self.ctx, key, value)?;
        self.callbacks.insert(
            token,
            CallbackEntry {
                f: Box::new(callback),
                persistent: false,
                key: key.to_string(),
            },
        );
        self.completions.push(PendingCompletion {
            token,
            key: key.to_string(),
            value: value.to_string(),
        });
        Ok(token)
    }

    /// Persistent subscription: `callback` runs on *every* put of `key`
    /// (auto re-subscribes). TDP extension used for status monitoring.
    pub fn watch(
        &mut self,
        key: &str,
        callback: impl FnMut(&str, &str) + Send + 'static,
    ) -> TdpResult<Token> {
        self.check_open()?;
        let token = self.next_token;
        self.next_token += 1;
        self.lass.subscribe(self.ctx, key, token, false)?;
        self.callbacks.insert(
            token,
            CallbackEntry {
                f: Box::new(callback),
                persistent: true,
                key: key.to_string(),
            },
        );
        Ok(token)
    }

    /// Cancel an async registration.
    pub fn cancel(&mut self, token: Token) -> TdpResult<()> {
        self.check_open()?;
        if self.callbacks.remove(&token).is_some() {
            self.lass.unsubscribe(self.ctx, token)?;
        }
        self.completions.retain(|c| c.token != token);
        Ok(())
    }

    /// `tdp_service_event`: run every pending callback at this safe
    /// point. Returns how many callbacks ran.
    pub fn service_events(&mut self) -> TdpResult<usize> {
        self.check_open()?;
        let mut ran = 0;
        // async_put completions first (they were requested earliest).
        for c in std::mem::take(&mut self.completions) {
            if let Some(mut entry) = self.callbacks.remove(&c.token) {
                (entry.f)(&c.key, &c.value);
                ran += 1;
            }
        }
        // Then notifications from the space.
        while let Some(n) = self.lass.poll_notify() {
            if let Some(mut entry) = self.callbacks.remove(&n.token) {
                (entry.f)(&n.key, &n.value);
                ran += 1;
                if entry.persistent {
                    // Re-arm for the *next* put only; re-seeing the value
                    // just delivered would loop forever.
                    self.lass.subscribe(self.ctx, &entry.key, n.token, true)?;
                    self.callbacks.insert(n.token, entry);
                }
            }
        }
        if ran > 0 {
            self.world
                .trace()
                .record(&self.actor, format!("tdp_service_event[{ran}]"));
        }
        Ok(ran)
    }

    /// Is there activity pending? (The "descriptor is active" check in
    /// the daemon's poll loop, §3.3.)
    pub fn has_events(&mut self) -> bool {
        !self.completions.is_empty() || self.lass.has_notify()
    }

    /// Block until at least one event is deliverable or the timeout
    /// expires, then service everything pending.
    pub fn wait_and_service(&mut self, timeout: Duration) -> TdpResult<usize> {
        self.check_open()?;
        if self.completions.is_empty() && !self.lass.has_notify() {
            match self.lass.wait_notify(timeout) {
                Ok(n) => {
                    // Re-queue so service_events dispatches uniformly.
                    if let Some(mut entry) = self.callbacks.remove(&n.token) {
                        (entry.f)(&n.key, &n.value);
                        if entry.persistent {
                            self.lass.subscribe(self.ctx, &entry.key, n.token, true)?;
                            self.callbacks.insert(n.token, entry);
                        }
                        return Ok(1 + self.service_events()?);
                    }
                }
                Err(TdpError::Timeout) => return Ok(0),
                Err(e) => return Err(e),
            }
        }
        self.service_events()
    }

    /// `tdp_exit`: leave the context (destroying it if this daemon was
    /// the last member), detach from any traced processes, close the
    /// handle. Also runs on drop.
    pub fn exit(&mut self) -> TdpResult<()> {
        if self.closed {
            return Ok(());
        }
        self.world.trace().record(&self.actor, "tdp_exit()");
        self.traces.clear(); // detach (resumes stopped tracees)
        if let Some(cass) = self.cass.as_mut() {
            let _ = cass.leave(self.ctx);
            let _ = cass.leave(ContextId::DEFAULT);
        }
        let r = self.lass.leave(self.ctx);
        self.closed = true;
        r
    }

    // ------------------------------------------------------------------
    // Central attribute space (CASS)
    // ------------------------------------------------------------------

    /// Connect this daemon to the CASS (global attribute space on the
    /// front-end host). Direct connection is attempted first; when a
    /// firewall blocks it, the RM's advertised proxy is used.
    pub fn connect_cass(&mut self, cass: Addr) -> TdpResult<()> {
        self.check_open()?;
        let mut client = match self.world.attr_connect(self.host, cass) {
            Ok(c) => c,
            Err(TdpError::BlockedByFirewall { .. }) => {
                let proxy = Addr::parse(&self.get(names::PROXY_ADDR)?)
                    .ok_or_else(|| TdpError::Protocol("bad proxy_addr".into()))?;
                self.world.attr_connect_via_proxy(self.host, proxy, cass)?
            }
            Err(e) => return Err(e),
        };
        client.join(self.ctx)?;
        // Also join the framework-global context: cross-job data such
        // as tool front-end addresses lives there.
        client.join(ContextId::DEFAULT)?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_connect_cass({cass})"));
        self.cass = Some(client);
        Ok(())
    }

    fn cass_client(&mut self) -> TdpResult<&mut AttrClient> {
        self.cass.as_mut().ok_or_else(|| {
            TdpError::Substrate("not connected to the CASS (call connect_cass)".into())
        })
    }

    /// Put into the *central* space (visible to daemons on all hosts).
    pub fn put_central(&mut self, key: &str, value: &str) -> TdpResult<()> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_put_central({key})"));
        let ctx = self.ctx;
        self.cass_client()?.put(ctx, key, value)
    }

    /// Blocking get from the central space.
    pub fn get_central(&mut self, key: &str) -> TdpResult<String> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_get_central({key})"));
        let ctx = self.ctx;
        self.cass_client()?.get(ctx, key)
    }

    /// Non-blocking get from the central space.
    pub fn try_get_central(&mut self, key: &str) -> TdpResult<String> {
        self.check_open()?;
        let ctx = self.ctx;
        self.cass_client()?.try_get(ctx, key)
    }

    /// Put into the central space's *framework-global* context
    /// (`ContextId::DEFAULT`) — for data shared across jobs, like a
    /// tool front-end's listener addresses.
    pub fn put_global(&mut self, key: &str, value: &str) -> TdpResult<()> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_put_global({key})"));
        self.cass_client()?.put(ContextId::DEFAULT, key, value)
    }

    /// Blocking get from the framework-global context of the CASS.
    pub fn get_global(&mut self, key: &str) -> TdpResult<String> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_get_global({key})"));
        self.cass_client()?.get(ContextId::DEFAULT, key)
    }

    // ------------------------------------------------------------------
    // Process management (§3.1)
    // ------------------------------------------------------------------

    /// `tdp_create_process`: create a process, optionally paused at exec.
    pub fn create_process(&mut self, spec: TdpCreate) -> TdpResult<Pid> {
        self.check_open()?;
        let host = spec.host.unwrap_or(self.host);
        let mode = if spec.paused { "paused" } else { "run" };
        self.world.trace().record(
            &self.actor,
            format!("tdp_create_process({}, {mode})", spec.executable),
        );
        let mut ps = ProcSpec::new(host, spec.executable)
            .args(spec.args)
            .stdin_bytes(spec.stdin)
            .stdout(spec.stdout)
            .stderr(spec.stderr);
        for (k, v) in spec.env {
            ps = ps.env_var(k, v);
        }
        ps.start = if spec.paused {
            StartMode::Paused
        } else {
            StartMode::Run
        };
        self.world.os().spawn(ps)
    }

    /// `tdp_attach`: attach to a process for monitoring/instrumentation.
    pub fn attach(&mut self, pid: Pid) -> TdpResult<()> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_attach({pid})"));
        let h = self.world.os().attach(pid)?;
        self.traces.insert(pid, h);
        Ok(())
    }

    /// Detach from a previously attached process.
    pub fn detach(&mut self, pid: Pid) -> TdpResult<()> {
        self.check_open()?;
        self.traces.remove(&pid).ok_or(TdpError::NotTracer(pid))?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_detach({pid})"));
        Ok(())
    }

    /// `tdp_continue_process`: start a paused-at-exec process or resume
    /// a stopped one.
    pub fn continue_process(&mut self, pid: Pid) -> TdpResult<()> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_continue_process({pid})"));
        match self.traces.get(&pid) {
            Some(h) => h.cont(),
            None => self.world.os().continue_process(pid),
        }
    }

    /// Pause a running process.
    pub fn pause_process(&mut self, pid: Pid) -> TdpResult<()> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_pause_process({pid})"));
        match self.traces.get(&pid) {
            Some(h) => h.stop(),
            None => self.world.os().stop_process(pid),
        }
    }

    /// Kill a process.
    pub fn kill_process(&mut self, pid: Pid, sig: i32) -> TdpResult<()> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_kill({pid}, {sig})"));
        self.world.os().kill(pid, sig)
    }

    /// Current status.
    pub fn process_status(&self, pid: Pid) -> TdpResult<ProcStatus> {
        self.world.os().status(pid)
    }

    /// Block until the process terminates.
    pub fn wait_terminal(&self, pid: Pid, timeout: Duration) -> TdpResult<ProcStatus> {
        self.world.os().wait_terminal(pid, timeout)
    }

    // ------------------------------------------------------------------
    // Instrumentation passthrough (tool side; requires tdp_attach)
    // ------------------------------------------------------------------

    fn trace_of(&self, pid: Pid) -> TdpResult<&TraceHandle> {
        self.traces.get(&pid).ok_or(TdpError::NotTracer(pid))
    }

    /// Symbol table of an attached process's executable.
    pub fn symbols(&self, pid: Pid) -> TdpResult<Vec<String>> {
        Ok(self.trace_of(pid)?.symbols())
    }

    /// Insert instrumentation at a symbol.
    pub fn arm_probe(&self, pid: Pid, sym: &str) -> TdpResult<()> {
        self.trace_of(pid)?.arm_probe(sym)
    }

    /// Remove instrumentation from a symbol.
    pub fn disarm_probe(&self, pid: Pid, sym: &str) -> TdpResult<()> {
        self.trace_of(pid)?.disarm_probe(sym)
    }

    /// Read accumulated probe data.
    pub fn read_probes(&self, pid: Pid) -> TdpResult<ProbeSnapshot> {
        self.trace_of(pid)?.read_probes()
    }

    /// Arm a breakpoint on a symbol of an attached process: entering it
    /// stops the process before the body runs (debugger capability).
    pub fn arm_breakpoint(&self, pid: Pid, sym: &str) -> TdpResult<()> {
        self.trace_of(pid)?.arm_breakpoint(sym)
    }

    /// Remove a breakpoint.
    pub fn disarm_breakpoint(&self, pid: Pid, sym: &str) -> TdpResult<()> {
        self.trace_of(pid)?.disarm_breakpoint(sym)
    }

    /// Subscribe to breakpoint hits (one symbol name per stop).
    pub fn breakpoint_events(&self, pid: Pid) -> TdpResult<crossbeam::channel::Receiver<String>> {
        self.trace_of(pid)?.breakpoint_events()
    }

    /// The most recently hit breakpoint.
    pub fn last_breakpoint(&self, pid: Pid) -> TdpResult<Option<String>> {
        self.trace_of(pid)?.last_breakpoint()
    }

    /// Enable or disable live call-stack tracking on an attached
    /// process.
    pub fn set_stack_tracking(&self, pid: Pid, on: bool) -> TdpResult<()> {
        self.trace_of(pid)?.set_stack_tracking(on)
    }

    /// Snapshot the named-call stack (meaningful while stopped).
    pub fn read_stack(&self, pid: Pid) -> TdpResult<Vec<String>> {
        self.trace_of(pid)?.read_stack()
    }

    // ------------------------------------------------------------------
    // Single-point process control (§2.3)
    // ------------------------------------------------------------------

    /// RT side: ask the RM to perform a process-management operation by
    /// writing the `proc_request` attribute. "When the RT needs to
    /// perform a process management operation, it contacts the RM."
    pub fn request_proc_op(&mut self, op: ProcRequest) -> TdpResult<()> {
        self.check_open()?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_request({})", op.to_attr_value()));
        self.lass
            .put(self.ctx, names::PROC_REQUEST, &op.to_attr_value())
    }

    /// RM side: take (and clear) a pending RT request, if any.
    pub fn take_proc_request(&mut self) -> TdpResult<Option<ProcRequest>> {
        self.check_open()?;
        match self.lass.try_get(self.ctx, names::PROC_REQUEST) {
            Ok(v) => {
                self.lass.remove(self.ctx, names::PROC_REQUEST)?;
                Ok(ProcRequest::parse(&v))
            }
            Err(TdpError::AttributeNotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// RM side: service one pending RT request against `pid`, publishing
    /// the resulting status. Returns the request serviced, if any.
    pub fn service_proc_requests(&mut self, pid: Pid) -> TdpResult<Option<ProcRequest>> {
        let Some(op) = self.take_proc_request()? else {
            return Ok(None);
        };
        match op {
            ProcRequest::Continue => self.continue_process(pid)?,
            ProcRequest::Pause => self.pause_process(pid)?,
            ProcRequest::Kill(sig) => self.kill_process(pid, sig)?,
        }
        let status = self.process_status(pid)?;
        self.publish_status(status)?;
        Ok(Some(op))
    }

    /// RM side: publish the application's status to the space (§2.3's
    /// "places a value in the Attribute Space").
    pub fn publish_status(&mut self, status: ProcStatus) -> TdpResult<()> {
        self.check_open()?;
        self.lass
            .put(self.ctx, names::AP_STATUS, &status.to_attr_value())
    }

    /// Last published application status, if any.
    pub fn published_status(&mut self) -> TdpResult<Option<ProcStatus>> {
        match self.try_get(names::AP_STATUS) {
            Ok(v) => Ok(ProcStatus::parse(&v)),
            Err(TdpError::AttributeNotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    // ------------------------------------------------------------------
    // Heartbeats (fault-detection extension)
    // ------------------------------------------------------------------

    /// Bump this daemon's heartbeat counter in the space. Returns the
    /// new value. A peer that sees the counter stop advancing declares
    /// the daemon dead (see [`TdpHandle::last_heartbeat`]).
    pub fn heartbeat(&mut self) -> TdpResult<u64> {
        self.check_open()?;
        let next = match self.lass.try_get(self.ctx, names::HEARTBEAT) {
            Ok(v) => v.parse::<u64>().unwrap_or(0) + 1,
            Err(TdpError::AttributeNotFound(_)) => 1,
            Err(e) => return Err(e),
        };
        self.lass
            .put(self.ctx, names::HEARTBEAT, &next.to_string())?;
        Ok(next)
    }

    /// Read the peer's heartbeat counter (None if it never beat).
    pub fn last_heartbeat(&mut self) -> TdpResult<Option<u64>> {
        self.check_open()?;
        match self.lass.try_get(self.ctx, names::HEARTBEAT) {
            Ok(v) => Ok(v.parse().ok()),
            Err(TdpError::AttributeNotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    // ------------------------------------------------------------------
    // Tool communication (§2.4)
    // ------------------------------------------------------------------

    /// Front-end side (via RM): publish where the tool front-end
    /// listens.
    pub fn advertise_frontend(&mut self, addr: Addr) -> TdpResult<()> {
        self.put(names::TOOL_FRONTEND_ADDR, &addr.to_attr_value())
    }

    /// RM side: publish the proxy usable to cross the firewall.
    pub fn advertise_proxy(&mut self, addr: Addr) -> TdpResult<()> {
        self.put(names::PROXY_ADDR, &addr.to_attr_value())
    }

    /// Tool-daemon side: connect to the tool front-end. Reads the
    /// advertised address, attempts a direct connection, and on firewall
    /// rejection transparently retries through the RM's advertised
    /// proxy — "TDP will provide a host/port number pair to the RT to
    /// contact its front-end … if the private networks block such
    /// connections, then the host/port number will be that of the RM's
    /// proxy" (§2.4).
    pub fn open_tool_channel(&mut self) -> TdpResult<Conn> {
        self.check_open()?;
        let fe = Addr::parse(&self.get(names::TOOL_FRONTEND_ADDR)?)
            .ok_or_else(|| TdpError::Protocol("bad tool_frontend_addr".into()))?;
        self.world
            .trace()
            .record(&self.actor, format!("tdp_open_channel({fe})"));
        match self.world.net().connect(self.host, fe) {
            Ok(c) => Ok(c),
            Err(TdpError::BlockedByFirewall { .. }) => {
                let proxy = Addr::parse(&self.get(names::PROXY_ADDR)?)
                    .ok_or_else(|| TdpError::Protocol("bad proxy_addr".into()))?;
                tdp_netsim::proxy::connect_via(self.world.net(), self.host, proxy, fe)
            }
            Err(e) => Err(e),
        }
    }

    // ------------------------------------------------------------------
    // File staging (§2)
    // ------------------------------------------------------------------

    /// Copy a file between hosts (tool configuration out to execution
    /// nodes; trace/summary files back after completion).
    pub fn stage_file(&mut self, from: HostId, src: &str, to: HostId, dst: &str) -> TdpResult<()> {
        self.check_open()?;
        self.world.trace().record(
            &self.actor,
            format!("tdp_stage({from}:{src} -> {to}:{dst})"),
        );
        self.world.os().fs().stage(from, src, to, dst)
    }
}

impl Drop for TdpHandle {
    fn drop(&mut self) {
        let _ = self.exit();
    }
}
