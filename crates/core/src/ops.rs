//! Operations hooks: what a component must expose to be watched by the
//! `tdp-ops` supervisor daemon.
//!
//! The supervisor lives above every scheduler crate, so the contract
//! sits here in `tdp-core`: a [`Supervisable`] component has a stable
//! name (used in the `tdp.ops.live.<name>` / `tdp.ops.health.<name>`
//! attribute conventions) and a cheap liveness probe. Restart is *not*
//! part of the trait — how to respawn a dead component is knowledge the
//! owner has (a closure handed to the supervisor at registration), not
//! the component itself.
//!
//! This module also provides the world-level components the paper's
//! topology always has: one [`LassComponent`] per execution host and
//! one [`CassComponent`] on the front-end, probed *through the
//! attribute space itself* and respawned via the world's
//! `ensure_lass`/`ensure_cass` hooks.

use crate::World;
use tdp_proto::{names, Addr, HostId, TdpResult, OPS_CONTEXT};

/// A component the ops supervisor can watch.
pub trait Supervisable: Send + Sync {
    /// Stable component name; becomes part of attribute names, so keep
    /// it short and dot-free at the end (`lass.3`, `condor.startd.2`).
    fn ops_name(&self) -> String;

    /// Cheap liveness probe: `Ok` iff the component currently serves
    /// its protocol. Called from the supervisor's heartbeat thread at
    /// every tick, so it must be bounded (connect + one round trip, not
    /// a full job).
    fn ops_probe(&self) -> TdpResult<()>;
}

/// The LASS of one host, as a supervisable component. The probe is an
/// attribute-space write: connect to the LASS and put a beat attribute
/// into the ops context — liveness proven by the very protocol the
/// server exists to speak.
pub struct LassComponent {
    world: World,
    host: HostId,
}

impl LassComponent {
    pub fn new(world: &World, host: HostId) -> LassComponent {
        LassComponent {
            world: world.clone(),
            host,
        }
    }

    pub fn host(&self) -> HostId {
        self.host
    }

    /// Respawn hook: restart the LASS on its well-known port (no-op if
    /// it is already up). Fails while the host itself is down.
    pub fn respawn(&self) -> TdpResult<Addr> {
        self.world.ensure_lass(self.host)
    }
}

impl Supervisable for LassComponent {
    fn ops_name(&self) -> String {
        format!("lass.{}", self.host.0)
    }

    fn ops_probe(&self) -> TdpResult<()> {
        let addr = Addr::new(self.host, crate::LASS_PORT);
        let mut c = self.world.attr_connect(self.host, addr)?;
        c.join(OPS_CONTEXT)?;
        c.put(OPS_CONTEXT, &names::ops_live(&self.ops_name()), "probe")?;
        Ok(())
    }
}

/// The CASS, as a supervisable component (same probe shape as
/// [`LassComponent`], from the front-end host).
pub struct CassComponent {
    world: World,
    host: HostId,
}

impl CassComponent {
    pub fn new(world: &World, host: HostId) -> CassComponent {
        CassComponent {
            world: world.clone(),
            host,
        }
    }

    pub fn respawn(&self) -> TdpResult<Addr> {
        self.world.ensure_cass(self.host)
    }
}

impl Supervisable for CassComponent {
    fn ops_name(&self) -> String {
        "cass".to_string()
    }

    fn ops_probe(&self) -> TdpResult<()> {
        let addr = Addr::new(self.host, crate::CASS_PORT);
        let mut c = self.world.attr_connect(self.host, addr)?;
        c.join(OPS_CONTEXT)?;
        c.put(OPS_CONTEXT, &names::ops_live(&self.ops_name()), "probe")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lass_component_probe_and_respawn() {
        let w = World::new();
        let h = w.add_host();
        w.ensure_lass(h).unwrap();
        let c = LassComponent::new(&w, h);
        assert_eq!(c.ops_name(), format!("lass.{}", h.0));
        c.ops_probe().unwrap();
        w.kill_lass(h);
        assert!(c.ops_probe().is_err(), "dead LASS must fail the probe");
        c.respawn().unwrap();
        c.ops_probe().unwrap();
    }

    #[test]
    fn cass_component_probe_and_respawn() {
        let w = World::new();
        let fe = w.add_host();
        w.ensure_cass(fe).unwrap();
        let c = CassComponent::new(&w, fe);
        c.ops_probe().unwrap();
        w.kill_cass();
        assert!(c.ops_probe().is_err());
        c.respawn().unwrap();
        c.ops_probe().unwrap();
    }
}
