//! The [`World`]: simulated kernel + network + shared TDP state.
//!
//! A `World` is what a test, example or benchmark sets up once: it owns
//! the `tdp-simos` kernel, the `tdp-netsim` fabric, the per-host LASS
//! servers ("the LASS's are started by the RM", §2.1 — concretely,
//! [`World::ensure_lass`] is invoked from the RM's `tdp_init`), an
//! optional CASS, and the global call [`Trace`].

use crate::trace::Trace;
use crate::{CASS_PORT, LASS_PORT};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use tdp_attrspace::{AttrSpaceServer, ServerKind};
use tdp_netsim::{FirewallPolicy, Network, ZoneId};
use tdp_proto::{Addr, HostId, TdpResult};
use tdp_simos::{Os, OsConfig};

struct WorldInner {
    os: Os,
    net: Network,
    trace: Trace,
    lass: Mutex<HashMap<HostId, AttrSpaceServer>>,
    cass: Mutex<Option<AttrSpaceServer>>,
}

/// Shared simulation world. Cheap to clone.
#[derive(Clone)]
pub struct World {
    inner: Arc<WorldInner>,
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}

impl World {
    pub fn new() -> World {
        World::with_config(OsConfig::default())
    }

    pub fn with_config(cfg: OsConfig) -> World {
        World {
            inner: Arc::new(WorldInner {
                os: Os::with_config(cfg),
                net: Network::new(),
                trace: Trace::new(),
                lass: Mutex::new(HashMap::new()),
                cass: Mutex::new(None),
            }),
        }
    }

    /// The simulated kernel.
    pub fn os(&self) -> &Os {
        &self.inner.os
    }

    /// The simulated network.
    pub fn net(&self) -> &Network {
        &self.inner.net
    }

    /// The global TDP call trace.
    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    /// Add a host on the public network.
    pub fn add_host(&self) -> HostId {
        self.inner.net.add_host()
    }

    /// Add a host inside a private zone.
    pub fn add_host_in(&self, zone: ZoneId) -> HostId {
        self.inner.net.add_host_in(zone)
    }

    /// Create a private zone.
    pub fn add_private_zone(&self, policy: FirewallPolicy) -> ZoneId {
        self.inner.net.add_private_zone(policy)
    }

    /// Start (or find) the LASS on a host, returning its address. Called
    /// by the RM's `tdp_init`; idempotent.
    pub fn ensure_lass(&self, host: HostId) -> TdpResult<Addr> {
        let mut lass = self.inner.lass.lock();
        if let Some(s) = lass.get(&host) {
            return Ok(s.addr());
        }
        let s = AttrSpaceServer::spawn(&self.inner.net, host, LASS_PORT, ServerKind::Local)?;
        let addr = s.addr();
        lass.insert(host, s);
        Ok(addr)
    }

    /// Address of an already-running LASS, if any.
    pub fn lass_addr(&self, host: HostId) -> Option<Addr> {
        self.inner.lass.lock().get(&host).map(|s| s.addr())
    }

    /// Start (or find) the CASS on the front-end host. Called by the RM
    /// front-end.
    pub fn ensure_cass(&self, host: HostId) -> TdpResult<Addr> {
        let mut cass = self.inner.cass.lock();
        if let Some(s) = cass.as_ref() {
            return Ok(s.addr());
        }
        let s = AttrSpaceServer::spawn(&self.inner.net, host, CASS_PORT, ServerKind::Central)?;
        let addr = s.addr();
        *cass = Some(s);
        Ok(addr)
    }

    /// Address of the CASS, if started.
    pub fn cass_addr(&self) -> Option<Addr> {
        self.inner.cass.lock().as_ref().map(|s| s.addr())
    }

    /// Tear down the LASS on a host (simulates its crash — fault
    /// injection for tests).
    pub fn kill_lass(&self, host: HostId) {
        if let Some(s) = self.inner.lass.lock().remove(&host) {
            s.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_lass_is_idempotent() {
        let w = World::new();
        let h = w.add_host();
        let a1 = w.ensure_lass(h).unwrap();
        let a2 = w.ensure_lass(h).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(w.lass_addr(h), Some(a1));
    }

    #[test]
    fn lass_per_host() {
        let w = World::new();
        let h1 = w.add_host();
        let h2 = w.add_host();
        let a1 = w.ensure_lass(h1).unwrap();
        let a2 = w.ensure_lass(h2).unwrap();
        assert_ne!(a1.host, a2.host);
        assert_eq!(a1.port, a2.port, "LASS uses the well-known port on each host");
    }

    #[test]
    fn single_cass() {
        let w = World::new();
        let fe = w.add_host();
        assert_eq!(w.cass_addr(), None);
        let a = w.ensure_cass(fe).unwrap();
        assert_eq!(w.ensure_cass(fe).unwrap(), a);
    }

    #[test]
    fn kill_lass_releases_port() {
        let w = World::new();
        let h = w.add_host();
        let a1 = w.ensure_lass(h).unwrap();
        w.kill_lass(h);
        assert_eq!(w.lass_addr(h), None);
        let a2 = w.ensure_lass(h).unwrap();
        assert_eq!(a1, a2, "restarted LASS rebinds the well-known port");
    }
}
