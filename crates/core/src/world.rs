//! The [`World`]: simulated kernel + network + shared TDP state.
//!
//! A `World` is what a test, example or benchmark sets up once: it owns
//! the `tdp-simos` kernel, the `tdp-netsim` fabric, the per-host LASS
//! servers ("the LASS's are started by the RM", §2.1 — concretely,
//! [`World::ensure_lass`] is invoked from the RM's `tdp_init`), an
//! optional CASS, and the global call [`Trace`].
//!
//! # Transport modes
//!
//! A world runs its attribute-space traffic over one of three
//! transports (see `tdp-wire`):
//!
//! * [`TransportMode::Netsim`] (the default): connections ride the
//!   in-memory simulated fabric, with its latency model and firewall
//!   enforcement on the connect path.
//! * [`TransportMode::Tcp`] ([`World::new_tcp`]): connections are real
//!   loopback TCP sockets, two OS threads per connection.
//! * [`TransportMode::Epoll`] ([`World::new_epoll`]): the same loopback
//!   sockets multiplexed onto one `epoll` reactor plus a small worker
//!   pool, so thread count stays bounded as sessions scale.
//!
//! In both socket modes the netsim fabric is **kept** as the
//! topology/policy source of truth — every logical address stays a
//! `host:port` [`Addr`], and the world maintains a private map from
//! those virtual addresses to the ephemeral real sockets the servers
//! actually bound. Firewall rules are enforced by consulting
//! `Network::route_permitted` before dialling, so a blocked route
//! fails with the same `BlockedByFirewall` error — and the proxy
//! fallback engages identically. Traces are therefore byte-identical
//! across modes.

use crate::trace::Trace;
use crate::{CASS_PORT, LASS_PORT};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use tdp_attrspace::{AttrClient, AttrSpaceServer, ReconnectPolicy, ServerKind};
use tdp_netsim::{FaultEvent, FaultInjector, FaultSchedule, FirewallPolicy, Network, ZoneId};
use tdp_proto::{Addr, HostId, TdpError, TdpResult};
use tdp_simos::{Os, OsConfig};
use tdp_sync::Mutex;
use tdp_wire::tcp::ProxyResolver;
use tdp_wire::{EpollTransport, TcpTransport, Transport, WireConn};

/// Which transport carries attribute-space traffic in this world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// In-memory simulated fabric (default).
    Netsim,
    /// Real loopback TCP sockets; netsim keeps the topology/firewall
    /// bookkeeping. Two OS threads per connection.
    Tcp,
    /// Real loopback TCP sockets multiplexed onto a shared epoll
    /// reactor; netsim keeps the topology/firewall bookkeeping. Thread
    /// count stays O(worker pool), not O(connections).
    Epoll,
}

/// The transport actually carrying attribute-space bytes. The two
/// socket-backed variants share all of the world's plumbing (logical →
/// real address map, firewall pre-check, relay proxy); they differ only
/// in how a raw stream is driven.
enum WireBackend {
    Netsim,
    Tcp(TcpTransport),
    Epoll(EpollTransport),
}

impl WireBackend {
    fn mode(&self) -> TransportMode {
        match self {
            WireBackend::Netsim => TransportMode::Netsim,
            WireBackend::Tcp(_) => TransportMode::Tcp,
            WireBackend::Epoll(_) => TransportMode::Epoll,
        }
    }

    /// The socket-backed transport, when this is not the netsim mode.
    fn socket(&self) -> Option<&dyn Transport> {
        match self {
            WireBackend::Netsim => None,
            WireBackend::Tcp(t) => Some(t),
            WireBackend::Epoll(t) => Some(t),
        }
    }

    /// Socket-mode dial through the byte-relay proxy (`CONNECT`
    /// exchange, then the backend's own `Hello`).
    fn connect_via(&self, proxy: SocketAddr, target: Addr, from: HostId) -> TdpResult<WireConn> {
        match self {
            WireBackend::Netsim => Err(TdpError::Substrate(
                "netsim mode has no socket proxy".into(),
            )),
            WireBackend::Tcp(t) => tdp_wire::tcp_connect_via(proxy, target, from, t.config()),
            WireBackend::Epoll(t) => t.connect_via(proxy, target, from),
        }
    }
}

/// A live relay proxy, either backend (held so shutdown is tied to the
/// world's lifetime).
enum ProxyHandle {
    Sim(#[allow(dead_code)] tdp_netsim::proxy::ProxyServer),
    Tcp(#[allow(dead_code)] tdp_wire::TcpProxy),
}

struct WorldInner {
    os: Os,
    net: Network,
    trace: Trace,
    wire: WireBackend,
    /// Virtual (logical) address → real bound socket, socket modes only.
    tcp_addrs: Arc<Mutex<HashMap<Addr, SocketAddr>>>,
    lass: Mutex<HashMap<HostId, AttrSpaceServer>>,
    cass: Mutex<Option<AttrSpaceServer>>,
    proxies: Mutex<Vec<ProxyHandle>>,
}

/// Shared simulation world. Cheap to clone.
#[derive(Clone)]
pub struct World {
    inner: Arc<WorldInner>,
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}

impl World {
    pub fn new() -> World {
        World::with_config(OsConfig::default())
    }

    /// A world whose attribute-space traffic rides real loopback TCP
    /// (two OS threads per connection).
    pub fn new_tcp() -> World {
        World::with_mode(OsConfig::default(), TransportMode::Tcp)
    }

    /// A world whose attribute-space traffic rides real loopback TCP
    /// multiplexed onto a shared epoll reactor (bounded thread count).
    pub fn new_epoll() -> World {
        World::with_mode(OsConfig::default(), TransportMode::Epoll)
    }

    /// [`World::new_epoll`] with explicit transport tuning — reactor
    /// shard count, worker threads, queue bounds (see
    /// [`tdp_wire::EpollConfig`]). The scaling benches use this to
    /// sweep shard counts.
    pub fn new_epoll_with(wire_cfg: tdp_wire::EpollConfig) -> World {
        let t = EpollTransport::with_config(wire_cfg).expect("start epoll reactors");
        World::with_backend(OsConfig::default(), WireBackend::Epoll(t))
    }

    pub fn with_config(cfg: OsConfig) -> World {
        World::with_mode(cfg, TransportMode::Netsim)
    }

    pub fn with_mode(cfg: OsConfig, mode: TransportMode) -> World {
        let wire = match mode {
            TransportMode::Netsim => WireBackend::Netsim,
            TransportMode::Tcp => WireBackend::Tcp(TcpTransport::new()),
            // Reactor startup only fails on fd/thread exhaustion, at
            // which point this process is not running a world anyway.
            TransportMode::Epoll => {
                WireBackend::Epoll(EpollTransport::new().expect("start epoll reactor"))
            }
        };
        World::with_backend(cfg, wire)
    }

    fn with_backend(cfg: OsConfig, wire: WireBackend) -> World {
        World {
            inner: Arc::new(WorldInner {
                os: Os::with_config(cfg),
                net: Network::new(),
                trace: Trace::new(),
                wire,
                tcp_addrs: Arc::new(Mutex::new(HashMap::new())),
                lass: Mutex::new(HashMap::new()),
                cass: Mutex::new(None),
                proxies: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The simulated kernel.
    pub fn os(&self) -> &Os {
        &self.inner.os
    }

    /// The simulated network (in TCP mode: the topology/firewall model).
    pub fn net(&self) -> &Network {
        &self.inner.net
    }

    /// The global TDP call trace.
    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    /// Which transport this world's attribute-space traffic uses.
    pub fn transport_mode(&self) -> TransportMode {
        self.inner.wire.mode()
    }

    /// Add a host on the public network.
    pub fn add_host(&self) -> HostId {
        self.inner.net.add_host()
    }

    /// All currently-alive hosts, sorted by id. The inventory a layer
    /// fronting this world (the gateway's `world.info` endpoint) hands
    /// to external clients.
    pub fn hosts(&self) -> Vec<HostId> {
        self.inner.net.hosts()
    }

    /// Add a host inside a private zone.
    pub fn add_host_in(&self, zone: ZoneId) -> HostId {
        self.inner.net.add_host_in(zone)
    }

    /// Create a private zone.
    pub fn add_private_zone(&self, policy: FirewallPolicy) -> ZoneId {
        self.inner.net.add_private_zone(policy)
    }

    /// Spawn an attribute-space server at the *logical* `(host, port)`
    /// over this world's transport.
    fn spawn_attr_server(
        &self,
        host: HostId,
        port: u16,
        kind: ServerKind,
    ) -> TdpResult<AttrSpaceServer> {
        let Some(transport) = self.inner.wire.socket() else {
            return AttrSpaceServer::spawn(&self.inner.net, host, port, kind);
        };
        // The host must exist on the topology even though the bytes
        // flow elsewhere.
        if !self.inner.net.host_alive(host) {
            return Err(TdpError::NoSuchHost(host));
        }
        let vaddr = Addr::new(host, port);
        let listener = transport.listen(host, port)?;
        let real = listener
            .local_endpoint()
            .as_tcp()
            .expect("socket transports bind tcp endpoints");
        let server = AttrSpaceServer::spawn_wire(listener, kind, vaddr)?;
        self.inner.tcp_addrs.lock().insert(vaddr, real);
        Ok(server)
    }

    /// Open an attribute-space client from logical host `from` to the
    /// logical `server` address, over this world's transport. Firewall
    /// rules apply in both modes.
    pub fn attr_connect(&self, from: HostId, server: Addr) -> TdpResult<AttrClient> {
        Ok(AttrClient::over_wire(self.attr_dial(from, server)?))
    }

    /// One transport-level dial of `server` from `from`, re-resolving
    /// the logical address — the primitive both [`World::attr_connect`]
    /// and the redial closure of [`World::attr_connect_reliable`] use.
    fn attr_dial(&self, from: HostId, server: Addr) -> TdpResult<WireConn> {
        let Some(transport) = self.inner.wire.socket() else {
            let conn = self.inner.net.connect(from, server)?;
            return Ok(tdp_wire::sim::wrap_conn(conn));
        };
        self.inner.net.route_permitted(from, server)?;
        // Resolved per dial: a restarted server rebinds the same
        // logical address to a fresh real socket.
        let real = self.resolve_tcp(server)?;
        transport.connect(from, &real.into())
    }

    /// Like [`World::attr_connect`], but the session survives a server
    /// restart: dropped connections are re-dialled under `policy` with
    /// jittered exponential backoff and the session state (joins,
    /// subscriptions) replayed. The initial dial retries under the same
    /// policy, so a client racing a restarting server still comes up.
    pub fn attr_connect_reliable(
        &self,
        from: HostId,
        server: Addr,
        policy: ReconnectPolicy,
    ) -> TdpResult<AttrClient> {
        let start = std::time::Instant::now();
        let mut delay = policy.base;
        let conn = loop {
            match self.attr_dial(from, server) {
                Ok(c) => break c,
                Err(
                    e @ (TdpError::Disconnected
                    | TdpError::ConnectionRefused(_)
                    | TdpError::Timeout
                    | TdpError::BlockedByFirewall { .. }
                    | TdpError::Substrate(_)),
                ) => {
                    if start.elapsed() + delay > policy.max_elapsed {
                        return Err(e);
                    }
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(policy.cap);
                }
                Err(e) => return Err(e),
            }
        };
        let mut client = AttrClient::over_wire(conn);
        let w = self.clone();
        client.set_redial(Box::new(move || w.attr_dial(from, server)), policy);
        Ok(client)
    }

    /// Open an attribute-space client to `server` through the relay
    /// proxy at the logical `proxy` address (§2.4).
    pub fn attr_connect_via_proxy(
        &self,
        from: HostId,
        proxy: Addr,
        server: Addr,
    ) -> TdpResult<AttrClient> {
        if self.inner.wire.socket().is_none() {
            return AttrClient::connect_via_proxy(&self.inner.net, from, proxy, server);
        }
        self.inner.net.route_permitted(from, proxy)?;
        let real_proxy = self.resolve_tcp(proxy)?;
        let conn = self.inner.wire.connect_via(real_proxy, server, from)?;
        Ok(AttrClient::over_wire(conn))
    }

    /// Start a relay proxy on `(host, port)` over this world's
    /// transport, returning its logical address. The proxy applies the
    /// topology's firewall rules from its own host's point of view, in
    /// both modes.
    pub fn spawn_proxy(&self, host: HostId, port: u16) -> TdpResult<Addr> {
        if self.inner.wire.socket().is_none() {
            let p = tdp_netsim::proxy::spawn(&self.inner.net, host, port)?;
            let addr = p.addr();
            self.inner.proxies.lock().push(ProxyHandle::Sim(p));
            return Ok(addr);
        }
        // Both socket modes share the byte-relay proxy: it never frames
        // messages, so which backend drives the endpoints is irrelevant.
        if !self.inner.net.host_alive(host) {
            return Err(TdpError::NoSuchHost(host));
        }
        let net = self.inner.net.clone();
        let map = self.inner.tcp_addrs.clone();
        let resolver: ProxyResolver = Arc::new(move |target: Addr| {
            // The relay dials outward from its own host, so its host's
            // routes — not the original client's — decide.
            net.route_permitted(host, target)?;
            map.lock()
                .get(&target)
                .copied()
                .ok_or(TdpError::ConnectionRefused(target))
        });
        let p = tdp_wire::tcp::spawn_proxy(resolver)?;
        let vaddr = Addr::new(host, port);
        self.inner.tcp_addrs.lock().insert(vaddr, p.local_addr());
        self.inner.proxies.lock().push(ProxyHandle::Tcp(p));
        Ok(vaddr)
    }

    /// Resolve a virtual address to the real bound socket (socket
    /// modes).
    fn resolve_tcp(&self, addr: Addr) -> TdpResult<SocketAddr> {
        self.inner
            .tcp_addrs
            .lock()
            .get(&addr)
            .copied()
            .ok_or(TdpError::ConnectionRefused(addr))
    }

    /// Start (or find) the LASS on a host, returning its address. Called
    /// by the RM's `tdp_init`; idempotent.
    pub fn ensure_lass(&self, host: HostId) -> TdpResult<Addr> {
        let mut lass = self.inner.lass.lock();
        if let Some(s) = lass.get(&host) {
            return Ok(s.addr());
        }
        let s = self.spawn_attr_server(host, LASS_PORT, ServerKind::Local)?;
        let addr = s.addr();
        lass.insert(host, s);
        Ok(addr)
    }

    /// Address of an already-running LASS, if any.
    pub fn lass_addr(&self, host: HostId) -> Option<Addr> {
        self.inner.lass.lock().get(&host).map(|s| s.addr())
    }

    /// Start (or find) the CASS on the front-end host. Called by the RM
    /// front-end.
    pub fn ensure_cass(&self, host: HostId) -> TdpResult<Addr> {
        let mut cass = self.inner.cass.lock();
        if let Some(s) = cass.as_ref() {
            return Ok(s.addr());
        }
        let s = self.spawn_attr_server(host, CASS_PORT, ServerKind::Central)?;
        let addr = s.addr();
        *cass = Some(s);
        Ok(addr)
    }

    /// Address of the CASS, if started.
    pub fn cass_addr(&self) -> Option<Addr> {
        self.inner.cass.lock().as_ref().map(|s| s.addr())
    }

    /// Tear down the LASS on a host (simulates its crash — fault
    /// injection for tests).
    pub fn kill_lass(&self, host: HostId) {
        if let Some(s) = self.inner.lass.lock().remove(&host) {
            self.inner
                .tcp_addrs
                .lock()
                .remove(&Addr::new(host, LASS_PORT));
            s.shutdown();
        }
    }

    /// Tear down the CASS (crash injection).
    pub fn kill_cass(&self) {
        if let Some(s) = self.inner.cass.lock().take() {
            self.inner.tcp_addrs.lock().remove(&s.addr());
            s.shutdown();
        }
    }

    /// Hosts that currently run a LASS.
    pub fn lass_hosts(&self) -> Vec<HostId> {
        self.inner.lass.lock().keys().copied().collect()
    }

    /// Host the CASS runs on, if started.
    pub fn cass_host(&self) -> Option<HostId> {
        self.inner.cass.lock().as_ref().map(|s| s.addr().host)
    }

    /// Live attribute-space client sessions across every LASS plus the
    /// CASS (the ops KPI plane's session gauge).
    pub fn attr_session_count(&self) -> usize {
        let lass: usize = self
            .inner
            .lass
            .lock()
            .values()
            .map(|s| s.client_count())
            .sum();
        lass + self
            .inner
            .cass
            .lock()
            .as_ref()
            .map_or(0, |s| s.client_count())
    }

    /// Kill a whole machine: the fabric severs everything touching it
    /// (so condor/lsf/grid daemons there go dark), and any attribute-
    /// space server processes it hosted die with it. In socket modes the
    /// LASS/CASS listen on real sockets the fabric cannot sever, which
    /// is why this lives on the world and not on [`Network`].
    pub fn kill_host(&self, host: HostId) {
        self.inner.net.kill_host(host);
        self.kill_lass(host);
        if self.cass_host() == Some(host) {
            self.kill_cass();
        }
    }

    /// Apply one fault event at world level. Network events gain their
    /// process-level consequences ([`World::kill_host`]); the world also
    /// interprets the custom events `kill-lass:<host>` and `kill-cass`
    /// (a crash of just the server process, host still up).
    pub fn apply_fault(&self, event: &FaultEvent) {
        match event {
            FaultEvent::KillHost(h) => self.kill_host(*h),
            FaultEvent::Custom(s) => {
                if let Some(h) = s.strip_prefix("kill-lass:") {
                    if let Ok(n) = h.parse::<u32>() {
                        self.kill_lass(HostId(n));
                    }
                } else if s == "kill-cass" {
                    self.kill_cass();
                }
            }
            other => self.inner.net.apply_fault(other),
        }
    }

    /// Replay a fault schedule against this world on a background
    /// thread (the chaos soak's injector).
    pub fn inject_faults(&self, schedule: FaultSchedule) -> FaultInjector {
        let w = self.clone();
        FaultInjector::start(schedule, move |ev| w.apply_fault(ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_lass_is_idempotent() {
        let w = World::new();
        let h = w.add_host();
        let a1 = w.ensure_lass(h).unwrap();
        let a2 = w.ensure_lass(h).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(w.lass_addr(h), Some(a1));
    }

    #[test]
    fn lass_per_host() {
        let w = World::new();
        let h1 = w.add_host();
        let h2 = w.add_host();
        let a1 = w.ensure_lass(h1).unwrap();
        let a2 = w.ensure_lass(h2).unwrap();
        assert_ne!(a1.host, a2.host);
        assert_eq!(
            a1.port, a2.port,
            "LASS uses the well-known port on each host"
        );
    }

    #[test]
    fn single_cass() {
        let w = World::new();
        let fe = w.add_host();
        assert_eq!(w.cass_addr(), None);
        let a = w.ensure_cass(fe).unwrap();
        assert_eq!(w.ensure_cass(fe).unwrap(), a);
    }

    #[test]
    fn kill_lass_releases_port() {
        let w = World::new();
        let h = w.add_host();
        let a1 = w.ensure_lass(h).unwrap();
        w.kill_lass(h);
        assert_eq!(w.lass_addr(h), None);
        let a2 = w.ensure_lass(h).unwrap();
        assert_eq!(a1, a2, "restarted LASS rebinds the well-known port");
    }

    #[test]
    fn tcp_world_uses_virtual_addrs() {
        let w = World::new_tcp();
        assert_eq!(w.transport_mode(), TransportMode::Tcp);
        let h = w.add_host();
        let a = w.ensure_lass(h).unwrap();
        assert_eq!(a, Addr::new(h, LASS_PORT), "logical address is stable");
        // The virtual address resolves to a real loopback socket.
        assert!(w.resolve_tcp(a).unwrap().ip().is_loopback());
        // Connecting through the logical address works end to end.
        let mut c = w.attr_connect(h, a).unwrap();
        c.join(tdp_proto::ContextId(7)).unwrap();
        c.put(tdp_proto::ContextId(7), "k", "v").unwrap();
        assert_eq!(c.get(tdp_proto::ContextId(7), "k").unwrap(), "v");
    }

    #[test]
    fn epoll_world_uses_virtual_addrs() {
        let w = World::new_epoll();
        assert_eq!(w.transport_mode(), TransportMode::Epoll);
        let h = w.add_host();
        let a = w.ensure_lass(h).unwrap();
        assert_eq!(a, Addr::new(h, LASS_PORT), "logical address is stable");
        assert!(w.resolve_tcp(a).unwrap().ip().is_loopback());
        let mut c = w.attr_connect(h, a).unwrap();
        c.join(tdp_proto::ContextId(7)).unwrap();
        c.put(tdp_proto::ContextId(7), "k", "v").unwrap();
        assert_eq!(c.get(tdp_proto::ContextId(7), "k").unwrap(), "v");
    }

    #[test]
    fn tcp_kill_lass_unregisters_virtual_addr() {
        let w = World::new_tcp();
        let h = w.add_host();
        let a = w.ensure_lass(h).unwrap();
        w.kill_lass(h);
        assert!(w.attr_connect(h, a).is_err(), "dead LASS must refuse");
    }
}
