//! The TDP call trace.
//!
//! Figures 3 and 6 of the paper are *sequence diagrams*: orderings of
//! TDP calls across the RM, RT and AP. To reproduce them as tests rather
//! than pictures, every [`crate::TdpHandle`] records its calls into the
//! world's shared trace; figure tests then assert the observed order
//! (exact where the paper requires it, partial where creation order is
//! explicitly free — "the creation of the application process and RT can
//! occur in either order", Figure 3 caption).

use std::sync::Arc;
use tdp_sync::Mutex;

/// One recorded TDP call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (0-based).
    pub seq: usize,
    /// Which daemon made the call ("starter", "paradynd", …).
    pub actor: String,
    /// Rendered call, e.g. `tdp_create_process(/bin/app, paused)`.
    pub call: String,
}

/// A shared, append-only log of TDP calls.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Arc<Mutex<Vec<TraceEvent>>>,
}

impl Trace {
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Append an event.
    pub fn record(&self, actor: &str, call: impl Into<String>) {
        let mut log = self.inner.lock();
        let seq = log.len();
        log.push(TraceEvent {
            seq,
            actor: actor.to_string(),
            call: call.into(),
        });
    }

    /// Snapshot of all events so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().clone()
    }

    /// Events made by one actor, in order.
    pub fn by_actor(&self, actor: &str) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .iter()
            .filter(|e| e.actor == actor)
            .cloned()
            .collect()
    }

    /// Sequence number of the first event whose rendered call contains
    /// `needle` (optionally restricted to an actor).
    pub fn seq_of(&self, actor: Option<&str>, needle: &str) -> Option<usize> {
        self.inner
            .lock()
            .iter()
            .find(|e| actor.is_none_or(|a| e.actor == a) && e.call.contains(needle))
            .map(|e| e.seq)
    }

    /// Assert that `earlier` happens before `later` (both matched by
    /// substring, optionally per-actor). Panics with the full trace on
    /// failure — the test-facing primitive for sequence-diagram checks.
    #[track_caller]
    pub fn assert_order(&self, earlier: (Option<&str>, &str), later: (Option<&str>, &str)) {
        let a = self.seq_of(earlier.0, earlier.1);
        let b = self.seq_of(later.0, later.1);
        match (a, b) {
            (Some(a), Some(b)) if a < b => {}
            _ => panic!(
                "expected {:?} before {:?}; a={a:?} b={b:?}\ntrace:\n{}",
                earlier,
                later,
                self.render()
            ),
        }
    }

    /// Human-readable rendering, one call per line.
    pub fn render(&self) -> String {
        self.inner
            .lock()
            .iter()
            .map(|e| format!("{:4}  {:<12} {}", e.seq, e.actor, e.call))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Drop all events.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Render the trace as an ASCII sequence diagram over the given
    /// actor lifelines (events of other actors are omitted) — how the
    /// examples regenerate the paper's Figures 3 and 6 from a live run.
    ///
    /// Actors matching a name exactly come first; an entry ending in
    /// `*` matches by prefix (e.g. `paradynd*`).
    pub fn render_sequence(&self, actors: &[&str]) -> String {
        let events = self.inner.lock().clone();
        let matches = |actor: &str, pat: &str| {
            pat.strip_suffix('*')
                .map_or(actor == pat, |p| actor.starts_with(p))
        };
        let widest_call = events
            .iter()
            .filter(|e| actors.iter().any(|a| matches(&e.actor, a)))
            .map(|e| e.call.len())
            .max()
            .unwrap_or(0);
        let col_width = actors
            .iter()
            .map(|a| a.len())
            .max()
            .unwrap_or(8)
            .max(widest_call)
            .max(16)
            + 4;
        let mut out = String::new();
        // Header lifelines.
        for a in actors {
            out.push_str(&format!("{a:^col_width$}"));
        }
        out.push('\n');
        for _ in actors {
            out.push_str(&format!("{:^col_width$}", "|"));
        }
        out.push('\n');
        for ev in &events {
            let Some(col) = actors.iter().position(|a| matches(&ev.actor, a)) else {
                continue;
            };
            for (i, _) in actors.iter().enumerate() {
                if i == col {
                    out.push_str(&format!("{:^col_width$}", ev.call));
                } else {
                    out.push_str(&format!("{:^col_width$}", "|"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_seq() {
        let t = Trace::new();
        t.record("rm", "tdp_init()");
        t.record("rt", "tdp_get(pid)");
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].seq, 0);
        assert_eq!(ev[1].seq, 1);
        assert_eq!(ev[1].actor, "rt");
    }

    #[test]
    fn by_actor_filters() {
        let t = Trace::new();
        t.record("rm", "a");
        t.record("rt", "b");
        t.record("rm", "c");
        let rm = t.by_actor("rm");
        assert_eq!(
            rm.iter().map(|e| e.call.as_str()).collect::<Vec<_>>(),
            vec!["a", "c"]
        );
    }

    #[test]
    fn assert_order_passes_and_fails() {
        let t = Trace::new();
        t.record("rm", "tdp_init()");
        t.record("rt", "tdp_attach(5)");
        t.assert_order((Some("rm"), "tdp_init"), (Some("rt"), "tdp_attach"));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.assert_order((Some("rt"), "tdp_attach"), (Some("rm"), "tdp_init"))
        }));
        assert!(r.is_err());
    }

    #[test]
    fn seq_of_missing_is_none() {
        let t = Trace::new();
        assert_eq!(t.seq_of(None, "nothing"), None);
    }

    #[test]
    fn clear_resets() {
        let t = Trace::new();
        t.record("x", "y");
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn sequence_diagram_renders_lifelines() {
        let t = Trace::new();
        t.record("starter", "tdp_init()");
        t.record("paradynd7", "tdp_get(pid)");
        t.record("ignored", "tdp_put(x)");
        t.record("starter", "tdp_put(pid)");
        let d = t.render_sequence(&["starter", "paradynd*"]);
        let lines: Vec<&str> = d.lines().collect();
        // Header + lifeline row + 3 matched events (ignored actor is
        // filtered out).
        assert_eq!(lines.len(), 5, "{d}");
        assert!(lines[0].contains("starter") && lines[0].contains("paradynd*"));
        assert!(lines[2].contains("tdp_init()"));
        assert!(lines[3].contains("tdp_get(pid)"));
        assert!(lines[4].contains("tdp_put(pid)"));
        assert!(!d.contains("tdp_put(x)"));
        // The event appears in its own column: the get line still has a
        // lifeline bar for the starter column.
        assert!(lines[3].trim_start().starts_with('|'));
    }
}
