//! # tdp-core — the Tool Dæmon Protocol library
//!
//! This crate is the paper's contribution: the library a **resource
//! manager** (RM) and a **run-time tool** (RT) both link so that any
//! TDP-speaking tool runs under any TDP-speaking scheduler — turning the
//! m × n porting problem into m + n (§1).
//!
//! The API mirrors the paper's C interface:
//!
//! | paper                         | here                                   |
//! |-------------------------------|----------------------------------------|
//! | `tdp_init`                    | [`TdpHandle::init`]                    |
//! | `tdp_exit`                    | [`TdpHandle::exit`] (also on drop)     |
//! | `tdp_put` / `tdp_get`         | [`TdpHandle::put`] / [`TdpHandle::get`]|
//! | `tdp_async_put` / `tdp_async_get` | [`TdpHandle::async_put`] / [`TdpHandle::async_get`] |
//! | `tdp_service_event`           | [`TdpHandle::service_events`]          |
//! | `tdp_create_process` (run/paused) | [`TdpHandle::create_process`]      |
//! | `tdp_attach`                  | [`TdpHandle::attach`]                  |
//! | `tdp_continue_process`        | [`TdpHandle::continue_process`]        |
//!
//! plus the services the paper specifies around the core calls:
//!
//! * **single-point process control** (§2.3) — the RT files process
//!   management requests through the attribute space
//!   ([`TdpHandle::request_proc_op`]) and the RM services them
//!   ([`TdpHandle::service_proc_requests`]) and publishes status
//!   ([`TdpHandle::publish_status`]);
//! * **tool communication** (§2.4) — front-end address dissemination and
//!   firewall-aware connection establishment with automatic proxy
//!   fallback ([`TdpHandle::open_tool_channel`]);
//! * **file staging** (§2) — configuration files out, trace files back
//!   ([`TdpHandle::stage_file`]);
//! * an **event trace** ([`trace::Trace`]) recording every TDP call, so
//!   the paper's sequence diagrams (Figures 3 and 6) are reproduced as
//!   machine-checked assertions.
//!
//! Everything runs against the simulated substrates: `tdp-simos`
//! processes and `tdp-netsim` networking, bundled in a [`World`].
//!
//! ```
//! use std::sync::Arc;
//! use tdp_core::{Role, TdpCreate, TdpHandle, World};
//! use tdp_proto::{names, ContextId, Pid};
//! use tdp_simos::{fn_program, ExecImage};
//!
//! // A world with one host and one "binary".
//! let world = World::new();
//! let host = world.add_host();
//! world.os().fs().install_exec(
//!     host,
//!     "/bin/app",
//!     ExecImage::new(["main"], Arc::new(|_| fn_program(|ctx| {
//!         ctx.call("main", |ctx| ctx.compute(10));
//!         0
//!     }))),
//! );
//!
//! // RM side: create paused, publish the pid.
//! let ctx = ContextId::DEFAULT;
//! let mut rm = TdpHandle::init(&world, host, ctx, "rm", Role::ResourceManager).unwrap();
//! let app = rm.create_process(TdpCreate::new("/bin/app").paused()).unwrap();
//! rm.put(names::PID, &app.to_string()).unwrap();
//!
//! // Tool side: blocking get, attach before main, instrument, run.
//! let mut tool = TdpHandle::init(&world, host, ctx, "tool", Role::Tool).unwrap();
//! let pid = Pid::parse(&tool.get(names::PID).unwrap()).unwrap();
//! tool.attach(pid).unwrap();
//! tool.arm_probe(pid, "main").unwrap();
//! tool.continue_process(pid).unwrap();
//! let status = tool.wait_terminal(pid, std::time::Duration::from_secs(5)).unwrap();
//! assert!(status.is_terminal());
//! assert_eq!(tool.read_probes(pid).unwrap().counts["main"], 1);
//! ```

pub mod handle;
pub mod ops;
pub mod trace;
pub mod world;

pub use handle::{Role, TdpCreate, TdpHandle, Token};
pub use ops::{CassComponent, LassComponent, Supervisable};
pub use trace::{Trace, TraceEvent};
pub use world::{TransportMode, World};

/// The well-known port each host's LASS listens on.
pub const LASS_PORT: u16 = 7777;
/// The well-known port the front-end's CASS listens on.
pub const CASS_PORT: u16 = 7778;
