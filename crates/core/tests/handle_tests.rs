//! Tests of the TDP library handle: init/exit, attribute operations,
//! asynchronous events, process management, single-point control, tool
//! channels and staging.

use std::time::Duration;
use tdp_core::{Role, TdpCreate, TdpHandle, World};
use tdp_netsim::FirewallPolicy;
use tdp_proto::{names, Addr, ContextId, ProcRequest, ProcStatus, TdpError};
use tdp_simos::{fn_program, ExecImage};
use tdp_sync::atomic::{AtomicUsize, Ordering};
use tdp_sync::{Arc, Mutex};

const CTX: ContextId = ContextId(1);
const T: Duration = Duration::from_secs(5);

fn world_with_app() -> (World, tdp_proto::HostId) {
    let w = World::new();
    let h = w.add_host();
    w.os().fs().install_exec(
        h,
        "/bin/app",
        ExecImage::new(
            ["main", "work"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for _ in 0..5 {
                            ctx.call("work", |ctx| ctx.compute(10));
                        }
                    });
                    0
                })
            }),
        ),
    );
    (w, h)
}

#[test]
fn rm_init_starts_lass_tool_init_requires_it() {
    let w = World::new();
    let h = w.add_host();
    assert!(matches!(
        TdpHandle::init(&w, h, CTX, "tool", Role::Tool),
        Err(TdpError::Substrate(_))
    ));
    let _rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let _rt = TdpHandle::init(&w, h, CTX, "tool", Role::Tool).unwrap();
    assert!(w.lass_addr(h).is_some());
}

#[test]
fn put_get_between_daemons() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    rm.put(names::PID, "1234").unwrap();
    assert_eq!(rt.get(names::PID).unwrap(), "1234");
    assert!(matches!(
        rt.try_get("absent"),
        Err(TdpError::AttributeNotFound(_))
    ));
}

#[test]
fn blocking_get_crosses_daemons() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    let th = std::thread::spawn(move || rt.get(names::PID).unwrap());
    std::thread::sleep(Duration::from_millis(40));
    rm.put(names::PID, "77").unwrap();
    assert_eq!(th.join().unwrap(), "77");
}

#[test]
fn handle_closed_after_exit() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    rm.exit().unwrap();
    assert!(matches!(rm.put("k", "v"), Err(TdpError::HandleClosed)));
    assert!(rm.exit().is_ok(), "exit is idempotent");
}

#[test]
fn async_get_callback_runs_at_service_point() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    let got: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    rt.async_get(names::PID, move |k, v| g2.lock().push((k.into(), v.into())))
        .unwrap();
    // Nothing yet: callback must not run before the put.
    assert_eq!(rt.service_events().unwrap(), 0);
    rm.put(names::PID, "55").unwrap();
    std::thread::sleep(Duration::from_millis(40));
    assert!(rt.has_events());
    assert_eq!(rt.service_events().unwrap(), 1);
    assert_eq!(
        got.lock().as_slice(),
        &[("pid".to_string(), "55".to_string())]
    );
    // One-shot: a second put does not re-fire.
    rm.put(names::PID, "56").unwrap();
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(rt.service_events().unwrap(), 0);
}

#[test]
fn async_get_on_existing_value_fires_immediately() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    rm.put("ready", "yes").unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c2 = count.clone();
    rt.async_get("ready", move |_, _| {
        c2.fetch_add(1, Ordering::SeqCst);
    })
    .unwrap();
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(rt.service_events().unwrap(), 1);
    assert_eq!(count.load(Ordering::SeqCst), 1);
}

#[test]
fn async_put_completion_deferred_to_service() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let f2 = fired.clone();
    rm.async_put("k", "v", move |_, _| {
        f2.fetch_add(1, Ordering::SeqCst);
    })
    .unwrap();
    // The put itself has happened, but the callback must wait for the
    // safe point.
    assert_eq!(fired.load(Ordering::SeqCst), 0);
    assert_eq!(rm.try_get("k").unwrap(), "v");
    assert_eq!(rm.service_events().unwrap(), 1);
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

#[test]
fn watch_is_persistent_across_puts() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = seen.clone();
    rt.watch(names::AP_STATUS, move |_, v| s2.lock().push(v.to_string()))
        .unwrap();
    for st in ["running", "stopped", "exited:0"] {
        rm.put(names::AP_STATUS, st).unwrap();
        // Drain between puts: one-shot server subscriptions are
        // re-armed by service_events, so back-to-back puts without a
        // drain could coalesce.
        rt.wait_and_service(T).unwrap();
    }
    assert_eq!(seen.lock().as_slice(), &["running", "stopped", "exited:0"]);
}

#[test]
fn cancel_prevents_callback() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c2 = count.clone();
    let tok = rt
        .async_get("k", move |_, _| {
            c2.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    rt.cancel(tok).unwrap();
    rm.put("k", "v").unwrap();
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(rt.service_events().unwrap(), 0);
    assert_eq!(count.load(Ordering::SeqCst), 0);
}

#[test]
fn create_paused_attach_continue_lifecycle() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    let pid = rm
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    assert_eq!(rm.process_status(pid).unwrap(), ProcStatus::Created);
    rt.attach(pid).unwrap();
    assert_eq!(rt.symbols(pid).unwrap(), vec!["main", "work"]);
    rt.arm_probe(pid, "work").unwrap();
    rt.continue_process(pid).unwrap();
    assert_eq!(rt.wait_terminal(pid, T).unwrap(), ProcStatus::Exited(0));
    let probes = rt.read_probes(pid).unwrap();
    assert_eq!(probes.counts["work"], 5);
    assert_eq!(probes.time["work"], 50);
}

#[test]
fn instrumentation_requires_attach() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let pid = rm
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    assert!(matches!(rm.symbols(pid), Err(TdpError::NotTracer(_))));
    assert!(matches!(
        rm.arm_probe(pid, "work"),
        Err(TdpError::NotTracer(_))
    ));
}

#[test]
fn detach_releases_tracer_slot() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    let pid = rm
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    rt.attach(pid).unwrap();
    rt.detach(pid).unwrap();
    rm.attach(pid).unwrap(); // now free for another tracer
    rm.kill_process(pid, 9).unwrap();
}

#[test]
fn single_point_control_rt_requests_rm_services() {
    // §2.3: the RT never touches the process directly; it files a
    // request and the RM performs it and publishes the status.
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    let pid = rm
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    rm.publish_status(ProcStatus::Created).unwrap();

    rt.request_proc_op(ProcRequest::Continue).unwrap();
    assert_eq!(
        rm.service_proc_requests(pid).unwrap(),
        Some(ProcRequest::Continue)
    );
    rm.wait_terminal(pid, T).unwrap();
    // No pending request now.
    assert_eq!(rm.service_proc_requests(pid).unwrap(), None);
    // RT reads the status the RM published after servicing.
    let st = rt.published_status().unwrap().unwrap();
    assert!(matches!(st, ProcStatus::Running | ProcStatus::Exited(_)));
}

#[test]
fn kill_request_via_attribute_space() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    let pid = rm
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    rt.request_proc_op(ProcRequest::Kill(9)).unwrap();
    assert_eq!(
        rm.service_proc_requests(pid).unwrap(),
        Some(ProcRequest::Kill(9))
    );
    assert_eq!(rm.wait_terminal(pid, T).unwrap(), ProcStatus::Killed(9));
}

#[test]
fn tool_channel_direct_when_unrestricted() {
    let (w, h) = world_with_app();
    let fe_host = w.add_host();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    let listener = w.net().listen(fe_host, 2090).unwrap();
    rm.advertise_frontend(Addr::new(fe_host, 2090)).unwrap();
    let c = rt.open_tool_channel().unwrap();
    c.send(b"hello fe").unwrap();
    let mut s = listener.accept().unwrap();
    assert_eq!(&s.recv().unwrap()[..], b"hello fe");
}

#[test]
fn tool_channel_falls_back_to_proxy_behind_firewall() {
    // Figure 1: execution host in a strict private zone; only the RM's
    // gateway may cross. open_tool_channel must transparently use it.
    let w = World::new();
    let fe_host = w.add_host();
    let zone = w.add_private_zone(FirewallPolicy::STRICT);
    let exec = w.add_host_in(zone);
    let gw = w.add_host_in(zone);
    let listener = w.net().listen(fe_host, 2090).unwrap();
    let fe_addr = Addr::new(fe_host, 2090);
    w.net().authorize_route(gw, fe_addr);
    let proxy = tdp_netsim::proxy::spawn(w.net(), gw, 9618).unwrap();

    let mut rm = TdpHandle::init(&w, exec, CTX, "rm", Role::ResourceManager).unwrap();
    rm.advertise_frontend(fe_addr).unwrap();
    rm.advertise_proxy(proxy.addr()).unwrap();
    let mut rt = TdpHandle::init(&w, exec, CTX, "rt", Role::Tool).unwrap();
    let c = rt.open_tool_channel().unwrap();
    c.send(b"via proxy").unwrap();
    let mut s = listener.accept().unwrap();
    assert_eq!(&s.recv().unwrap()[..], b"via proxy");
}

#[test]
fn cass_shared_across_hosts() {
    let w = World::new();
    let fe = w.add_host();
    let e1 = w.add_host();
    let e2 = w.add_host();
    let cass = w.ensure_cass(fe).unwrap();
    let mut a = TdpHandle::init(&w, e1, CTX, "d1", Role::ResourceManager).unwrap();
    let mut b = TdpHandle::init(&w, e2, CTX, "d2", Role::ResourceManager).unwrap();
    a.connect_cass(cass).unwrap();
    b.connect_cass(cass).unwrap();
    a.put_central("global", "42").unwrap();
    assert_eq!(b.get_central("global").unwrap(), "42");
    // Local spaces remain isolated.
    a.put("local", "x").unwrap();
    assert!(matches!(
        b.try_get("local"),
        Err(TdpError::AttributeNotFound(_))
    ));
}

#[test]
fn stage_tool_config_and_trace_files() {
    let (w, h) = world_with_app();
    let submit = w.add_host();
    w.os()
        .fs()
        .write_file(submit, "paradyn.conf", b"metric cpu\n");
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    // Config out to the execution node…
    rm.stage_file(submit, "paradyn.conf", h, "/work/paradyn.conf")
        .unwrap();
    assert_eq!(
        w.os().fs().read_file(h, "/work/paradyn.conf").unwrap(),
        b"metric cpu\n"
    );
    // …trace data back after the run.
    w.os().fs().write_file(h, "/work/trace.out", b"samples");
    rm.stage_file(h, "/work/trace.out", submit, "results/trace.out")
        .unwrap();
    assert_eq!(
        w.os().fs().read_file(submit, "results/trace.out").unwrap(),
        b"samples"
    );
}

#[test]
fn trace_records_call_sequence() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let pid = rm
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    rm.put(names::PID, &pid.to_string()).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    let got = rt.get(names::PID).unwrap();
    rt.attach(tdp_proto::Pid::parse(&got).unwrap()).unwrap();
    rt.continue_process(pid).unwrap();
    rt.wait_terminal(pid, T).unwrap();

    let trace = w.trace();
    trace.assert_order((Some("rm"), "tdp_init"), (Some("rm"), "tdp_create_process"));
    trace.assert_order(
        (Some("rm"), "tdp_create_process"),
        (Some("rt"), "tdp_attach"),
    );
    trace.assert_order((Some("rm"), "tdp_put(pid)"), (Some("rt"), "tdp_attach"));
    trace.assert_order(
        (Some("rt"), "tdp_attach"),
        (Some("rt"), "tdp_continue_process"),
    );
}

#[test]
fn separate_contexts_per_tool() {
    // An RM managing two RTs uses two contexts; their attributes are
    // isolated (§3.2).
    let (w, h) = world_with_app();
    let mut rm1 = TdpHandle::init(&w, h, ContextId(1), "rm", Role::ResourceManager).unwrap();
    let mut rm2 = TdpHandle::init(&w, h, ContextId(2), "rm", Role::ResourceManager).unwrap();
    rm1.put(names::PID, "1").unwrap();
    rm2.put(names::PID, "2").unwrap();
    let mut rt1 = TdpHandle::init(&w, h, ContextId(1), "rt1", Role::Tool).unwrap();
    let mut rt2 = TdpHandle::init(&w, h, ContextId(2), "rt2", Role::Tool).unwrap();
    assert_eq!(rt1.get(names::PID).unwrap(), "1");
    assert_eq!(rt2.get(names::PID).unwrap(), "2");
}

#[test]
fn heartbeat_counter_advances_and_is_peer_visible() {
    let (w, h) = world_with_app();
    let mut rm = TdpHandle::init(&w, h, CTX, "rm", Role::ResourceManager).unwrap();
    let mut rt = TdpHandle::init(&w, h, CTX, "rt", Role::Tool).unwrap();
    assert_eq!(rm.last_heartbeat().unwrap(), None);
    assert_eq!(rt.heartbeat().unwrap(), 1);
    assert_eq!(rt.heartbeat().unwrap(), 2);
    assert_eq!(rm.last_heartbeat().unwrap(), Some(2));
    // Either side can beat: it is a shared counter in the context.
    assert_eq!(rm.heartbeat().unwrap(), 3);
}
