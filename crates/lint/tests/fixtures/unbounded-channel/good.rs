//! GOOD: every channel picks a capacity (the backpressure decision is
//! written down); declaring an `unbounded` shim and *importing* the
//! name are not constructions.

use crossbeam::channel::bounded;

const BACKLOG: usize = 128;

fn with_capacity() {
    let (_tx, _rx) = bounded::<u64>(BACKLOG);
}

fn rendezvous() {
    let (_tx, _rx) = bounded::<u32>(0);
}

// The crossbeam shim itself *declares* `unbounded`; a declaration is
// exempt (the rule checks call shapes, `fn` keeps this one legal).
fn unbounded() -> usize {
    BACKLOG
}

fn shim_decl_is_exempt() {
    let _ = bounded::<()>(BACKLOG);
}
