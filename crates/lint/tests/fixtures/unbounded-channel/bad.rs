//! BAD: queues with no capacity — every construction here is flagged.

use crossbeam::channel::unbounded;

fn plain() {
    let (_tx, _rx) = unbounded::<u64>(); // flagged (turbofish form)
}

fn via_path() {
    let (_tx, _rx) = crossbeam::channel::unbounded(); // flagged
}

fn std_mpsc() {
    let (_tx, _rx) = std::sync::mpsc::channel::<u32>(); // flagged
}
