//! GOOD: the data is copied out and the guard dropped (or never taken)
//! before anything blocks.

use tdp_sync::Mutex;

fn copy_out_then_send(m: &Mutex<Vec<u32>>, tx: &crossbeam::channel::Sender<u32>) {
    let first = {
        let g = m.lock();
        g[0]
    };
    tx.send(first).unwrap();
}

fn drop_ends_liveness(m: &Mutex<u32>, rx: &crossbeam::channel::Receiver<u32>) {
    let g = m.lock();
    let _snapshot = *g;
    drop(g);
    let _v = rx.recv().unwrap(); // fine: guard explicitly dropped
}

fn deref_copy_is_not_a_guard(m: &Mutex<u32>, tx: &crossbeam::channel::Sender<u32>) {
    let v = *m.lock(); // temporary dies at the `;`
    tx.send(v).unwrap();
}

fn spawned_closure_runs_elsewhere(m: &Mutex<u32>, rx: crossbeam::channel::Receiver<u32>) {
    let g = m.lock();
    std::thread::Builder::new()
        .name("worker".into())
        .spawn(move || {
            let _v = rx.recv().unwrap(); // other thread: not under `g`
        })
        .unwrap();
    drop(g);
}

fn try_send_never_blocks(m: &Mutex<u32>, tx: &crossbeam::channel::Sender<u32>) {
    let g = m.lock();
    let _ = tx.try_send(*g);
}
