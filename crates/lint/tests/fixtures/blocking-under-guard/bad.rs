//! BAD: blocking calls while a facade guard is live in the same block.

use tdp_sync::Mutex;

fn send_under_lock(m: &Mutex<Vec<u32>>, tx: &crossbeam::channel::Sender<u32>) {
    let g = m.lock();
    tx.send(g[0]).unwrap(); // flagged: channel send under `g`
}

fn sleep_under_read(l: &tdp_sync::RwLock<u32>) {
    let snapshot = l.read();
    std::thread::sleep(std::time::Duration::from_millis(*snapshot as u64)); // flagged
}

fn recv_after_manual_scope(m: &Mutex<u32>, rx: &crossbeam::channel::Receiver<u32>) {
    let held = m.lock();
    let _v = rx.recv().unwrap(); // flagged: `held` not dropped yet
    drop(held);
}
