//! GOOD: `PooledBuf` used as designed — borrow the bytes, let drop
//! return the buffer. `into_inner` on *other* types stays legal.

use tdp_wire::pool::PooledBuf;

fn use_and_release(buf: PooledBuf) -> usize {
    let n = buf.len();
    drop(buf); // returns to the pool
    n
}

fn inspect(buf: &PooledBuf) -> Option<u8> {
    buf.first().copied()
}

fn other_types_unrestricted(cell: std::cell::RefCell<u32>) -> u32 {
    // `.into_inner()` is only banned in a file that handles PooledBuf…
    // on the pooled type itself; a RefCell's is unrelated. This file
    // mentions PooledBuf, so the *lexical* rule would flag a pooled
    // `.into_inner(` — a RefCell consumed in a PooledBuf-free helper
    // module is out of scope by design.
    cell.replace(0)
}
