//! BAD: defeating `PooledBuf`'s drop-returns-to-pool ownership
//! discipline outside the pool's own implementation.

use tdp_wire::pool::PooledBuf;

fn leak_on_purpose(buf: PooledBuf) {
    std::mem::forget(buf); // flagged: buffer never returns to the pool
}

fn steal_backing_storage(buf: PooledBuf) -> Vec<u8> {
    buf.into_inner() // flagged: strips the return-to-pool guarantee
}
