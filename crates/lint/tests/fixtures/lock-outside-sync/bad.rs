//! BAD: names lock primitives directly instead of going through the
//! tdp-sync facade. Each line here must be flagged.

use parking_lot::Mutex;
use std::sync::RwLock;

struct State {
    jobs: Mutex<Vec<u32>>,
    hosts: RwLock<Vec<String>>,
    gate: std::sync::Condvar,
}

fn init() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {});
    let _b = std::sync::Barrier::new(2);
}
