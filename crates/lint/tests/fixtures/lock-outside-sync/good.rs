//! GOOD: every primitive comes from the facade; `std::sync::Arc` and
//! atomics are not lock primitives and stay legal.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use tdp_sync::{Condvar, Mutex, RwLock};

struct State {
    jobs: Mutex<Vec<u32>>,
    hosts: RwLock<Vec<String>>,
    cv: Condvar,
    epoch: Arc<AtomicU32>,
}

fn bump(s: &State) {
    s.epoch.fetch_add(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    // Test-only code is stripped before rules run: a std lock in a
    // test is loom's/TSan's problem, not the linter's.
    use std::sync::Mutex;

    #[test]
    fn scratch() {
        let _ = Mutex::new(0);
    }
}
