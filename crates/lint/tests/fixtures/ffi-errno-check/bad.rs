//! BAD: raw syscalls whose return value vanishes. An fd leak, a lost
//! wakeup or an EBADF double-close all start exactly here.

extern "C" {
    fn close(fd: i32) -> i32;
    fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
}

pub struct OwnedFd(i32);

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // SAFETY: fd is owned.
        unsafe {
            close(self.0); // flagged: return value discarded
        }
    }
}

pub fn fire_and_forget(fd: i32, one: &u64) {
    // SAFETY: writes 8 bytes from a live reference.
    unsafe {
        write(fd, (one as *const u64).cast(), 8); // flagged: no errno check
    }
}
