//! GOOD: every raw syscall's return feeds a check — `cvt`, a 0/-1
//! comparison, or `last_os_error` — within the evidence window.

use std::io;

extern "C" {
    fn close(fd: i32) -> i32;
    fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

pub fn make() -> io::Result<i32> {
    // SAFETY: plain fd-returning syscall.
    cvt(unsafe { eventfd(0, 0) })
}

pub fn close_checked(fd: i32) {
    // SAFETY: callers own `fd`.
    let ret = unsafe { close(fd) };
    if ret < 0 {
        let err = io::Error::last_os_error();
        debug_assert!(false, "close({fd}) failed: {err}");
    }
}

pub fn write_checked(fd: i32, one: &u64) -> io::Result<()> {
    // SAFETY: writes 8 bytes from a live reference.
    let n = unsafe { write(fd, (one as *const u64).cast(), 8) };
    if n < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}
