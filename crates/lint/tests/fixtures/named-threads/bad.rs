//! BAD: anonymous threads. A panic backtrace, TSan report or
//! thread-leak assert from one of these says `<unnamed>`.

fn pump(rx: crossbeam::channel::Receiver<Vec<u8>>) {
    std::thread::spawn(move || { // flagged: bare std spawn
        while rx.recv().is_ok() {}
    });
}

fn shorthand(job: impl FnOnce() + Send + 'static) {
    use std::thread;
    thread::spawn(job); // flagged: bare spawn via import
}
