//! GOOD: every thread is named at spawn; scoped threads and loom's
//! model-controlled spawn have no Builder and stay legal.

fn pump(rx: crossbeam::channel::Receiver<Vec<u8>>) {
    std::thread::Builder::new()
        .name("fixture-pump".into())
        .spawn(move || while rx.recv().is_ok() {})
        .expect("spawn pump");
}

fn scoped(items: &mut [u32]) {
    std::thread::scope(|s| {
        for chunk in items.chunks_mut(2) {
            s.spawn(move || chunk.sort_unstable()); // scoped: joined by scope exit
        }
    });
}

#[cfg(loom)]
fn model_thread() {
    // loom controls scheduling; its spawn has no Builder equivalent.
    loom::thread::spawn(|| {});
}
