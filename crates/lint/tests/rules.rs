//! Fixture harness: every rule is proven by a failing/passing pair.
//!
//! For each registered rule there must be a
//! `tests/fixtures/<rule-id>/{bad.rs,good.rs}` pair; `bad.rs` must
//! produce at least one finding under that rule (the rule *can* fail)
//! and `good.rs` none (the rule doesn't cry wolf on the idiomatic
//! form). A rule added without fixtures fails this test by
//! construction, which is the point: the fixture pair is the rule's
//! spec and its regression test in one.

use std::path::PathBuf;
use tdp_lint::{lint_file_with_rule, rules};

fn fixture_dir(rule_id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule_id)
}

/// Fixtures are linted under a neutral path so per-path escapes
/// (`crates/sync/`, `crates/wire/src/pool.rs`) never kick in.
fn neutral_rel(rule_id: &str, name: &str) -> String {
    format!("crates/fixture/src/{rule_id}/{name}")
}

#[test]
fn every_rule_has_a_failing_and_passing_fixture() {
    let all = rules::all();
    assert!(all.len() >= 6, "rule set shrank: {}", all.len());
    for rule in &all {
        let dir = fixture_dir(rule.id());
        let bad = dir.join("bad.rs");
        let good = dir.join("good.rs");
        assert!(
            bad.is_file() && good.is_file(),
            "rule `{}` is missing its fixture pair under {}",
            rule.id(),
            dir.display()
        );

        let bad_findings = lint_file_with_rule(&bad, &neutral_rel(rule.id(), "bad.rs"), rule.id());
        assert!(
            !bad_findings.is_empty(),
            "rule `{}` produced no findings on its bad fixture — it can't fail",
            rule.id()
        );
        for f in &bad_findings {
            assert_eq!(f.rule, rule.id());
            assert!(f.line > 0, "finding without a line: {f}");
        }

        let good_findings =
            lint_file_with_rule(&good, &neutral_rel(rule.id(), "good.rs"), rule.id());
        assert!(
            good_findings.is_empty(),
            "rule `{}` false-positives on its good fixture:\n{}",
            rule.id(),
            good_findings
                .iter()
                .map(|f| format!("  {f}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// No orphan fixture directories: a deleted rule takes its fixtures
/// with it (otherwise they rot silently).
#[test]
fn no_orphan_fixture_dirs() {
    let ids: Vec<&str> = rules::all().iter().map(|r| r.id()).collect();
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for entry in std::fs::read_dir(&root).expect("fixtures dir") {
        let name = entry.expect("entry").file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(
            ids.contains(&name.as_str()),
            "fixture dir `{name}` matches no registered rule"
        );
    }
}

/// The bad fixtures double as precision checks: each finding lands on
/// the line the fixture comments mark with "flagged".
#[test]
fn findings_land_on_the_marked_lines() {
    for rule in rules::all() {
        let bad = fixture_dir(rule.id()).join("bad.rs");
        let text = std::fs::read_to_string(&bad).expect("bad fixture readable");
        let marked: Vec<u32> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("// flagged"))
            .map(|(i, _)| (i + 1) as u32)
            .collect();
        if marked.is_empty() {
            continue; // fixture marks nothing line-precisely (multi-line shapes)
        }
        let found: Vec<u32> =
            lint_file_with_rule(&bad, &neutral_rel(rule.id(), "bad.rs"), rule.id())
                .iter()
                .map(|f| f.line)
                .collect();
        for m in &marked {
            assert!(
                found.contains(m),
                "rule `{}`: marked line {m} not flagged (found: {found:?})",
                rule.id()
            );
        }
    }
}
