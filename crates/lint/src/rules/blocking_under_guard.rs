//! Rule `blocking-under-guard`: no blocking call while a `tdp-sync`
//! guard is live in the same block.
//!
//! A channel send/recv, socket write, sleep, park or thread join under
//! a held lock turns local backpressure into a lock-holder stall: every
//! other thread touching that lock now waits on the slow peer too — the
//! exact shape of PR 1's attrspace send-under-clients-lock bug and two
//! of the three loom-found flow races. Condvar waits are exempt (they
//! atomically release the guard), and `try_*` variants never block.
//!
//! Detection is lexical: a statement of the form `let g = expr.lock();`
//! (or `.read()` / `.write()` with *empty* argument lists, which is
//! what disambiguates RwLock from `io::Read`/`io::Write`) starts a
//! guard scope that runs to the enclosing block's `}` or an explicit
//! `drop(g)`. A leading `*`/copy-out (`let v = *m.lock();`) is not a
//! guard — the temporary dies at the semicolon.

use super::{Rule, SourceFile};
use crate::diag::Finding;
use crate::lexer::{seq, Kind, Tok};

pub struct BlockingUnderGuard;

/// Token sequences that block the calling thread. `.join()`, `.flush()`
/// and `.accept()` require empty argument lists so `Path::join(x)` and
/// friends stay legal.
const BLOCKING: &[(&[&str], &str)] = &[
    (&[".", "send", "("], "channel send"),
    (&[".", "send_timeout", "("], "channel send"),
    (&[".", "recv", "("], "channel recv"),
    (&[".", "recv_timeout", "("], "channel recv"),
    (&[".", "join", "(", ")"], "thread join"),
    (&[".", "flush", "(", ")"], "I/O flush"),
    (&[".", "accept", "(", ")"], "socket accept"),
    (&[".", "write_all", "("], "blocking write"),
    (&[".", "read_exact", "("], "blocking read"),
    (&["thread", "::", "sleep"], "sleep"),
    (&["thread", "::", "park"], "park"),
    (&["park_timeout", "("], "park"),
    (&["writev_fd", "("], "writev syscall"),
    (&["poll_readable", "("], "poll syscall"),
    (&["TcpStream", "::", "connect"], "socket connect"),
];

impl Rule for BlockingUnderGuard {
    fn id(&self) -> &'static str {
        "blocking-under-guard"
    }

    fn explain(&self) -> &'static str {
        "no blocking call (send/recv/write/park/sleep/syscall shim) while a tdp-sync guard is live"
    }

    fn check(&self, f: &SourceFile) -> Vec<Finding> {
        let toks = &f.toks;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            if !toks[i].is_ident("let") {
                continue;
            }
            let Some((name, stmt_end)) = guard_binding(toks, i) else {
                continue;
            };
            let block_end = enclosing_block_end(toks, stmt_end);
            let mut j = stmt_end;
            while j < block_end {
                // `drop(name)` ends the guard's liveness early.
                if seq(toks, j, &["drop", "(", &name, ")"]) {
                    break;
                }
                // A closure handed to `spawn(…)` runs on the *new*
                // thread, never under this guard — skip its body.
                if seq(toks, j, &["spawn", "("]) {
                    j = crate::lexer::matching_close(toks, j + 1) + 1;
                    continue;
                }
                if let Some(what) = blocking_at(toks, j) {
                    out.push(Finding {
                        rule: self.id(),
                        path: f.path.clone(),
                        line: toks[j].line,
                        msg: format!(
                            "{what} while tdp-sync guard `{name}` (taken on line {}) is live; \
                             copy the data out and drop the guard first",
                            toks[i].line
                        ),
                    });
                }
                j += 1;
            }
        }
        out
    }
}

/// Is the `let` at `i` a guard binding? Returns the bound name and the
/// index just past the statement's `;`.
fn guard_binding(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut k = i + 1;
    if toks.get(k).map(|t| t.is_ident("mut")).unwrap_or(false) {
        k += 1;
    }
    let name = toks.get(k).filter(|t| t.kind == Kind::Ident)?.text.clone();
    // Destructuring patterns and `let Some(g) = …` shapes are skipped —
    // the next token of a plain binding is `=` (or `:` for a typed
    // one, which we also accept by scanning to `=` without leaving the
    // statement).
    let mut eq = k + 1;
    while eq < toks.len() && !toks[eq].is("=") {
        if toks[eq].is(";") || toks[eq].is("(") || toks[eq].is("{") {
            return None;
        }
        eq += 1;
    }
    // A deref/copy-out init (`let v = *m.lock();`) takes no guard.
    if toks.get(eq + 1).map(|t| t.is("*")).unwrap_or(false) {
        return None;
    }
    // Find the `;` ending the statement (brackets counted jointly).
    let mut depth = 0usize;
    let mut j = eq + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth = depth.saturating_sub(1),
            ";" if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    // The initializer must *end* with `.lock()` / `.read()` / `.write()`
    // — an empty-arg facade acquisition, not a method chained past the
    // guard (`m.lock().len()` drops the temporary at the `;`).
    let tail_ok = j >= 4
        && toks[j - 4].is(".")
        && toks[j - 2].is("(")
        && toks[j - 1].is(")")
        && matches!(toks[j - 3].text.as_str(), "lock" | "read" | "write");
    tail_ok.then_some((name, j + 1))
}

/// Index of the `}` closing the block that position `from` sits in.
fn enclosing_block_end(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0usize;
    let mut j = from;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

fn blocking_at(toks: &[Tok], j: usize) -> Option<&'static str> {
    BLOCKING
        .iter()
        .find(|(pat, _)| seq(toks, j, pat))
        .map(|&(_, what)| what)
}
