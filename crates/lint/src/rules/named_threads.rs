//! Rule `named-threads`: every runtime thread is born named.
//!
//! `thread::Builder::new().name(…)` instead of bare `thread::spawn` —
//! a panic message, a TSan report, a debugger thread list or an
//! `/proc/<pid>/task` dump that says `wire-epoll-2-1` instead of
//! `<unnamed>` is the difference between a bug report and an
//! archaeology project. The chaos soak and the 500-session wire soak
//! both assert on thread *names*, so unnamed threads also escape those
//! leak checks. `loom::thread::spawn` is exempt: the model checker
//! names its schedules itself.

use super::{Rule, SourceFile};
use crate::diag::Finding;
use crate::lexer::seq;

pub struct NamedThreads;

impl Rule for NamedThreads {
    fn id(&self) -> &'static str {
        "named-threads"
    }

    fn explain(&self) -> &'static str {
        "no bare thread::spawn — use thread::Builder::new().name(…).spawn(…)"
    }

    fn check(&self, f: &SourceFile) -> Vec<Finding> {
        let toks = &f.toks;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            if seq(toks, i, &["thread", "::", "spawn"]) {
                let looms = i >= 2 && toks[i - 1].is("::") && toks[i - 2].is_ident("loom");
                if !looms {
                    out.push(Finding {
                        rule: self.id(),
                        path: f.path.clone(),
                        line: toks[i].line,
                        msg: "bare `thread::spawn`; use `thread::Builder::new().name(…)` so \
                              panics, sanitizer reports and thread-leak asserts can name it"
                            .into(),
                    });
                }
            }
        }
        out
    }
}
