//! The rule registry: one invariant per file, mirroring the gateway's
//! one-tool-one-file layout. Adding a rule = one new module here plus a
//! fixture pair under `tests/fixtures/<rule-id>/` (the harness test
//! fails if either half is missing).

use crate::diag::Finding;
use crate::lexer::Tok;

mod blocking_under_guard;
mod ffi_errno_check;
mod lock_outside_sync;
mod named_threads;
mod pooledbuf_escape;
mod unbounded_channel;

/// A source file ready for checking: workspace-relative path plus the
/// token stream with test-gated items stripped.
pub struct SourceFile {
    pub path: String,
    pub toks: Vec<Tok>,
}

pub trait Rule {
    /// Stable kebab-case id; doubles as the fixture directory name and
    /// the allowlist key.
    fn id(&self) -> &'static str;
    /// One-line statement of the invariant, shown by `--list-rules`.
    fn explain(&self) -> &'static str;
    fn check(&self, f: &SourceFile) -> Vec<Finding>;
}

pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(lock_outside_sync::LockOutsideSync),
        Box::new(blocking_under_guard::BlockingUnderGuard),
        Box::new(unbounded_channel::UnboundedChannel),
        Box::new(named_threads::NamedThreads),
        Box::new(pooledbuf_escape::PooledBufEscape),
        Box::new(ffi_errno_check::FfiErrnoCheck),
    ]
}
