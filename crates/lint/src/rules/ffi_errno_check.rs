//! Rule `ffi-errno-check`: every raw FFI call's return value is
//! checked.
//!
//! Applies to any file declaring an `extern "C"` block (in this tree:
//! `crates/wire/src/sys.rs`, the lone unsafe crate's syscall shim).
//! Each call to a declared foreign function must show evidence of a
//! result check *near the call* — wrapped in `cvt`/`cvt_size`, compared
//! against 0/-1, or feeding `last_os_error` — within the same statement
//! or the two following ones. A syscall whose failure is consciously
//! ignorable still has to write the check down (see `EventFd::signal`:
//! EAGAIN on a saturated counter is fine *because the fd stays
//! readable*, and the code now says so in executable form).

use super::{Rule, SourceFile};
use crate::diag::Finding;
use crate::lexer::{seq, Kind, Tok};

pub struct FfiErrnoCheck;

impl Rule for FfiErrnoCheck {
    fn id(&self) -> &'static str {
        "ffi-errno-check"
    }

    fn explain(&self) -> &'static str {
        "every extern \"C\" call's return feeds cvt/last_os_error or a 0/-1 comparison nearby"
    }

    fn check(&self, f: &SourceFile) -> Vec<Finding> {
        let toks = &f.toks;
        let foreign = declared_foreign_fns(toks);
        if foreign.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != Kind::Ident || !foreign.iter().any(|n| n == &t.text) {
                continue;
            }
            if !toks.get(i + 1).map(|t| t.is("(")).unwrap_or(false) {
                continue;
            }
            // Skip the declaration itself (`fn name(…)`) and paths like
            // `Self::name(` that would be wrappers, not raw calls.
            if i >= 1 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_ident("pub")) {
                continue;
            }
            if !checked_nearby(toks, i) {
                out.push(Finding {
                    rule: self.id(),
                    path: f.path.clone(),
                    line: t.line,
                    msg: format!(
                        "unsafe FFI call `{}` without a nearby return/errno check \
                         (cvt/last_os_error or a 0/-1 comparison)",
                        t.text
                    ),
                });
            }
        }
        out
    }
}

/// Names declared inside `extern "C" { … }` blocks.
fn declared_foreign_fns(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("extern")
            && toks.get(i + 1).map(|t| t.is("\"C\"")).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is("{")).unwrap_or(false))
        {
            continue;
        }
        let close = crate::lexer::matching_close(toks, i + 2);
        let mut j = i + 3;
        while j + 1 < close {
            if toks[j].is_ident("fn") && toks[j + 1].kind == Kind::Ident {
                out.push(toks[j + 1].text.clone());
            }
            j += 1;
        }
    }
    out
}

/// Look for check evidence inside the call's *evidence window*: from
/// the start of the enclosing statement (treating `unsafe {` braces as
/// transparent, since calls arrive as `cvt(unsafe { … })`) to the end
/// of the following statement or the enclosing block, whichever comes
/// first.
fn checked_nearby(toks: &[Tok], call: usize) -> bool {
    let (start, end) = evidence_window(toks, call);
    let w = &toks[start..end.min(toks.len())];
    for k in 0..w.len() {
        let t = &w[k];
        if t.is_ident("cvt") || t.is_ident("cvt_size") || t.is_ident("last_os_error") {
            return true;
        }
        if (t.is("<") || t.is(">=") || t.is("<=") || t.is(">"))
            && w.get(k + 1).map(|n| n.is("0")).unwrap_or(false)
        {
            return true;
        }
        if seq(w, k, &["==", "-", "1"]) || seq(w, k, &["!=", "-", "1"]) || seq(w, k, &["==", "0"]) {
            return true;
        }
    }
    false
}

/// (start, end) token indices bracketing the call's statement plus the
/// next one. Walking backwards, an `unsafe {` open is transparent (and
/// counted); walking forwards, the counted opens give the call's brace
/// depth so `;` terminators are only recognized at statement level and
/// the scan stops when the enclosing block closes.
fn evidence_window(toks: &[Tok], call: usize) -> (usize, usize) {
    let mut unsafe_depth = 0isize;
    let mut j = call;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is(";") || t.is("}") {
            break;
        }
        if t.is("{") {
            if j >= 2 && toks[j - 2].is_ident("unsafe") {
                unsafe_depth += 1;
                j -= 2;
                continue;
            }
            break;
        }
        j -= 1;
    }
    let start = j;
    let mut depth = unsafe_depth;
    let mut semis = 0usize;
    let mut j = call;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            ";" if depth <= 0 => {
                semis += 1;
                if semis == 2 {
                    j += 1;
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    (start, j + 1)
}
