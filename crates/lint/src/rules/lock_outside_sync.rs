//! Rule `lock-outside-sync`: every lock comes from the `tdp-sync`
//! facade.
//!
//! Naming `parking_lot` or `std::sync::{Mutex, RwLock, Condvar,
//! Barrier, Once, OnceLock}` anywhere outside `crates/sync` bypasses
//! the facade — which means the lock silently drops out of loom model
//! checking and lockdep order verification. `std::sync::{Arc, Weak,
//! atomic, mpsc}` stay legal: they are not blocking locks (unbounded
//! `mpsc` channels are the `unbounded-channel` rule's business).

use super::{Rule, SourceFile};
use crate::diag::Finding;
use crate::lexer::{seq, Kind};

const BANNED_STD: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "Once", "OnceLock"];

pub struct LockOutsideSync;

impl Rule for LockOutsideSync {
    fn id(&self) -> &'static str {
        "lock-outside-sync"
    }

    fn explain(&self) -> &'static str {
        "no std::sync/parking_lot lock types outside crates/sync — use the tdp-sync facade"
    }

    fn check(&self, f: &SourceFile) -> Vec<Finding> {
        if f.path.starts_with("crates/sync/") {
            return Vec::new();
        }
        let toks = &f.toks;
        let mut out = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.is_ident("parking_lot") {
                out.push(Finding {
                    rule: self.id(),
                    path: f.path.clone(),
                    line: t.line,
                    msg: "direct `parking_lot` use; take locks from the tdp-sync facade so \
                          they stay visible to loom and lockdep"
                        .into(),
                });
            } else if seq(toks, i, &["std", "::", "sync", "::"]) {
                // `std::sync::Mutex` or `use std::sync::{.., Mutex, ..}`.
                let rest = &toks[i + 4..];
                let flagged: Vec<_> = if rest.first().map(|t| t.is("{")).unwrap_or(false) {
                    let close = crate::lexer::matching_close(rest, 0);
                    rest[..close.min(rest.len())]
                        .iter()
                        .filter(|t| t.kind == Kind::Ident && BANNED_STD.contains(&t.text.as_str()))
                        .collect()
                } else {
                    rest.iter()
                        .take(1)
                        .filter(|t| t.kind == Kind::Ident && BANNED_STD.contains(&t.text.as_str()))
                        .collect()
                };
                for b in flagged {
                    out.push(Finding {
                        rule: self.id(),
                        path: f.path.clone(),
                        line: b.line,
                        msg: format!(
                            "`std::sync::{}` outside crates/sync; use the tdp-sync facade",
                            b.text
                        ),
                    });
                }
            }
        }
        out
    }
}
