//! Rule `pooledbuf-escape`: `PooledBuf` has exactly one release path.
//!
//! The wire buffer pool's accounting (loom model
//! `loom_buffer_pool_stall_kill_vs_drain`) rests on `PooledBuf::drop`
//! being the *only* way a buffer returns — `mem::forget` strands the
//! buffer (pool shrinks forever), and an `into_inner`-style extraction
//! would let the bytes outlive the recycling contract. Both are
//! therefore banned in any file that touches `PooledBuf`, except the
//! pool's own implementation (`crates/wire/src/pool.rs`).

use super::{Rule, SourceFile};
use crate::diag::Finding;
use crate::lexer::seq;

pub struct PooledBufEscape;

impl Rule for PooledBufEscape {
    fn id(&self) -> &'static str {
        "pooledbuf-escape"
    }

    fn explain(&self) -> &'static str {
        "no mem::forget / into_inner in files touching PooledBuf outside crates/wire/src/pool.rs"
    }

    fn check(&self, f: &SourceFile) -> Vec<Finding> {
        if f.path.ends_with("wire/src/pool.rs") {
            return Vec::new();
        }
        let toks = &f.toks;
        if !toks.iter().any(|t| t.is_ident("PooledBuf")) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..toks.len() {
            let bad = if seq(toks, i, &["mem", "::", "forget"]) {
                Some("`mem::forget` would strand a pooled buffer (Drop is the only release path)")
            } else if seq(toks, i, &[".", "into_inner", "("]) {
                Some("`into_inner` would let pooled bytes escape the recycling contract")
            } else {
                None
            };
            if let Some(msg) = bad {
                out.push(Finding {
                    rule: self.id(),
                    path: f.path.clone(),
                    line: toks[i].line,
                    msg: msg.into(),
                });
            }
        }
        out
    }
}
