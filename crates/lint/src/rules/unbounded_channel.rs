//! Rule `unbounded-channel`: every channel carries a capacity.
//!
//! An unbounded queue hides a missing backpressure decision: a slow
//! consumer grows it until the process dies somewhere unrelated.
//! Everything on the runtime path uses `crossbeam::channel::bounded`
//! (DESIGN.md §8); `std::sync::mpsc::channel` is banned for the same
//! reason (and because it bypasses the crossbeam shim entirely). A
//! queue that is *provably* bounded by construction can be allowlisted
//! with the reasoning recorded in `lint.allow`.

use super::{Rule, SourceFile};
use crate::diag::Finding;
use crate::lexer::seq;

pub struct UnboundedChannel;

impl Rule for UnboundedChannel {
    fn id(&self) -> &'static str {
        "unbounded-channel"
    }

    fn explain(&self) -> &'static str {
        "no unbounded()/mpsc::channel() — use crossbeam::channel::bounded(cap)"
    }

    fn check(&self, f: &SourceFile) -> Vec<Finding> {
        let toks = &f.toks;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            // `unbounded()` or turbofish `unbounded::<T>()`; a bare
            // `use …::unbounded;` import or an `fn unbounded` decl
            // (the crossbeam shim) is not a construction.
            let call_unbounded = toks[i].is_ident("unbounded")
                && toks
                    .get(i + 1)
                    .map(|t| t.is("(") || t.is("::"))
                    .unwrap_or(false)
                && !toks
                    .get(i.wrapping_sub(1))
                    .map(|t| t.is_ident("fn"))
                    .unwrap_or(false);
            if call_unbounded {
                out.push(Finding {
                    rule: self.id(),
                    path: f.path.clone(),
                    line: toks[i].line,
                    msg: "unbounded channel; pick a capacity (`bounded(cap)`) or allowlist \
                          with the boundedness argument"
                        .into(),
                });
            } else if seq(toks, i, &["mpsc", "::", "channel"]) {
                out.push(Finding {
                    rule: self.id(),
                    path: f.path.clone(),
                    line: toks[i].line,
                    msg: "std::sync::mpsc::channel is unbounded; use crossbeam::channel::bounded"
                        .into(),
                });
            }
        }
        out
    }
}
