//! A minimal Rust lexer: just enough tokenization to walk source for
//! invariant checks without a full parser.
//!
//! Comments vanish, string/char literals become opaque [`Kind::Lit`]
//! tokens (so a banned identifier inside a string never matches), and
//! `::` is fused into a single punct token because every rule matches
//! on paths. Everything else — keywords included — is an ident or a
//! one-character punct. Line numbers are tracked for diagnostics.
//!
//! [`strip_test_code`] additionally drops items gated behind
//! `#[cfg(test)]` / `#[cfg(loom)]` / `#[test]`: the invariants bind
//! *shipped* runtime code, while test bodies are exercised by loom and
//! TSan instead (DESIGN.md §12). The stripper is conservative — any
//! `not(...)` in the predicate keeps the item, so `#[cfg(not(loom))]`
//! runtime code is always linted.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Ident,
    Punct,
    Lit,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unrecognized bytes become one-char
/// puncts, and unterminated literals simply run to end of file —
/// garbage in, best-effort tokens out, which is the right trade for a
/// linter that must not crash on the code it polices.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                // Keep the quoted text: a rule can match an exact
                // literal (e.g. the `"C"` ABI), while the surrounding
                // quotes guarantee string *contents* never collide with
                // an ident pattern.
                let start = line;
                let from = i;
                i = skip_string(&b, i, &mut line);
                out.push(Tok {
                    kind: Kind::Lit,
                    text: b[from..i.min(b.len())].iter().collect(),
                    line: start,
                });
            }
            '\'' => {
                // Char literal or lifetime. `'a'` / `'\n'` are chars;
                // `'a` followed by a non-quote is a lifetime.
                if b.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: skip to closing quote.
                    let start = line;
                    let mut j = i + 2;
                    while j < b.len() && b[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                    out.push(Tok {
                        kind: Kind::Lit,
                        text: String::from("'\\…'"),
                        line: start,
                    });
                } else if b.get(i + 1) != Some(&'\'') && b.get(i + 2) == Some(&'\'') {
                    // Any single-char literal: 'a', '"', '{', …
                    out.push(Tok {
                        kind: Kind::Lit,
                        text: b[i..=i + 2].iter().collect(),
                        line,
                    });
                    i += 3;
                } else {
                    // Lifetime: consume `'ident`.
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    out.push(Tok {
                        kind: Kind::Lit,
                        text: b[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let start = line;
                i = skip_raw_or_byte_string(&b, i, &mut line);
                out.push(Tok {
                    kind: Kind::Lit,
                    text: String::from("\"…\""),
                    line: start,
                });
            }
            _ if is_ident_start(c) => {
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                out.push(Tok {
                    kind: Kind::Ident,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() && (is_ident_continue(b[j])) {
                    j += 1;
                }
                out.push(Tok {
                    kind: Kind::Lit,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            ':' if b.get(i + 1) == Some(&':') => {
                out.push(Tok {
                    kind: Kind::Punct,
                    text: String::from("::"),
                    line,
                });
                i += 2;
            }
            _ => {
                out.push(Tok {
                    kind: Kind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skip a `"…"` string starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Does `r`/`b` at `i` begin a raw string (`r"`, `r#"`), byte string
/// (`b"`), byte char (`b'`), or raw byte string (`br"`, `br#"`)?
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if b.get(j) == Some(&'\'') {
            return true; // byte char
        }
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
    }
    b.get(j) == Some(&'"') && j > i
}

fn skip_raw_or_byte_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    if b[i] == 'b' {
        i += 1;
        if b.get(i) == Some(&'\'') {
            // Byte char literal: b'x' or b'\n'.
            i += 1;
            if b.get(i) == Some(&'\\') {
                i += 1;
            }
            while i < b.len() && b[i] != '\'' {
                i += 1;
            }
            return i + 1;
        }
    }
    let mut hashes = 0usize;
    if b.get(i) == Some(&'r') {
        i += 1;
        while b.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
        debug_assert_eq!(b.get(i), Some(&'"'));
        i += 1;
        // Raw string: ends at `"` followed by `hashes` hash marks.
        while i < b.len() {
            if b[i] == '\n' {
                *line += 1;
            }
            if b[i] == '"'
                && b[i + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == '#')
                    .count()
                    == hashes
            {
                return i + 1 + hashes;
            }
            i += 1;
        }
        i
    } else {
        // Plain byte string b"…": escapes as in normal strings.
        skip_string(b, i, line)
    }
}

/// Find the matching close for the opener at `open` (`[`/`]`, `(`/`)`,
/// `{`/`}` — counted jointly so mixed nesting works). Returns the index
/// of the closing token, or `toks.len()` if unbalanced.
pub fn matching_close(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "[" | "(" | "{" => depth += 1,
                "]" | ")" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len()
}

/// Does this attribute body (the tokens between `#[` and `]`) gate
/// test-only or loom-only code? True when `test`/`loom` appears
/// *outside* any `not(…)` group: `cfg(all(test, not(loom)))` gates
/// test code, `cfg(not(loom))` gates runtime code.
fn gates_test_code(attr: &[Tok]) -> bool {
    let mut i = 0;
    while i < attr.len() {
        let t = &attr[i];
        if t.is_ident("not") && attr.get(i + 1).map(|n| n.is("(")).unwrap_or(false) {
            i = matching_close(attr, i + 1) + 1;
            continue;
        }
        if t.is_ident("test") || t.is_ident("loom") {
            return true;
        }
        i += 1;
    }
    false
}

/// Drop items gated behind `#[cfg(test)]` / `#[cfg(loom)]` / `#[test]`
/// from the token stream (see module docs for why).
pub fn strip_test_code(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is("#") && toks.get(i + 1).map(|t| t.is("[")).unwrap_or(false) {
            let close = matching_close(toks, i + 1);
            if close < toks.len() && gates_test_code(&toks[i + 2..close]) {
                i = skip_attrs_and_item(toks, close + 1);
                continue;
            }
            // Keep the attribute itself (it is inert for the rules).
            out.extend_from_slice(&toks[i..=close.min(toks.len() - 1)]);
            i = close + 1;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Starting just past a stripped attribute, skip any further attributes
/// and then the single item they decorate: up to a `;` at depth 0, or
/// through the matching `}` of the item's body.
fn skip_attrs_and_item(toks: &[Tok], mut i: usize) -> usize {
    // Further attributes on the same item.
    while i < toks.len() && toks[i].is("#") && toks.get(i + 1).map(|t| t.is("[")).unwrap_or(false) {
        i = matching_close(toks, i + 1) + 1;
    }
    let mut depth = 0usize;
    let mut in_body = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                "{" => {
                    if depth == 0 {
                        in_body = true;
                    }
                    depth += 1;
                }
                ")" | "]" => depth = depth.saturating_sub(1),
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 && in_body {
                        return i + 1;
                    }
                }
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// True when `toks[i..]` begins with exactly the texts in `pat`.
pub fn seq(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.len() <= toks.len().saturating_sub(i)
        && pat.iter().zip(&toks[i..]).all(|(p, t)| t.text == *p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_paths_and_strings() {
        let t = texts(r#"use std::sync::Mutex; let s = "parking_lot";"#);
        assert!(t.contains(&"Mutex".to_string()));
        assert!(t.contains(&"::".to_string()));
        // The banned name inside a string literal is opaque.
        assert!(!t.contains(&"parking_lot".to_string()));
    }

    #[test]
    fn comments_and_lifetimes_vanish() {
        let t = texts("// parking_lot\n/* thread::spawn /* nested */ */ fn f<'a>(x: &'a u8) {}");
        assert!(!t.contains(&"parking_lot".to_string()));
        assert!(!t.contains(&"spawn".to_string()));
        assert!(t.contains(&"fn".to_string()));
    }

    #[test]
    fn raw_strings_are_opaque() {
        let t = texts(r##"let s = r#"thread::spawn("unbounded")"#; done()"##);
        assert!(!t.contains(&"spawn".to_string()));
        assert!(t.contains(&"done".to_string()));
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let t = texts("let c = 'x'; let n = '\\n'; spawn()");
        assert!(t.contains(&"spawn".to_string()));
    }

    #[test]
    fn quote_char_literal_does_not_open_a_string() {
        // A `'"'` char literal must not start string mode — that would
        // desync the lexer for the rest of the file.
        let t = texts("let q = '\"'; real_ident()");
        assert!(t.contains(&"real_ident".to_string()));
        let t = texts("assert_eq!(b.get(i), Some(&'\"')); after()");
        assert!(t.contains(&"after".to_string()));
    }

    #[test]
    fn strip_removes_cfg_test_items() {
        let src = "fn live() { a(); } #[cfg(test)] mod tests { fn t() { banned(); } } fn more() {}";
        let stripped = strip_test_code(&lex(src));
        let t: Vec<_> = stripped.iter().map(|t| t.text.as_str()).collect();
        assert!(t.contains(&"live"));
        assert!(t.contains(&"more"));
        assert!(!t.contains(&"banned"));
    }

    #[test]
    fn strip_keeps_cfg_not_loom() {
        let src = "#[cfg(not(loom))] fn runtime() { banned(); }";
        let stripped = strip_test_code(&lex(src));
        assert!(stripped.iter().any(|t| t.is_ident("banned")));
    }

    #[test]
    fn strip_drops_test_even_with_inner_not() {
        let src = "#[cfg(all(test, not(loom)))] mod tests { fn t() { banned(); } }";
        let stripped = strip_test_code(&lex(src));
        assert!(!stripped.iter().any(|t| t.is_ident("banned")));
    }

    #[test]
    fn strip_handles_semicolon_items_and_stacked_attrs() {
        let src = "#[cfg(test)] use foo::banned; #[test] #[ignore] fn t() { bad() } fn keep() {}";
        let stripped = strip_test_code(&lex(src));
        let t: Vec<_> = stripped.iter().map(|t| t.text.as_str()).collect();
        assert!(!t.contains(&"banned"));
        assert!(!t.contains(&"bad"));
        assert!(t.contains(&"keep"));
    }
}
