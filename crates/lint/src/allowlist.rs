//! The explicit allowlist: `lint.allow` at the workspace root.
//!
//! One entry per line:
//!
//! ```text
//! <rule-id> <path> — <reason>
//! ```
//!
//! `path` is workspace-relative; a trailing `/` allows a whole
//! directory. Blank lines and `#` comments are ignored. Policy
//! (DESIGN.md §12): every entry carries a reason, entries name the
//! narrowest path that works, and an entry that no longer suppresses
//! anything is reported by `tdp-lint` so the list cannot rot.

use crate::diag::Finding;

#[derive(Debug, Clone)]
pub struct Entry {
    pub rule: String,
    pub path: String,
    pub line: u32,
}

#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<Entry>,
}

impl Allowlist {
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(rule), Some(path)) = (parts.next(), parts.next()) {
                entries.push(Entry {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    line: n as u32 + 1,
                });
            }
        }
        Allowlist { entries }
    }

    fn matches(e: &Entry, f: &Finding) -> bool {
        e.rule == f.rule
            && (f.path == e.path || (e.path.ends_with('/') && f.path.starts_with(&e.path)))
    }

    /// Split findings into (kept, suppressed) and report entries that
    /// suppressed nothing (stale — they should be deleted).
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>, Vec<&Entry>) {
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        let mut used = vec![false; self.entries.len()];
        for f in findings {
            match self.entries.iter().position(|e| Self::matches(e, &f)) {
                Some(k) => {
                    used[k] = true;
                    suppressed.push(f);
                }
                None => kept.push(f),
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(e, _)| e)
            .collect();
        (kept, suppressed, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            msg: String::new(),
        }
    }

    #[test]
    fn exact_and_dir_matches_and_stale() {
        let al = Allowlist::parse(
            "# comment\n\
             unbounded-channel crates/a/src/x.rs — reason\n\
             named-threads crates/b/src/ — whole dir\n\
             lock-outside-sync crates/gone.rs — stale\n",
        );
        let fs = vec![
            finding("unbounded-channel", "crates/a/src/x.rs"),
            finding("unbounded-channel", "crates/a/src/y.rs"),
            finding("named-threads", "crates/b/src/deep/z.rs"),
        ];
        let (kept, suppressed, stale) = al.apply(fs);
        assert_eq!(kept.len(), 1);
        assert_eq!(suppressed.len(), 2);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "lock-outside-sync");
    }
}
