//! Workspace file discovery.
//!
//! The lint walks *runtime* sources: `crates/*/src/**/*.rs` and the
//! root package's `src/**/*.rs`. Integration tests, benches and
//! examples are deliberately out of scope — the invariants bind shipped
//! code, and the test tree is covered by loom/TSan instead (DESIGN.md
//! §12). `stubs/` (the offline dependency shims that *implement* the
//! banned primitives) and `target/` are never visited.

use std::fs;
use std::path::{Path, PathBuf};

/// All lintable `.rs` files under `root`, as (absolute, workspace-
/// relative) pairs, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> Vec<(PathBuf, String)> {
    let mut out = Vec::new();
    if let Ok(crates) = fs::read_dir(root.join("crates")) {
        for c in crates.flatten() {
            collect_rs(&c.path().join("src"), &mut out);
        }
    }
    collect_rs(&root.join("src"), &mut out);
    let mut pairs: Vec<(PathBuf, String)> = out
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            (p, rel)
        })
        .collect();
    pairs.sort_by(|a, b| a.1.cmp(&b.1));
    pairs
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    for e in rd.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().map(|x| x == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
}
