//! `tdp-lint`: the workspace invariant linter.
//!
//! PR 5's loom models found three real races in code that *looked*
//! disciplined; the invariants those models guard (facade-only locking,
//! no blocking under a guard, single-owner `PooledBuf`, bounded
//! channels, named threads, checked FFI returns) were still enforced by
//! convention. This crate turns them into CI-gated errors *before* the
//! CASS-sharding and MRNet fan-in work multiplies the lock sites.
//!
//! There is no `syn` here — the build environment is offline (see
//! `stubs/README.md`) — so the walk is a token-level pass over a
//! hand-rolled lexer ([`lexer`]), the same trade the workspace already
//! makes in `stubs/serde_derive`. Rules are deliberately lexical and
//! conservative: each one matches a *shape* the codebase has agreed
//! never to write, and anything cleverer belongs in loom/TSan/lockdep,
//! not here. Escapes go through the explicit allowlist file
//! (`lint.allow`, [`allowlist`]) with a written reason, never through
//! silencing the rule.
//!
//! Layout mirrors the gateway's one-tool-one-file registry: one rule
//! per file under [`rules`], registered in `rules::all()`. See
//! DESIGN.md §12 for the rule catalog and the how-to-add-a-rule
//! walkthrough.

pub mod allowlist;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::fs;
use std::path::Path;

use diag::Finding;
use rules::SourceFile;

/// Lex + strip one file into checkable form. `rel` is the
/// workspace-relative path rules match against.
pub fn load_source(path: &Path, rel: &str) -> std::io::Result<SourceFile> {
    let text = fs::read_to_string(path)?;
    let toks = lexer::strip_test_code(&lexer::lex(&text));
    Ok(SourceFile {
        path: rel.to_string(),
        toks,
    })
}

/// Run every rule over every runtime source file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let rules = rules::all();
    let mut findings = Vec::new();
    for (abs, rel) in walk::workspace_files(root) {
        let src = load_source(&abs, &rel)?;
        for rule in &rules {
            findings.extend(rule.check(&src));
        }
    }
    Ok(findings)
}

/// Run a single rule (by id) over one file — the fixture harness's
/// entry point.
pub fn lint_file_with_rule(path: &Path, rel: &str, rule_id: &str) -> Vec<Finding> {
    let src = load_source(path, rel).expect("fixture readable");
    let rule = rules::all()
        .into_iter()
        .find(|r| r.id() == rule_id)
        .unwrap_or_else(|| panic!("no rule `{rule_id}`"));
    rule.check(&src)
}
