//! `tdp-lint` binary: walk the workspace, apply the rules, honor the
//! allowlist, exit non-zero on any finding (CI gates on this).
//!
//! ```text
//! cargo run -p tdp-lint              # lint the workspace
//! cargo run -p tdp-lint -- --list-rules
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use tdp_lint::{allowlist::Allowlist, lint_workspace, rules};

fn workspace_root() -> PathBuf {
    // Compiled location first (`crates/lint` → two levels up), so the
    // binary works regardless of the invoking directory; fall back to
    // ascending from cwd for a relocated checkout.
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(root) = compiled.ancestors().nth(2) {
        if root.join("Cargo.toml").exists() {
            return root.to_path_buf();
        }
    }
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            panic!("workspace root not found");
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-rules") {
        for r in rules::all() {
            println!("{:<22} {}", r.id(), r.explain());
        }
        return ExitCode::SUCCESS;
    }

    let root = workspace_root();
    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tdp-lint: walk failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let allow_text = std::fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    let allow = Allowlist::parse(&allow_text);
    let (kept, suppressed, stale) = allow.apply(findings);

    for f in &kept {
        println!("{f}");
    }
    for e in &stale {
        eprintln!(
            "tdp-lint: stale allowlist entry (lint.allow:{}): `{} {}` suppresses nothing — delete it",
            e.line, e.rule, e.path
        );
    }
    let nrules = rules::all().len();
    eprintln!(
        "tdp-lint: {} finding(s), {} allowlisted, {} stale allowlist entr{} ({} rules)",
        kept.len(),
        suppressed.len(),
        stale.len(),
        if stale.len() == 1 { "y" } else { "ies" },
        nrules,
    );
    if kept.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
