//! Findings: one violation at one source line.

use std::fmt;

#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `lock-outside-sync`.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}
