//! The pure attribute-space state machine.
//!
//! Every operation takes the calling client's id and returns the list of
//! replies to emit, as `(ClientId, Reply)` pairs — a blocked `get` emits
//! nothing now and a `Value` later, when some `put` satisfies it. The
//! networked server is a thin shell over this type; all protocol
//! invariants (context refcounting, waiter wake-up, one-shot
//! subscriptions, disconnect cleanup) live here where they can be unit-
//! and property-tested without threads.

use std::collections::HashMap;
use tdp_proto::attr::{validate_key, validate_value};
use tdp_proto::{ContextId, Reply, TdpError};

/// Server-local identity of a connected client.
pub type ClientId = u64;

/// A reply to route to a client.
pub type Out = (ClientId, Reply);

/// One context's state.
#[derive(Default)]
struct Ctx {
    attrs: HashMap<String, String>,
    /// Clients currently joined (refcount with identity, so a client
    /// crash can release exactly its own references).
    members: Vec<ClientId>,
    /// Parked blocking gets: key → waiters.
    waiters: HashMap<String, Vec<ClientId>>,
    /// One-shot subscriptions: key → (client, token).
    subs: HashMap<String, Vec<(ClientId, u64)>>,
}

/// The attribute space: a set of reference-counted contexts.
#[derive(Default)]
pub struct Space {
    contexts: HashMap<ContextId, Ctx>,
}

impl Space {
    pub fn new() -> Space {
        Space::default()
    }

    /// Number of live contexts (diagnostics).
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Is the client a member of the context?
    fn member(&self, client: ClientId, ctx: ContextId) -> Result<&Ctx, TdpError> {
        match self.contexts.get(&ctx) {
            Some(c) if c.members.contains(&client) => Ok(c),
            _ => Err(TdpError::NoSuchContext(ctx)),
        }
    }

    fn member_mut(&mut self, client: ClientId, ctx: ContextId) -> Result<&mut Ctx, TdpError> {
        match self.contexts.get_mut(&ctx) {
            Some(c) if c.members.contains(&client) => Ok(c),
            _ => Err(TdpError::NoSuchContext(ctx)),
        }
    }

    /// `tdp_init`: join (creating on first join) a context.
    pub fn join(&mut self, client: ClientId, ctx: ContextId) -> Vec<Out> {
        self.contexts.entry(ctx).or_default().members.push(client);
        vec![(client, Reply::Ok)]
    }

    /// `tdp_exit`: leave a context; the last leaver destroys it. Parked
    /// getters of a destroyed context receive an error (their daemon
    /// would otherwise hang forever on a dead space).
    pub fn leave(&mut self, client: ClientId, ctx: ContextId) -> Vec<Out> {
        let Some(c) = self.contexts.get_mut(&ctx) else {
            return vec![(client, Reply::Err(TdpError::NoSuchContext(ctx)))];
        };
        let Some(pos) = c.members.iter().position(|&m| m == client) else {
            return vec![(client, Reply::Err(TdpError::NoSuchContext(ctx)))];
        };
        c.members.remove(pos);
        let mut out = vec![(client, Reply::Ok)];
        if c.members.is_empty() {
            let c = self.contexts.remove(&ctx).expect("present");
            for (_key, ws) in c.waiters {
                for w in ws {
                    out.push((w, Reply::Err(TdpError::NoSuchContext(ctx))));
                }
            }
        }
        out
    }

    /// `tdp_put`: validate and store, waking blocked getters and firing
    /// (and consuming) subscriptions on the key.
    pub fn put(&mut self, client: ClientId, ctx: ContextId, key: &str, value: &str) -> Vec<Out> {
        if let Err(e) = validate_key(key) {
            return vec![(client, Reply::Err(e))];
        }
        if let Err(e) = validate_value(value) {
            return vec![(client, Reply::Err(e))];
        }
        let c = match self.member_mut(client, ctx) {
            Ok(c) => c,
            Err(e) => return vec![(client, Reply::Err(e))],
        };
        c.attrs.insert(key.to_string(), value.to_string());
        let mut out = vec![(client, Reply::Ok)];
        if let Some(waiters) = c.waiters.remove(key) {
            for w in waiters {
                out.push((
                    w,
                    Reply::Value {
                        key: key.to_string(),
                        value: value.to_string(),
                    },
                ));
            }
        }
        if let Some(subs) = c.subs.remove(key) {
            for (s, token) in subs {
                out.push((
                    s,
                    Reply::Notify {
                        token,
                        key: key.to_string(),
                        value: value.to_string(),
                    },
                ));
            }
        }
        out
    }

    /// `tdp_get`: return the value; when `blocking` and absent, park the
    /// caller (no reply now — a future put answers).
    pub fn get(&mut self, client: ClientId, ctx: ContextId, key: &str, blocking: bool) -> Vec<Out> {
        let c = match self.member_mut(client, ctx) {
            Ok(c) => c,
            Err(e) => return vec![(client, Reply::Err(e))],
        };
        if let Some(v) = c.attrs.get(key) {
            return vec![(
                client,
                Reply::Value {
                    key: key.to_string(),
                    value: v.clone(),
                },
            )];
        }
        if blocking {
            c.waiters.entry(key.to_string()).or_default().push(client);
            Vec::new()
        } else {
            vec![(
                client,
                Reply::Err(TdpError::AttributeNotFound(key.to_string())),
            )]
        }
    }

    /// Remove an attribute (succeeds even when absent).
    pub fn remove(&mut self, client: ClientId, ctx: ContextId, key: &str) -> Vec<Out> {
        match self.member_mut(client, ctx) {
            Ok(c) => {
                c.attrs.remove(key);
                vec![(client, Reply::Ok)]
            }
            Err(e) => vec![(client, Reply::Err(e))],
        }
    }

    /// One-shot subscription. With `only_future` false (the
    /// `tdp_async_get` case): if the key already has a value, notify
    /// immediately; otherwise notify on the next put. With it true the
    /// current value is skipped and only a subsequent put fires (used
    /// when persistent watches re-arm). Either way the subscription is
    /// consumed by its notification. The immediate `Ok` acknowledges
    /// registration (the `tdp_async_get` call returning).
    pub fn subscribe(
        &mut self,
        client: ClientId,
        ctx: ContextId,
        key: &str,
        token: u64,
        only_future: bool,
    ) -> Vec<Out> {
        let c = match self.member_mut(client, ctx) {
            Ok(c) => c,
            Err(e) => return vec![(client, Reply::Err(e))],
        };
        let mut out = vec![(client, Reply::Ok)];
        match c.attrs.get(key) {
            Some(v) if !only_future => {
                out.push((
                    client,
                    Reply::Notify {
                        token,
                        key: key.to_string(),
                        value: v.clone(),
                    },
                ));
            }
            _ => {
                c.subs
                    .entry(key.to_string())
                    .or_default()
                    .push((client, token));
            }
        }
        out
    }

    /// Cancel one of the client's pending subscriptions by token.
    pub fn unsubscribe(&mut self, client: ClientId, ctx: ContextId, token: u64) -> Vec<Out> {
        match self.member_mut(client, ctx) {
            Ok(c) => {
                for subs in c.subs.values_mut() {
                    subs.retain(|&(cl, t)| !(cl == client && t == token));
                }
                c.subs.retain(|_, v| !v.is_empty());
                vec![(client, Reply::Ok)]
            }
            Err(e) => vec![(client, Reply::Err(e))],
        }
    }

    /// Keys with the given prefix, sorted.
    pub fn list_keys(&mut self, client: ClientId, ctx: ContextId, prefix: &str) -> Vec<Out> {
        match self.member(client, ctx) {
            Ok(c) => {
                let mut keys: Vec<String> = c
                    .attrs
                    .keys()
                    .filter(|k| k.starts_with(prefix))
                    .cloned()
                    .collect();
                keys.sort();
                vec![(client, Reply::Keys(keys))]
            }
            Err(e) => vec![(client, Reply::Err(e))],
        }
    }

    /// A client's connection dropped: implicitly leave every joined
    /// context (a crashed daemon must not pin a context alive — §3.2's
    /// destroy-on-last-exit would otherwise never trigger), and discard
    /// its parked gets and subscriptions.
    pub fn disconnect(&mut self, client: ClientId) -> Vec<Out> {
        let mut out = Vec::new();
        let ctx_ids: Vec<ContextId> = self.contexts.keys().copied().collect();
        for id in ctx_ids {
            let c = self.contexts.get_mut(&id).expect("present");
            for ws in c.waiters.values_mut() {
                ws.retain(|&w| w != client);
            }
            c.waiters.retain(|_, v| !v.is_empty());
            for subs in c.subs.values_mut() {
                subs.retain(|&(cl, _)| cl != client);
            }
            c.subs.retain(|_, v| !v.is_empty());
            // Release every reference this client held (it may have
            // joined the same context more than once).
            while let Some(pos) = c.members.iter().position(|&m| m == client) {
                c.members.remove(pos);
            }
            if c.members.is_empty() {
                let c = self.contexts.remove(&id).expect("present");
                for (_key, ws) in c.waiters {
                    for w in ws {
                        out.push((w, Reply::Err(TdpError::NoSuchContext(id))));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX: ContextId = ContextId(1);
    const RM: ClientId = 10;
    const RT: ClientId = 20;

    fn joined() -> Space {
        let mut s = Space::new();
        s.join(RM, CTX);
        s.join(RT, CTX);
        s
    }

    #[test]
    fn put_then_get() {
        let mut s = joined();
        assert_eq!(s.put(RM, CTX, "pid", "42"), vec![(RM, Reply::Ok)]);
        assert_eq!(
            s.get(RT, CTX, "pid", false),
            vec![(
                RT,
                Reply::Value {
                    key: "pid".into(),
                    value: "42".into()
                }
            )]
        );
    }

    #[test]
    fn nonblocking_get_of_absent_attr_errors() {
        let mut s = joined();
        assert_eq!(
            s.get(RT, CTX, "pid", false),
            vec![(RT, Reply::Err(TdpError::AttributeNotFound("pid".into())))]
        );
    }

    #[test]
    fn blocking_get_parks_until_put() {
        // The Figure 6 Step 3 interaction: paradynd blocks on "pid"
        // until the starter puts it.
        let mut s = joined();
        assert!(
            s.get(RT, CTX, "pid", true).is_empty(),
            "must park, not reply"
        );
        let out = s.put(RM, CTX, "pid", "42");
        assert!(out.contains(&(RM, Reply::Ok)));
        assert!(out.contains(&(
            RT,
            Reply::Value {
                key: "pid".into(),
                value: "42".into()
            }
        )));
    }

    #[test]
    fn multiple_waiters_all_wake() {
        let mut s = joined();
        s.join(30, CTX);
        assert!(s.get(RT, CTX, "k", true).is_empty());
        assert!(s.get(30, CTX, "k", true).is_empty());
        let out = s.put(RM, CTX, "k", "v");
        let woken: Vec<ClientId> = out
            .iter()
            .filter(|(_, r)| matches!(r, Reply::Value { .. }))
            .map(|&(c, _)| c)
            .collect();
        assert_eq!(woken.len(), 2);
        assert!(woken.contains(&RT) && woken.contains(&30));
    }

    #[test]
    fn overwrite_updates_value() {
        let mut s = joined();
        s.put(RM, CTX, "k", "v1");
        s.put(RM, CTX, "k", "v2");
        assert_eq!(
            s.get(RT, CTX, "k", false),
            vec![(
                RT,
                Reply::Value {
                    key: "k".into(),
                    value: "v2".into()
                }
            )]
        );
    }

    #[test]
    fn remove_then_get_errors() {
        let mut s = joined();
        s.put(RM, CTX, "k", "v");
        assert_eq!(s.remove(RM, CTX, "k"), vec![(RM, Reply::Ok)]);
        assert!(matches!(s.get(RT, CTX, "k", false)[0].1, Reply::Err(_)));
        // Removing again is still Ok.
        assert_eq!(s.remove(RM, CTX, "k"), vec![(RM, Reply::Ok)]);
    }

    #[test]
    fn operations_require_membership() {
        let mut s = Space::new();
        s.join(RM, CTX);
        // RT never joined.
        assert!(matches!(
            s.put(RT, CTX, "k", "v")[0].1,
            Reply::Err(TdpError::NoSuchContext(_))
        ));
        assert!(matches!(s.get(RT, CTX, "k", false)[0].1, Reply::Err(_)));
        assert!(matches!(
            s.subscribe(RT, CTX, "k", 1, false)[0].1,
            Reply::Err(_)
        ));
    }

    #[test]
    fn contexts_are_isolated() {
        let mut s = Space::new();
        let (c1, c2) = (ContextId(1), ContextId(2));
        s.join(RM, c1);
        s.join(RM, c2);
        s.put(RM, c1, "k", "in-c1");
        assert!(matches!(s.get(RM, c2, "k", false)[0].1, Reply::Err(_)));
    }

    #[test]
    fn last_leave_destroys_context() {
        let mut s = joined();
        s.put(RM, CTX, "k", "v");
        s.leave(RT, CTX);
        assert_eq!(s.context_count(), 1);
        s.leave(RM, CTX);
        assert_eq!(s.context_count(), 0);
        // A rejoin sees a fresh, empty space.
        s.join(RM, CTX);
        assert!(matches!(s.get(RM, CTX, "k", false)[0].1, Reply::Err(_)));
    }

    #[test]
    fn destroying_context_fails_parked_getters() {
        let mut s = joined();
        assert!(s.get(RT, CTX, "never", true).is_empty());
        s.leave(RT, CTX); // RT leaves while still parked (bad client, but legal)
        let out = s.leave(RM, CTX);
        assert!(out.contains(&(RT, Reply::Err(TdpError::NoSuchContext(CTX)))));
    }

    #[test]
    fn leave_without_join_errors() {
        let mut s = Space::new();
        assert!(matches!(s.leave(RM, CTX)[0].1, Reply::Err(_)));
    }

    #[test]
    fn double_join_needs_double_leave() {
        // An RM managing several RTs may tdp_init the same context
        // twice; the space must survive one tdp_exit.
        let mut s = Space::new();
        s.join(RM, CTX);
        s.join(RM, CTX);
        s.leave(RM, CTX);
        assert_eq!(s.context_count(), 1);
        s.leave(RM, CTX);
        assert_eq!(s.context_count(), 0);
    }

    #[test]
    fn subscribe_fires_on_next_put_once() {
        let mut s = joined();
        let out = s.subscribe(RT, CTX, "status", 7, false);
        assert_eq!(out, vec![(RT, Reply::Ok)]);
        let out = s.put(RM, CTX, "status", "running");
        assert!(out.contains(&(
            RT,
            Reply::Notify {
                token: 7,
                key: "status".into(),
                value: "running".into()
            }
        )));
        // One-shot: second put does not notify.
        let out = s.put(RM, CTX, "status", "stopped");
        assert!(!out.iter().any(|(_, r)| matches!(r, Reply::Notify { .. })));
    }

    #[test]
    fn subscribe_to_existing_value_fires_immediately() {
        let mut s = joined();
        s.put(RM, CTX, "pid", "42");
        let out = s.subscribe(RT, CTX, "pid", 9, false);
        assert_eq!(out[0], (RT, Reply::Ok));
        assert_eq!(
            out[1],
            (
                RT,
                Reply::Notify {
                    token: 9,
                    key: "pid".into(),
                    value: "42".into()
                }
            )
        );
    }

    #[test]
    fn unsubscribe_cancels() {
        let mut s = joined();
        s.subscribe(RT, CTX, "k", 3, false);
        s.unsubscribe(RT, CTX, 3);
        let out = s.put(RM, CTX, "k", "v");
        assert!(!out.iter().any(|(_, r)| matches!(r, Reply::Notify { .. })));
    }

    #[test]
    fn list_keys_prefix_sorted() {
        let mut s = joined();
        s.put(RM, CTX, "mpi_rank_pid.1", "11");
        s.put(RM, CTX, "mpi_rank_pid.0", "10");
        s.put(RM, CTX, "other", "x");
        assert_eq!(
            s.list_keys(RT, CTX, "mpi_rank_pid."),
            vec![(
                RT,
                Reply::Keys(vec!["mpi_rank_pid.0".into(), "mpi_rank_pid.1".into()])
            )]
        );
    }

    #[test]
    fn put_validates_key_and_value() {
        let mut s = joined();
        assert!(matches!(
            s.put(RM, CTX, "", "v")[0].1,
            Reply::Err(TdpError::InvalidAttribute(_))
        ));
        assert!(matches!(
            s.put(RM, CTX, "k\0", "v")[0].1,
            Reply::Err(TdpError::InvalidAttribute(_))
        ));
        assert!(matches!(
            s.put(RM, CTX, "k", "v\0")[0].1,
            Reply::Err(TdpError::InvalidValue(_))
        ));
        // Empty value is legal.
        assert_eq!(s.put(RM, CTX, "k", ""), vec![(RM, Reply::Ok)]);
    }

    #[test]
    fn disconnect_releases_membership_and_waiters() {
        let mut s = joined();
        assert!(s.get(RT, CTX, "k", true).is_empty());
        s.disconnect(RT);
        // RT gone: its waiter must not receive the value later.
        let out = s.put(RM, CTX, "k", "v");
        assert_eq!(out, vec![(RM, Reply::Ok)]);
        // RM disconnect destroys the context.
        s.disconnect(RM);
        assert_eq!(s.context_count(), 0);
    }

    #[test]
    fn disconnect_of_nonmember_is_noop() {
        let mut s = joined();
        s.disconnect(999);
        assert_eq!(s.context_count(), 1);
    }
}
