//! The networked attribute-space server: LASS (one per execution host)
//! and CASS (one on the front-end host).
//!
//! The server speaks to clients through `tdp-wire`'s transport
//! abstraction, so the same code serves simulated-fabric connections
//! and real TCP sockets.

use crate::space::Space;
use std::collections::HashMap;
use std::thread;
use tdp_netsim::Network;
use tdp_proto::{Addr, HostId, Message, Reply, TdpError, TdpResult};
use tdp_sync::atomic::{AtomicU64, Ordering};
use tdp_sync::Arc;
use tdp_sync::Mutex;
use tdp_wire::{WireConn, WireListener, WireTx};

/// Which flavour of attribute-space server this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// Local Attribute Space Server: serves only clients on its own
    /// host ("a process … cannot access the LASS's of other nodes",
    /// §2.1). Started by the RM on each execution host.
    Local,
    /// Central Attribute Space Server: reachable from anywhere (subject
    /// to firewalls). Started by the RM front-end.
    Central,
}

struct Shared {
    space: Mutex<Space>,
    clients: Mutex<HashMap<u64, WireTx>>,
    next_client: AtomicU64,
}

/// A running LASS or CASS.
pub struct AttrSpaceServer {
    addr: Addr,
    kind: ServerKind,
    listener: WireListener,
    shared: Arc<Shared>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl AttrSpaceServer {
    /// Start a server on the simulated fabric at `(host, port)` (0 =
    /// ephemeral).
    pub fn spawn(net: &Network, host: HostId, port: u16, kind: ServerKind) -> TdpResult<Self> {
        let listener = net.listen(host, port)?;
        let addr = listener.local_addr();
        Self::spawn_wire(
            tdp_wire::sim::wrap_listener(net.clone(), listener),
            kind,
            addr,
        )
    }

    /// Start a server on an already-bound transport listener. `addr` is
    /// the *logical* address the server identifies as — for the netsim
    /// backend it equals the bind address; for the TCP backend the
    /// caller owns the logical→real mapping (see `tdp-core`).
    pub fn spawn_wire(listener: WireListener, kind: ServerKind, addr: Addr) -> TdpResult<Self> {
        let shared = Arc::new(Shared {
            space: Mutex::new(Space::new()),
            clients: Mutex::new(HashMap::new()),
            next_client: AtomicU64::new(1),
        });
        let sh = shared.clone();
        let lis = listener.clone();
        let accept_thread = thread::Builder::new()
            .name(format!("{kind:?}-{addr}"))
            .spawn(move || {
                while let Ok(conn) = lis.accept() {
                    // LASS locality rule. Host identity comes from the
                    // connection (netsim: the source address; TCP: the
                    // Hello handshake).
                    if kind == ServerKind::Local && conn.peer_host() != Some(addr.host) {
                        let _ = conn.send_msg(&Message::Reply(Reply::Err(TdpError::Substrate(
                            format!(
                                "LASS on {} rejects remote client {}",
                                addr.host,
                                conn.peer_endpoint()
                            ),
                        ))));
                        conn.close();
                        continue; // drop: peer sees error then EOF
                    }
                    let sh = sh.clone();
                    let client = sh.next_client.fetch_add(1, Ordering::Relaxed);
                    thread::Builder::new()
                        .name(format!("attrspace-client-{client}"))
                        .spawn(move || serve_client(sh, client, conn))
                        .expect("spawn client handler");
                }
            })
            .map_err(|e| TdpError::Substrate(format!("spawn accept thread: {e}")))?;
        Ok(AttrSpaceServer {
            addr,
            kind,
            listener,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// Logical address clients connect to.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Transport endpoint the server is actually bound on (differs from
    /// [`Self::addr`] for the TCP backend).
    pub fn endpoint(&self) -> tdp_wire::Endpoint {
        self.listener.local_endpoint()
    }

    /// Server flavour.
    pub fn kind(&self) -> ServerKind {
        self.kind
    }

    /// Live contexts (diagnostics / tests).
    pub fn context_count(&self) -> usize {
        self.shared.space.lock().context_count()
    }

    /// Live client sessions (the ops KPI plane samples this).
    pub fn client_count(&self) -> usize {
        self.shared.clients.lock().len()
    }

    /// Stop accepting new clients; existing sessions drain.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.listener.close();
        // Sever live sessions too: a crashed server leaves no half-open
        // clients behind (their next operation fails fast instead of
        // hanging).
        for tx in self.shared.clients.lock().values() {
            tx.close();
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for AttrSpaceServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Per-connection request loop.
fn serve_client(shared: Arc<Shared>, client: u64, conn: WireConn) {
    let (tx, mut rx) = conn.split();
    shared.clients.lock().insert(client, tx);
    // Serve until disconnect or protocol failure.
    while let Ok(msg) = rx.recv_msg() {
        let outs = {
            let mut space = shared.space.lock();
            match msg {
                Message::Put { ctx, key, value } => space.put(client, ctx, &key, &value),
                Message::Get { ctx, key, blocking } => space.get(client, ctx, &key, blocking),
                Message::Remove { ctx, key } => space.remove(client, ctx, &key),
                Message::Subscribe {
                    ctx,
                    key,
                    token,
                    only_future,
                } => space.subscribe(client, ctx, &key, token, only_future),
                Message::Unsubscribe { ctx, token } => space.unsubscribe(client, ctx, token),
                Message::ListKeys { ctx, prefix } => space.list_keys(client, ctx, &prefix),
                Message::Join { ctx } => space.join(client, ctx),
                Message::Leave { ctx } => space.leave(client, ctx),
                Message::Hello { .. } => {
                    // Transport-level frame; never legal mid-session.
                    vec![(
                        client,
                        Reply::Err(TdpError::Protocol("unexpected hello".into())),
                    )]
                }
                Message::Reply(_) => {
                    vec![(
                        client,
                        Reply::Err(TdpError::Protocol("unexpected reply".into())),
                    )]
                }
            }
        };
        route(&shared, outs);
    }
    // Implicit leave of everything on disconnect.
    let outs = shared.space.lock().disconnect(client);
    route(&shared, outs);
    shared.clients.lock().remove(&client);
}

fn route(shared: &Shared, outs: Vec<(u64, Reply)>) {
    // Snapshot the send handles first: `send_msg` may block (TCP
    // backpressure), and holding the clients mutex across it would stall
    // every other session's delivery — and deadlock against a handler
    // trying to register/remove itself.
    let routed: Vec<(WireTx, Reply)> = {
        let clients = shared.clients.lock();
        outs.into_iter()
            .filter_map(|(dst, reply)| clients.get(&dst).map(|tx| (tx.clone(), reply)))
            .collect()
    };
    for (tx, reply) in routed {
        let _ = tx.send_msg(&Message::Reply(reply));
    }
}
