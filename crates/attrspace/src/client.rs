//! The attribute-space client: one connection from a daemon to a LASS
//! or the CASS.
//!
//! The client is deliberately single-threaded (`&mut self` on every
//! operation), matching the paper's daemon model: a blocking `tdp_get`
//! blocks the daemon, and asynchronous work is done with subscriptions
//! whose notifications queue up until the daemon drains them from its
//! central polling loop (`tdp_service_event`, §3.3).
//!
//! # Reconnect
//!
//! A dropped server connection is terminal by default. A client given a
//! redial closure ([`AttrClient::set_redial`]) instead survives a
//! server restart: on `Disconnected` it re-dials with jittered capped
//! exponential backoff, replays its session state (joined contexts and
//! live subscriptions), and retries the interrupted operation. Puts are
//! last-writer-wins and gets are reads, so the retry is safe; replayed
//! subscriptions re-deliver at-least-once (a notification can arrive
//! twice across a reconnect — daemons key on the token, which stays
//! stable). The space itself is *not* replayed — a restarted LASS comes
//! back empty, exactly like the paper's model, and daemons re-put what
//! they own.

use rand::SmallRng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::{Duration, Instant};
use tdp_netsim::{Conn, Network};
use tdp_proto::{Addr, ContextId, HostId, Message, Reply, TdpError, TdpResult};
use tdp_wire::WireConn;

/// Re-dials the server. Called once per connection attempt, so it can
/// (and should) re-resolve the server's address each time — a restarted
/// server may listen on a different real socket behind the same logical
/// address.
pub type Dialer = Box<dyn FnMut() -> TdpResult<WireConn> + Send>;

/// Backoff policy for [`AttrClient::set_redial`].
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    /// First retry delay; doubles per failed attempt.
    pub base: Duration,
    /// Ceiling on a single delay.
    pub cap: Duration,
    /// Total time to keep trying before giving up with the dial error.
    pub max_elapsed: Duration,
    /// Seed for the jitter PRNG (deterministic tests inject their own).
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> ReconnectPolicy {
        ReconnectPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            max_elapsed: Duration::from_secs(10),
            seed: 0x7d9_5eed,
        }
    }
}

impl ReconnectPolicy {
    /// Start from the default policy and override selected knobs —
    /// the construction path for callers outside this crate that only
    /// care about one or two fields (and stays source-compatible if
    /// the policy ever grows private fields).
    pub fn builder() -> ReconnectPolicyBuilder {
        ReconnectPolicyBuilder {
            policy: ReconnectPolicy::default(),
        }
    }
}

/// Builder for [`ReconnectPolicy`] — see [`ReconnectPolicy::builder`].
#[derive(Debug, Clone)]
pub struct ReconnectPolicyBuilder {
    policy: ReconnectPolicy,
}

impl ReconnectPolicyBuilder {
    /// First retry delay; doubles per failed attempt.
    pub fn base(mut self, base: Duration) -> Self {
        self.policy.base = base;
        self
    }

    /// Ceiling on a single delay.
    pub fn cap(mut self, cap: Duration) -> Self {
        self.policy.cap = cap;
        self
    }

    /// Total time to keep trying before giving up with the dial error.
    pub fn max_elapsed(mut self, max_elapsed: Duration) -> Self {
        self.policy.max_elapsed = max_elapsed;
        self
    }

    /// Seed for the jitter PRNG (deterministic tests inject their own).
    pub fn seed(mut self, seed: u64) -> Self {
        self.policy.seed = seed;
        self
    }

    pub fn build(self) -> ReconnectPolicy {
        self.policy
    }
}

struct Redial {
    dial: Dialer,
    policy: ReconnectPolicy,
    rng: SmallRng,
    /// Contexts this session has joined (replayed on reconnect).
    joined: BTreeSet<ContextId>,
    /// Live one-shot subscriptions by token (pruned when the
    /// notification fires or the daemon unsubscribes).
    subs: BTreeMap<u64, (ContextId, String, bool)>,
    reconnects: u64,
}

/// A pending asynchronous notification, delivered by
/// [`AttrClient::poll_notify`] / [`AttrClient::wait_notify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    pub token: u64,
    pub key: String,
    pub value: String,
}

/// Client session with one attribute-space server.
pub struct AttrClient {
    conn: WireConn,
    /// Notifications received while waiting for a direct reply.
    pending: VecDeque<Notification>,
    /// Replies we abandoned (timed-out blocking gets): the next this
    /// many non-notify replies are discarded to stay in sync.
    orphans: usize,
    /// Reconnect machinery; `None` = dropped connection is terminal.
    redial: Option<Redial>,
}

impl AttrClient {
    /// Connect to a server directly over the simulated fabric.
    pub fn connect(net: &Network, from: HostId, server: Addr) -> TdpResult<AttrClient> {
        let conn = net.connect(from, server)?;
        Ok(AttrClient::over(conn))
    }

    /// Connect through an RM proxy on the simulated fabric (for a CASS
    /// on the far side of a firewall, §2.4).
    pub fn connect_via_proxy(
        net: &Network,
        from: HostId,
        proxy: Addr,
        server: Addr,
    ) -> TdpResult<AttrClient> {
        let conn = tdp_netsim::proxy::connect_via(net, from, proxy, server)?;
        Ok(AttrClient::over(conn))
    }

    /// Wrap an already-established netsim connection.
    pub fn over(conn: Conn) -> AttrClient {
        AttrClient::over_wire(tdp_wire::sim::wrap_conn(conn))
    }

    /// Wrap an already-established transport connection (either
    /// backend).
    pub fn over_wire(conn: WireConn) -> AttrClient {
        AttrClient {
            conn,
            pending: VecDeque::new(),
            orphans: 0,
            redial: None,
        }
    }

    /// Arm client-side reconnect: on a dropped connection, `dial` is
    /// retried under `policy` and the session (joins, subscriptions) is
    /// replayed — see the module docs for the exact semantics.
    pub fn set_redial(&mut self, dial: Dialer, policy: ReconnectPolicy) {
        self.redial = Some(Redial {
            dial,
            rng: SmallRng::seed_from_u64(policy.seed),
            policy,
            joined: BTreeSet::new(),
            subs: BTreeMap::new(),
            reconnects: 0,
        });
    }

    /// How many times this session has successfully reconnected.
    pub fn reconnects(&self) -> u64 {
        self.redial.as_ref().map_or(0, |r| r.reconnects)
    }

    /// Join a context (`tdp_init`'s server half).
    pub fn join(&mut self, ctx: ContextId) -> TdpResult<()> {
        self.expect_ok(Message::Join { ctx })?;
        if let Some(r) = self.redial.as_mut() {
            r.joined.insert(ctx);
        }
        Ok(())
    }

    /// Leave a context (`tdp_exit`'s server half).
    pub fn leave(&mut self, ctx: ContextId) -> TdpResult<()> {
        self.expect_ok(Message::Leave { ctx })?;
        if let Some(r) = self.redial.as_mut() {
            r.joined.remove(&ctx);
        }
        Ok(())
    }

    /// Blocking `tdp_put`.
    pub fn put(&mut self, ctx: ContextId, key: &str, value: &str) -> TdpResult<()> {
        self.expect_ok(Message::Put {
            ctx,
            key: key.to_string(),
            value: value.to_string(),
        })
    }

    /// Blocking `tdp_get`: parks until the attribute exists.
    pub fn get(&mut self, ctx: ContextId, key: &str) -> TdpResult<String> {
        self.get_inner(ctx, key, true, None)
    }

    /// Blocking get with a deadline. On timeout the eventual reply is
    /// discarded internally; the session stays usable.
    pub fn get_timeout(
        &mut self,
        ctx: ContextId,
        key: &str,
        timeout: Duration,
    ) -> TdpResult<String> {
        self.get_inner(ctx, key, true, Some(timeout))
    }

    /// Non-blocking get: `AttributeNotFound` if absent (§3.2's error
    /// case).
    pub fn try_get(&mut self, ctx: ContextId, key: &str) -> TdpResult<String> {
        self.get_inner(ctx, key, false, None)
    }

    fn get_inner(
        &mut self,
        ctx: ContextId,
        key: &str,
        blocking: bool,
        timeout: Option<Duration>,
    ) -> TdpResult<String> {
        let msg = Message::Get {
            ctx,
            key: key.to_string(),
            blocking,
        };
        match self.request(&msg, timeout) {
            Ok(Reply::Value { value, .. }) => Ok(value),
            Ok(Reply::Err(e)) => Err(e),
            Ok(other) => Err(TdpError::Protocol(format!("unexpected reply: {other:?}"))),
            Err(TdpError::Timeout) => {
                self.orphans += 1;
                Err(TdpError::Timeout)
            }
            Err(e) => Err(e),
        }
    }

    /// Remove an attribute.
    pub fn remove(&mut self, ctx: ContextId, key: &str) -> TdpResult<()> {
        self.expect_ok(Message::Remove {
            ctx,
            key: key.to_string(),
        })
    }

    /// Register a one-shot subscription (`tdp_async_get`'s server half):
    /// the notification arrives via [`AttrClient::poll_notify`]. With
    /// `only_future`, an existing value does not fire — only the next
    /// put does.
    pub fn subscribe(
        &mut self,
        ctx: ContextId,
        key: &str,
        token: u64,
        only_future: bool,
    ) -> TdpResult<()> {
        self.expect_ok(Message::Subscribe {
            ctx,
            key: key.to_string(),
            token,
            only_future,
        })?;
        if let Some(r) = self.redial.as_mut() {
            r.subs.insert(token, (ctx, key.to_string(), only_future));
        }
        Ok(())
    }

    /// Cancel a subscription.
    pub fn unsubscribe(&mut self, ctx: ContextId, token: u64) -> TdpResult<()> {
        self.expect_ok(Message::Unsubscribe { ctx, token })?;
        if let Some(r) = self.redial.as_mut() {
            r.subs.remove(&token);
        }
        Ok(())
    }

    /// Keys with a prefix.
    pub fn list_keys(&mut self, ctx: ContextId, prefix: &str) -> TdpResult<Vec<String>> {
        let msg = Message::ListKeys {
            ctx,
            prefix: prefix.to_string(),
        };
        match self.request(&msg, None)? {
            Reply::Keys(keys) => Ok(keys),
            Reply::Err(e) => Err(e),
            other => Err(TdpError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Drain one queued notification without blocking.
    pub fn poll_notify(&mut self) -> Option<Notification> {
        if let Some(n) = self.pending.pop_front() {
            return Some(n);
        }
        // Pull in anything already on the wire.
        loop {
            match self.conn.try_recv_msg() {
                Ok(Some(Message::Reply(Reply::Notify { token, key, value }))) => {
                    self.sub_fired(token);
                    return Some(Notification { token, key, value });
                }
                Ok(Some(Message::Reply(r))) if self.orphans > 0 => {
                    self.orphans -= 1;
                    let _ = r;
                }
                _ => return None,
            }
        }
    }

    /// Block until a notification arrives (or timeout).
    pub fn wait_notify(&mut self, timeout: Duration) -> TdpResult<Notification> {
        if let Some(n) = self.pending.pop_front() {
            return Ok(n);
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or(TdpError::Timeout)?;
            match self.conn.recv_msg_timeout(remaining)? {
                Message::Reply(Reply::Notify { token, key, value }) => {
                    self.sub_fired(token);
                    return Ok(Notification { token, key, value });
                }
                Message::Reply(r) if self.orphans > 0 => {
                    self.orphans -= 1;
                    let _ = r;
                }
                other => return Err(TdpError::Protocol(format!("unexpected message: {other:?}"))),
            }
        }
    }

    /// True when a notification is queued (a "descriptor active" check
    /// for the daemon's poll loop).
    pub fn has_notify(&mut self) -> bool {
        if !self.pending.is_empty() {
            return true;
        }
        if let Some(n) = self.poll_notify() {
            self.pending.push_front(n);
            true
        } else {
            false
        }
    }

    fn expect_ok(&mut self, msg: Message) -> TdpResult<()> {
        match self.request(&msg, None)? {
            Reply::Ok => Ok(()),
            Reply::Err(e) => Err(e),
            other => Err(TdpError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// One request/reply round trip. On a dropped connection with
    /// redial armed: reconnect (replaying session state) and retry the
    /// request. Every request this client issues is safe to repeat —
    /// puts are last-writer-wins, joins and subscribes are idempotent
    /// on the server — so a reply lost in the crash costs a duplicate,
    /// not corruption.
    fn request(&mut self, msg: &Message, timeout: Option<Duration>) -> TdpResult<Reply> {
        loop {
            let res = self
                .conn
                .send_msg(msg)
                .and_then(|()| self.read_reply(timeout));
            match res {
                Err(TdpError::Disconnected) if self.redial.is_some() => self.reconnect()?,
                other => return other,
            }
        }
    }

    /// Dial until connected (or the policy's budget runs out), replay
    /// the session, and install the new connection.
    fn reconnect(&mut self) -> TdpResult<()> {
        let mut r = self.redial.take().expect("reconnect without redial");
        let out = match Self::dial_and_replay(&mut r) {
            Ok((conn, notes)) => {
                self.conn = conn;
                // The old stream died with any orphaned replies on it.
                self.orphans = 0;
                self.pending.extend(notes);
                r.reconnects += 1;
                Ok(())
            }
            Err(e) => Err(e),
        };
        self.redial = Some(r);
        out
    }

    fn dial_and_replay(r: &mut Redial) -> TdpResult<(WireConn, Vec<Notification>)> {
        let start = Instant::now();
        let mut delay = r.policy.base;
        loop {
            match (r.dial)().and_then(|conn| Self::replay_session(conn, &r.joined, &r.subs)) {
                Ok((conn, notes)) => {
                    for n in &notes {
                        r.subs.remove(&n.token);
                    }
                    return Ok((conn, notes));
                }
                // Anything transport-shaped is worth retrying: the
                // server may still be restarting (refused/timeout), the
                // network healing (firewall/partition), or the real
                // socket gone (substrate).
                Err(
                    e @ (TdpError::Disconnected
                    | TdpError::ConnectionRefused(_)
                    | TdpError::Timeout
                    | TdpError::BlockedByFirewall { .. }
                    | TdpError::Substrate(_)),
                ) => {
                    // Jittered backoff: uniform in [delay/2, delay].
                    let half = delay / 2;
                    let jitter =
                        half + Duration::from_nanos(r.rng.gen_range(half.as_nanos() as u64 + 1));
                    if start.elapsed() + jitter > r.policy.max_elapsed {
                        return Err(e);
                    }
                    std::thread::sleep(jitter);
                    delay = (delay * 2).min(r.policy.cap);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Replay joins and live subscriptions on a fresh connection.
    /// Subscriptions are replayed with `only_future = false`: a value
    /// put while we were away must still wake its subscriber. Notifies
    /// that fire during the replay are collected for the pending queue.
    fn replay_session(
        mut conn: WireConn,
        joined: &BTreeSet<ContextId>,
        subs: &BTreeMap<u64, (ContextId, String, bool)>,
    ) -> TdpResult<(WireConn, Vec<Notification>)> {
        const REPLAY_TIMEOUT: Duration = Duration::from_secs(5);
        let mut notes = Vec::new();
        let mut roundtrip = |conn: &mut WireConn, msg: &Message| -> TdpResult<()> {
            conn.send_msg(msg)?;
            loop {
                match conn.recv_msg_timeout(REPLAY_TIMEOUT)? {
                    Message::Reply(Reply::Notify { token, key, value }) => {
                        notes.push(Notification { token, key, value });
                    }
                    Message::Reply(Reply::Ok) => return Ok(()),
                    Message::Reply(Reply::Err(e)) => return Err(e),
                    other => {
                        return Err(TdpError::Protocol(format!("unexpected message: {other:?}")))
                    }
                }
            }
        };
        for ctx in joined {
            roundtrip(&mut conn, &Message::Join { ctx: *ctx })?;
        }
        for (token, (ctx, key, _only_future)) in subs {
            roundtrip(
                &mut conn,
                &Message::Subscribe {
                    ctx: *ctx,
                    key: key.clone(),
                    token: *token,
                    only_future: false,
                },
            )?;
        }
        Ok((conn, notes))
    }

    fn sub_fired(&mut self, token: u64) {
        if let Some(r) = self.redial.as_mut() {
            r.subs.remove(&token);
        }
    }

    /// Read the next direct (non-notify) reply, queueing notifications
    /// and discarding orphaned replies from abandoned gets.
    fn read_reply(&mut self, timeout: Option<Duration>) -> TdpResult<Reply> {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            let msg = match deadline {
                Some(d) => {
                    let remaining = d
                        .checked_duration_since(std::time::Instant::now())
                        .ok_or(TdpError::Timeout)?;
                    self.conn.recv_msg_timeout(remaining)?
                }
                None => self.conn.recv_msg()?,
            };
            match msg {
                Message::Reply(Reply::Notify { token, key, value }) => {
                    self.sub_fired(token);
                    self.pending.push_back(Notification { token, key, value });
                }
                Message::Reply(r) => {
                    if self.orphans > 0 {
                        self.orphans -= 1;
                        continue;
                    }
                    return Ok(r);
                }
                other => return Err(TdpError::Protocol(format!("unexpected message: {other:?}"))),
            }
        }
    }
}
