//! The attribute-space client: one connection from a daemon to a LASS
//! or the CASS.
//!
//! The client is deliberately single-threaded (`&mut self` on every
//! operation), matching the paper's daemon model: a blocking `tdp_get`
//! blocks the daemon, and asynchronous work is done with subscriptions
//! whose notifications queue up until the daemon drains them from its
//! central polling loop (`tdp_service_event`, §3.3).

use std::collections::VecDeque;
use std::time::Duration;
use tdp_netsim::{Conn, Network};
use tdp_proto::{Addr, ContextId, HostId, Message, Reply, TdpError, TdpResult};
use tdp_wire::WireConn;

/// A pending asynchronous notification, delivered by
/// [`AttrClient::poll_notify`] / [`AttrClient::wait_notify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    pub token: u64,
    pub key: String,
    pub value: String,
}

/// Client session with one attribute-space server.
pub struct AttrClient {
    conn: WireConn,
    /// Notifications received while waiting for a direct reply.
    pending: VecDeque<Notification>,
    /// Replies we abandoned (timed-out blocking gets): the next this
    /// many non-notify replies are discarded to stay in sync.
    orphans: usize,
}

impl AttrClient {
    /// Connect to a server directly over the simulated fabric.
    pub fn connect(net: &Network, from: HostId, server: Addr) -> TdpResult<AttrClient> {
        let conn = net.connect(from, server)?;
        Ok(AttrClient::over(conn))
    }

    /// Connect through an RM proxy on the simulated fabric (for a CASS
    /// on the far side of a firewall, §2.4).
    pub fn connect_via_proxy(
        net: &Network,
        from: HostId,
        proxy: Addr,
        server: Addr,
    ) -> TdpResult<AttrClient> {
        let conn = tdp_netsim::proxy::connect_via(net, from, proxy, server)?;
        Ok(AttrClient::over(conn))
    }

    /// Wrap an already-established netsim connection.
    pub fn over(conn: Conn) -> AttrClient {
        AttrClient::over_wire(tdp_wire::sim::wrap_conn(conn))
    }

    /// Wrap an already-established transport connection (either
    /// backend).
    pub fn over_wire(conn: WireConn) -> AttrClient {
        AttrClient {
            conn,
            pending: VecDeque::new(),
            orphans: 0,
        }
    }

    /// Join a context (`tdp_init`'s server half).
    pub fn join(&mut self, ctx: ContextId) -> TdpResult<()> {
        self.expect_ok(Message::Join { ctx })
    }

    /// Leave a context (`tdp_exit`'s server half).
    pub fn leave(&mut self, ctx: ContextId) -> TdpResult<()> {
        self.expect_ok(Message::Leave { ctx })
    }

    /// Blocking `tdp_put`.
    pub fn put(&mut self, ctx: ContextId, key: &str, value: &str) -> TdpResult<()> {
        self.expect_ok(Message::Put {
            ctx,
            key: key.to_string(),
            value: value.to_string(),
        })
    }

    /// Blocking `tdp_get`: parks until the attribute exists.
    pub fn get(&mut self, ctx: ContextId, key: &str) -> TdpResult<String> {
        self.get_inner(ctx, key, true, None)
    }

    /// Blocking get with a deadline. On timeout the eventual reply is
    /// discarded internally; the session stays usable.
    pub fn get_timeout(
        &mut self,
        ctx: ContextId,
        key: &str,
        timeout: Duration,
    ) -> TdpResult<String> {
        self.get_inner(ctx, key, true, Some(timeout))
    }

    /// Non-blocking get: `AttributeNotFound` if absent (§3.2's error
    /// case).
    pub fn try_get(&mut self, ctx: ContextId, key: &str) -> TdpResult<String> {
        self.get_inner(ctx, key, false, None)
    }

    fn get_inner(
        &mut self,
        ctx: ContextId,
        key: &str,
        blocking: bool,
        timeout: Option<Duration>,
    ) -> TdpResult<String> {
        self.conn.send_msg(&Message::Get {
            ctx,
            key: key.to_string(),
            blocking,
        })?;
        match self.read_reply(timeout) {
            Ok(Reply::Value { value, .. }) => Ok(value),
            Ok(Reply::Err(e)) => Err(e),
            Ok(other) => Err(TdpError::Protocol(format!("unexpected reply: {other:?}"))),
            Err(TdpError::Timeout) => {
                self.orphans += 1;
                Err(TdpError::Timeout)
            }
            Err(e) => Err(e),
        }
    }

    /// Remove an attribute.
    pub fn remove(&mut self, ctx: ContextId, key: &str) -> TdpResult<()> {
        self.expect_ok(Message::Remove {
            ctx,
            key: key.to_string(),
        })
    }

    /// Register a one-shot subscription (`tdp_async_get`'s server half):
    /// the notification arrives via [`AttrClient::poll_notify`]. With
    /// `only_future`, an existing value does not fire — only the next
    /// put does.
    pub fn subscribe(
        &mut self,
        ctx: ContextId,
        key: &str,
        token: u64,
        only_future: bool,
    ) -> TdpResult<()> {
        self.expect_ok(Message::Subscribe {
            ctx,
            key: key.to_string(),
            token,
            only_future,
        })
    }

    /// Cancel a subscription.
    pub fn unsubscribe(&mut self, ctx: ContextId, token: u64) -> TdpResult<()> {
        self.expect_ok(Message::Unsubscribe { ctx, token })
    }

    /// Keys with a prefix.
    pub fn list_keys(&mut self, ctx: ContextId, prefix: &str) -> TdpResult<Vec<String>> {
        self.conn.send_msg(&Message::ListKeys {
            ctx,
            prefix: prefix.to_string(),
        })?;
        match self.read_reply(None)? {
            Reply::Keys(keys) => Ok(keys),
            Reply::Err(e) => Err(e),
            other => Err(TdpError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Drain one queued notification without blocking.
    pub fn poll_notify(&mut self) -> Option<Notification> {
        if let Some(n) = self.pending.pop_front() {
            return Some(n);
        }
        // Pull in anything already on the wire.
        loop {
            match self.conn.try_recv_msg() {
                Ok(Some(Message::Reply(Reply::Notify { token, key, value }))) => {
                    return Some(Notification { token, key, value });
                }
                Ok(Some(Message::Reply(r))) if self.orphans > 0 => {
                    self.orphans -= 1;
                    let _ = r;
                }
                _ => return None,
            }
        }
    }

    /// Block until a notification arrives (or timeout).
    pub fn wait_notify(&mut self, timeout: Duration) -> TdpResult<Notification> {
        if let Some(n) = self.pending.pop_front() {
            return Ok(n);
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or(TdpError::Timeout)?;
            match self.conn.recv_msg_timeout(remaining)? {
                Message::Reply(Reply::Notify { token, key, value }) => {
                    return Ok(Notification { token, key, value });
                }
                Message::Reply(r) if self.orphans > 0 => {
                    self.orphans -= 1;
                    let _ = r;
                }
                other => return Err(TdpError::Protocol(format!("unexpected message: {other:?}"))),
            }
        }
    }

    /// True when a notification is queued (a "descriptor active" check
    /// for the daemon's poll loop).
    pub fn has_notify(&mut self) -> bool {
        if !self.pending.is_empty() {
            return true;
        }
        if let Some(n) = self.poll_notify() {
            self.pending.push_front(n);
            true
        } else {
            false
        }
    }

    fn expect_ok(&mut self, msg: Message) -> TdpResult<()> {
        self.conn.send_msg(&msg)?;
        match self.read_reply(None)? {
            Reply::Ok => Ok(()),
            Reply::Err(e) => Err(e),
            other => Err(TdpError::Protocol(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Read the next direct (non-notify) reply, queueing notifications
    /// and discarding orphaned replies from abandoned gets.
    fn read_reply(&mut self, timeout: Option<Duration>) -> TdpResult<Reply> {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            let msg = match deadline {
                Some(d) => {
                    let remaining = d
                        .checked_duration_since(std::time::Instant::now())
                        .ok_or(TdpError::Timeout)?;
                    self.conn.recv_msg_timeout(remaining)?
                }
                None => self.conn.recv_msg()?,
            };
            match msg {
                Message::Reply(Reply::Notify { token, key, value }) => {
                    self.pending.push_back(Notification { token, key, value });
                }
                Message::Reply(r) => {
                    if self.orphans > 0 {
                        self.orphans -= 1;
                        continue;
                    }
                    return Ok(r);
                }
                other => return Err(TdpError::Protocol(format!("unexpected message: {other:?}"))),
            }
        }
    }
}
