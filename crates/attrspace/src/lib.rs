//! # tdp-attrspace — the Attribute Space servers (LASS / CASS)
//!
//! §2.1 of the paper: "Each host on which an application process (and
//! tool daemon) runs has a local instance of the attribute space server
//! (LASS). There is also a central attribute space server (CASS) process
//! on the host running the tool front-end. A process using the TDP
//! library can access the attribute space of its LASS or the CASS, but
//! cannot access the LASS's of other nodes."
//!
//! The space stores `(attribute, value)` string pairs per **context**
//! (§3.2): each RM↔RT pairing gets its own context, created by the first
//! `Join` (`tdp_init`) and destroyed when the last member `Leave`s
//! (`tdp_exit`). Operations:
//!
//! * `put` — store; wakes blocked getters and fires subscriptions;
//! * `get` (blocking) — parks the caller until the attribute exists
//!   (this is what lets `paradynd` block on `"pid"` in Figure 6 until
//!   the starter puts it);
//! * `get` (non-blocking) — error if absent;
//! * `subscribe`/`unsubscribe` — one-shot asynchronous notification,
//!   backing `tdp_async_get`;
//! * `remove`, `list_keys` — housekeeping.
//!
//! The crate is split into a **pure state machine** ([`space::Space`]:
//! every operation returns the replies to emit, no I/O) and a thin
//! networked **server** ([`server::AttrSpaceServer`]) plus **client**
//! ([`client::AttrClient`]) that move those replies over `tdp-netsim`
//! connections. The pure core is where the protocol invariants live and
//! is property-tested directly.

pub mod client;
pub mod server;
pub mod space;

pub use client::{AttrClient, Dialer, ReconnectPolicy, ReconnectPolicyBuilder};
pub use server::{AttrSpaceServer, ServerKind};
pub use space::{ClientId, Out, Space};
