//! Property tests on the pure attribute-space state machine: random
//! operation sequences must preserve the protocol invariants.

use proptest::prelude::*;
use tdp_attrspace::Space;
use tdp_proto::{ContextId, Reply};

#[derive(Debug, Clone)]
enum Op {
    Join(u64, u64),
    Leave(u64, u64),
    Put(u64, u64, String, String),
    GetB(u64, u64, String),
    GetNb(u64, u64, String),
    Remove(u64, u64, String),
    Sub(u64, u64, String, u64),
    Unsub(u64, u64, u64),
    Disconnect(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let client = 0u64..4;
    let ctx = 0u64..3;
    let key = proptest::sample::select(vec!["pid", "args", "status", "x"]);
    let val = proptest::sample::select(vec!["1", "2", "running", ""]);
    prop_oneof![
        (client.clone(), ctx.clone()).prop_map(|(c, x)| Op::Join(c, x)),
        (client.clone(), ctx.clone()).prop_map(|(c, x)| Op::Leave(c, x)),
        (client.clone(), ctx.clone(), key.clone(), val).prop_map(|(c, x, k, v)| Op::Put(
            c,
            x,
            k.to_string(),
            v.to_string()
        )),
        (client.clone(), ctx.clone(), key.clone()).prop_map(|(c, x, k)| Op::GetB(
            c,
            x,
            k.to_string()
        )),
        (client.clone(), ctx.clone(), key.clone()).prop_map(|(c, x, k)| Op::GetNb(
            c,
            x,
            k.to_string()
        )),
        (client.clone(), ctx.clone(), key.clone()).prop_map(|(c, x, k)| Op::Remove(
            c,
            x,
            k.to_string()
        )),
        (client.clone(), ctx.clone(), key, 0u64..5).prop_map(|(c, x, k, t)| Op::Sub(
            c,
            x,
            k.to_string(),
            t
        )),
        (client.clone(), ctx.clone(), 0u64..5).prop_map(|(c, x, t)| Op::Unsub(c, x, t)),
        client.prop_map(Op::Disconnect),
    ]
}

proptest! {
    /// Replies are only ever addressed to clients that initiated an
    /// operation or were parked/subscribed — never to strangers — and a
    /// caller's own operation always yields at most one direct reply to
    /// itself per call.
    #[test]
    fn replies_routed_sanely(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut s = Space::new();
        let mut ever_seen = std::collections::HashSet::new();
        for op in ops {
            let outs = match &op {
                Op::Join(c, x) => { ever_seen.insert(*c); s.join(*c, ContextId(*x)) }
                Op::Leave(c, x) => { ever_seen.insert(*c); s.leave(*c, ContextId(*x)) }
                Op::Put(c, x, k, v) => { ever_seen.insert(*c); s.put(*c, ContextId(*x), k, v) }
                Op::GetB(c, x, k) => { ever_seen.insert(*c); s.get(*c, ContextId(*x), k, true) }
                Op::GetNb(c, x, k) => { ever_seen.insert(*c); s.get(*c, ContextId(*x), k, false) }
                Op::Remove(c, x, k) => { ever_seen.insert(*c); s.remove(*c, ContextId(*x), k) }
                Op::Sub(c, x, k, t) => { ever_seen.insert(*c); s.subscribe(*c, ContextId(*x), k, *t, false) }
                Op::Unsub(c, x, t) => { ever_seen.insert(*c); s.unsubscribe(*c, ContextId(*x), *t) }
                Op::Disconnect(c) => { ever_seen.insert(*c); s.disconnect(*c) }
            };
            for (dst, _) in &outs {
                prop_assert!(ever_seen.contains(dst), "reply to never-seen client {dst}");
            }
        }
    }

    /// After disconnecting every client, no contexts survive.
    #[test]
    fn full_disconnect_empties_space(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut s = Space::new();
        for op in ops {
            match op {
                Op::Join(c, x) => { s.join(c, ContextId(x)); }
                Op::Leave(c, x) => { s.leave(c, ContextId(x)); }
                Op::Put(c, x, k, v) => { s.put(c, ContextId(x), &k, &v); }
                Op::GetB(c, x, k) => { s.get(c, ContextId(x), &k, true); }
                Op::GetNb(c, x, k) => { s.get(c, ContextId(x), &k, false); }
                Op::Remove(c, x, k) => { s.remove(c, ContextId(x), &k); }
                Op::Sub(c, x, k, t) => { s.subscribe(c, ContextId(x), &k, t, false); }
                Op::Unsub(c, x, t) => { s.unsubscribe(c, ContextId(x), t); }
                Op::Disconnect(c) => { s.disconnect(c); }
            }
        }
        for c in 0..4 {
            s.disconnect(c);
        }
        prop_assert_eq!(s.context_count(), 0);
    }

    /// A non-blocking get immediately after a put by a co-member always
    /// sees the value, regardless of interleaved history on other keys.
    #[test]
    fn put_visible_to_comember(
        ops in proptest::collection::vec(arb_op(), 0..40),
        key in proptest::sample::select(vec!["pid", "args"]),
    ) {
        let mut s = Space::new();
        for op in ops {
            match op {
                Op::Join(c, x) => { s.join(c, ContextId(x)); }
                Op::Put(c, x, k, v) => { s.put(c, ContextId(x), &k, &v); }
                Op::Remove(c, x, k) => { s.remove(c, ContextId(x), &k); }
                Op::Disconnect(c) => { s.disconnect(c); }
                _ => {}
            }
        }
        // Use fresh client ids outside the 0..4 range so prior ops can't
        // have disconnected them.
        let (rm, rt) = (100, 101);
        let ctx = ContextId(9);
        s.join(rm, ctx);
        s.join(rt, ctx);
        s.put(rm, ctx, key, "fresh");
        let out = s.get(rt, ctx, key, false);
        prop_assert_eq!(out, vec![(rt, Reply::Value { key: key.to_string(), value: "fresh".to_string() })]);
    }
}
