//! Integration tests: LASS/CASS servers and clients over the simulated
//! network.

use std::time::Duration;
use tdp_attrspace::{AttrClient, AttrSpaceServer, ServerKind};
use tdp_netsim::{FirewallPolicy, Network};
use tdp_proto::{names, Addr, ContextId, HostId, TdpError};

const CTX: ContextId = ContextId(1);
const T: Duration = Duration::from_secs(5);

fn world() -> (Network, HostId, AttrSpaceServer) {
    let net = Network::new();
    let host = net.add_host();
    let srv = AttrSpaceServer::spawn(&net, host, 7000, ServerKind::Local).unwrap();
    (net, host, srv)
}

#[test]
fn put_get_roundtrip_over_network() {
    let (net, host, srv) = world();
    let mut rm = AttrClient::connect(&net, host, srv.addr()).unwrap();
    let mut rt = AttrClient::connect(&net, host, srv.addr()).unwrap();
    rm.join(CTX).unwrap();
    rt.join(CTX).unwrap();
    rm.put(CTX, names::PID, "42").unwrap();
    assert_eq!(rt.get(CTX, names::PID).unwrap(), "42");
}

#[test]
fn blocking_get_wakes_on_put() {
    // paradynd blocks on "pid"; the starter puts it later (Fig 6).
    let (net, host, srv) = world();
    let mut rm = AttrClient::connect(&net, host, srv.addr()).unwrap();
    let mut rt = AttrClient::connect(&net, host, srv.addr()).unwrap();
    rm.join(CTX).unwrap();
    rt.join(CTX).unwrap();
    let getter = std::thread::spawn(move || rt.get(CTX, names::PID).unwrap());
    std::thread::sleep(Duration::from_millis(50));
    rm.put(CTX, names::PID, "4242").unwrap();
    assert_eq!(getter.join().unwrap(), "4242");
}

#[test]
fn try_get_absent_errors_without_blocking() {
    let (net, host, srv) = world();
    let mut c = AttrClient::connect(&net, host, srv.addr()).unwrap();
    c.join(CTX).unwrap();
    assert!(matches!(
        c.try_get(CTX, "nope"),
        Err(TdpError::AttributeNotFound(_))
    ));
}

#[test]
fn get_timeout_leaves_session_usable() {
    let (net, host, srv) = world();
    let mut rm = AttrClient::connect(&net, host, srv.addr()).unwrap();
    let mut rt = AttrClient::connect(&net, host, srv.addr()).unwrap();
    rm.join(CTX).unwrap();
    rt.join(CTX).unwrap();
    assert_eq!(
        rt.get_timeout(CTX, "slow", Duration::from_millis(40)),
        Err(TdpError::Timeout)
    );
    // The session must survive: the orphaned reply (when the put finally
    // happens) is discarded, and new operations work.
    rm.put(CTX, "slow", "eventually").unwrap();
    rm.put(CTX, "other", "x").unwrap();
    assert_eq!(rt.get(CTX, "other").unwrap(), "x");
}

#[test]
fn subscribe_notify_via_service_loop() {
    let (net, host, srv) = world();
    let mut rm = AttrClient::connect(&net, host, srv.addr()).unwrap();
    let mut rt = AttrClient::connect(&net, host, srv.addr()).unwrap();
    rm.join(CTX).unwrap();
    rt.join(CTX).unwrap();
    rt.subscribe(CTX, names::AP_STATUS, 77, false).unwrap();
    assert!(!rt.has_notify());
    rm.put(CTX, names::AP_STATUS, "running").unwrap();
    let n = rt.wait_notify(T).unwrap();
    assert_eq!(
        (n.token, n.key.as_str(), n.value.as_str()),
        (77, names::AP_STATUS, "running")
    );
    // One-shot.
    rm.put(CTX, names::AP_STATUS, "stopped").unwrap();
    assert!(rt.wait_notify(Duration::from_millis(60)).is_err());
}

#[test]
fn notifications_queue_while_doing_sync_ops() {
    let (net, host, srv) = world();
    let mut rm = AttrClient::connect(&net, host, srv.addr()).unwrap();
    let mut rt = AttrClient::connect(&net, host, srv.addr()).unwrap();
    rm.join(CTX).unwrap();
    rt.join(CTX).unwrap();
    rt.subscribe(CTX, "a", 1, false).unwrap();
    rt.subscribe(CTX, "b", 2, false).unwrap();
    rm.put(CTX, "a", "1").unwrap();
    rm.put(CTX, "b", "2").unwrap();
    std::thread::sleep(Duration::from_millis(30));
    // A sync op while notifies sit on the wire must not lose them.
    rt.put(CTX, "c", "3").unwrap();
    let n1 = rt.wait_notify(T).unwrap();
    let n2 = rt.wait_notify(T).unwrap();
    let mut tokens = vec![n1.token, n2.token];
    tokens.sort();
    assert_eq!(tokens, vec![1, 2]);
}

#[test]
fn lass_rejects_remote_clients() {
    let net = Network::new();
    let local = net.add_host();
    let remote = net.add_host();
    let srv = AttrSpaceServer::spawn(&net, local, 7000, ServerKind::Local).unwrap();
    // Same host: fine.
    let mut ok = AttrClient::connect(&net, local, srv.addr()).unwrap();
    ok.join(CTX).unwrap();
    // Remote host: connection succeeds at the network level but the
    // server refuses service (§2.1 locality rule).
    let mut bad = AttrClient::connect(&net, remote, srv.addr()).unwrap();
    assert!(bad.join(CTX).is_err());
}

#[test]
fn cass_accepts_remote_clients() {
    let net = Network::new();
    let fe = net.add_host();
    let exec = net.add_host();
    let srv = AttrSpaceServer::spawn(&net, fe, 7001, ServerKind::Central).unwrap();
    let mut c = AttrClient::connect(&net, exec, srv.addr()).unwrap();
    c.join(CTX).unwrap();
    c.put(
        CTX,
        names::TOOL_FRONTEND_ADDR,
        &Addr::new(fe, 2090).to_attr_value(),
    )
    .unwrap();
}

#[test]
fn cass_behind_firewall_reachable_via_proxy() {
    // Execution host in a strict private zone reaches the front-end's
    // CASS through the RM's authorized proxy (Figure 2 topology).
    let net = Network::new();
    let fe = net.add_host();
    let zone = net.add_private_zone(FirewallPolicy::STRICT);
    let exec = net.add_host_in(zone);
    let gw = net.add_host_in(zone);
    let srv = AttrSpaceServer::spawn(&net, fe, 7001, ServerKind::Central).unwrap();
    assert!(AttrClient::connect(&net, exec, srv.addr()).is_err());
    net.authorize_route(gw, srv.addr());
    let proxy = tdp_netsim::proxy::spawn(&net, gw, 9618).unwrap();
    let mut c = AttrClient::connect_via_proxy(&net, exec, proxy.addr(), srv.addr()).unwrap();
    c.join(CTX).unwrap();
    c.put(CTX, "reached", "yes").unwrap();
    assert_eq!(c.try_get(CTX, "reached").unwrap(), "yes");
}

#[test]
fn client_disconnect_releases_context() {
    let (net, host, srv) = world();
    let mut rm = AttrClient::connect(&net, host, srv.addr()).unwrap();
    rm.join(CTX).unwrap();
    {
        let mut rt = AttrClient::connect(&net, host, srv.addr()).unwrap();
        rt.join(CTX).unwrap();
        // rt dropped here without tdp_exit — a crashed daemon.
    }
    // Give the server a beat to process the disconnect.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(srv.context_count(), 1, "rm still holds the context");
    rm.leave(CTX).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(srv.context_count(), 0);
}

#[test]
fn context_destruction_fails_parked_remote_getter() {
    let (net, host, srv) = world();
    let mut rm = AttrClient::connect(&net, host, srv.addr()).unwrap();
    let mut rt = AttrClient::connect(&net, host, srv.addr()).unwrap();
    rm.join(CTX).unwrap();
    rt.join(CTX).unwrap();
    let getter = std::thread::spawn(move || rt.get(CTX, "never"));
    std::thread::sleep(Duration::from_millis(50));
    // RM is the only other member; when it leaves twice... actually RT
    // is parked and still a member, so RM's leave alone does not destroy
    // the context. Drop RM's membership and then RT's own via a second
    // client disconnecting is not possible — instead kill the space by
    // having RM leave and RT's own client being the last member parked.
    rm.leave(CTX).unwrap();
    // Context still alive (RT member). The getter is still parked.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(srv.context_count(), 1);
    // Unblock by putting from a fresh member.
    let mut late = AttrClient::connect(&net, host, srv.addr()).unwrap();
    late.join(CTX).unwrap();
    late.put(CTX, "never", "came").unwrap();
    assert_eq!(getter.join().unwrap().unwrap(), "came");
}

#[test]
fn list_keys_over_network() {
    let (net, host, srv) = world();
    let mut c = AttrClient::connect(&net, host, srv.addr()).unwrap();
    c.join(CTX).unwrap();
    c.put(CTX, &names::mpi_rank_pid(0), "100").unwrap();
    c.put(CTX, &names::mpi_rank_pid(1), "101").unwrap();
    c.put(CTX, "unrelated", "x").unwrap();
    assert_eq!(
        c.list_keys(CTX, names::MPI_RANK_PID_PREFIX).unwrap(),
        vec!["mpi_rank_pid.0", "mpi_rank_pid.1"]
    );
}

#[test]
fn many_contexts_isolated_over_network() {
    // An RM managing several RTs initializes a separate context per RT
    // (§3.2); values must not leak across.
    let (net, host, srv) = world();
    let mut rm = AttrClient::connect(&net, host, srv.addr()).unwrap();
    for i in 0..10u64 {
        rm.join(ContextId(i)).unwrap();
        rm.put(ContextId(i), "pid", &format!("{}", 1000 + i))
            .unwrap();
    }
    for i in 0..10u64 {
        let mut rt = AttrClient::connect(&net, host, srv.addr()).unwrap();
        rt.join(ContextId(i)).unwrap();
        assert_eq!(
            rt.get(CTX.min(ContextId(i)).max(ContextId(i)), "pid")
                .unwrap(),
            format!("{}", 1000 + i)
        );
        rt.leave(ContextId(i)).unwrap();
    }
    assert_eq!(srv.context_count(), 10);
}

#[test]
fn server_shutdown_refuses_new_connections() {
    let (net, host, srv) = world();
    let addr = srv.addr();
    srv.shutdown();
    assert!(AttrClient::connect(&net, host, addr).is_err());
}
