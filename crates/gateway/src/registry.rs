//! The tool registry: named capabilities external clients can invoke
//! through `tool.invoke`.
//!
//! One tool, one file (see `tools/`): a tool is a `Tool` impl with a
//! stable name, a human description, and an `invoke` body that runs
//! against the gateway core. Tools are also the unit of authorisation —
//! an API key's allowlist names tools, not endpoints.

use std::collections::BTreeMap;
use std::sync::Arc;

use tdp_sync::RwLock;

use crate::json::Json;
use crate::rpc::{codes, RpcError};
use crate::server::GatewayCore;

/// Alias-chain recursion limit for [`AliasTool`] (an alias whose target
/// method is `tool.invoke` of another alias, and so on).
pub const MAX_ALIAS_DEPTH: u32 = 8;

/// A named capability invocable through the gateway.
pub trait Tool: Send + Sync {
    /// Stable registry name; also the capability an API key must hold.
    fn name(&self) -> &str;

    /// One-line human description, surfaced by `tool.list`.
    fn description(&self) -> &str;

    /// Run the tool. `depth` counts alias indirections and must be
    /// passed through by tools that re-enter the dispatcher.
    fn invoke(&self, core: &GatewayCore, params: &Json, depth: u32) -> Result<Json, RpcError>;
}

/// Concurrent name → tool map. `BTreeMap` so `tool.list` output is
/// deterministic without a sort at read time.
#[derive(Default)]
pub struct ToolRegistry {
    tools: RwLock<BTreeMap<String, Arc<dyn Tool>>>,
}

impl ToolRegistry {
    pub fn new() -> ToolRegistry {
        ToolRegistry::default()
    }

    /// Add a tool; name collisions are an error (re-registering under a
    /// live gateway would silently change what clients invoke).
    pub fn register(&self, tool: Arc<dyn Tool>) -> Result<(), RpcError> {
        let name = tool.name().to_string();
        if name.is_empty() {
            return Err(RpcError::invalid_params("tool name must be non-empty"));
        }
        let mut tools = self.tools.write();
        if tools.contains_key(&name) {
            return Err(RpcError::new(
                codes::ALREADY_EXISTS,
                format!("tool {name} already registered"),
            ));
        }
        tools.insert(name, tool);
        Ok(())
    }

    /// Remove a tool by name.
    pub fn unregister(&self, name: &str) -> bool {
        self.tools.write().remove(name).is_some()
    }

    pub fn get(&self, name: &str) -> Option<Arc<dyn Tool>> {
        self.tools.read().get(name).cloned()
    }

    /// `(name, description)` pairs, name-sorted.
    pub fn list(&self) -> Vec<(String, String)> {
        self.tools
            .read()
            .iter()
            .map(|(n, t)| (n.clone(), t.description().to_string()))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.tools.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.tools.read().is_empty()
    }
}

/// A closure-backed tool, for hosts embedding the gateway that don't
/// want a struct per tool.
pub struct FnTool<F> {
    name: String,
    description: String,
    f: F,
}

impl<F> FnTool<F>
where
    F: Fn(&GatewayCore, &Json) -> Result<Json, RpcError> + Send + Sync,
{
    pub fn new(name: impl Into<String>, description: impl Into<String>, f: F) -> FnTool<F> {
        FnTool {
            name: name.into(),
            description: description.into(),
            f,
        }
    }
}

impl<F> Tool for FnTool<F>
where
    F: Fn(&GatewayCore, &Json) -> Result<Json, RpcError> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn invoke(&self, core: &GatewayCore, params: &Json, _depth: u32) -> Result<Json, RpcError> {
        (self.f)(core, params)
    }
}

/// The tool `tool.register` creates over the wire: a new name bound to
/// an existing gateway method with default params. Invocation params
/// override the defaults key by key.
pub struct AliasTool {
    pub name: String,
    pub description: String,
    /// Target gateway method (`attr.put`, `proc.list`, `tool.invoke`…).
    pub method: String,
    /// Default params merged under the caller's.
    pub defaults: Json,
}

impl Tool for AliasTool {
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn invoke(&self, core: &GatewayCore, params: &Json, depth: u32) -> Result<Json, RpcError> {
        if depth >= MAX_ALIAS_DEPTH {
            return Err(RpcError::new(
                codes::TOO_DEEP,
                format!("alias chain deeper than {MAX_ALIAS_DEPTH}"),
            ));
        }
        let merged = merge_params(&self.defaults, params);
        // Aliases run with the authority of whoever could invoke the
        // alias: the capability check happened on the alias name.
        core.call_unchecked(&self.method, &merged, depth + 1)
    }
}

/// Object merge: `over`'s keys win, `under` fills the gaps. Non-object
/// `over` replaces `under` entirely.
fn merge_params(under: &Json, over: &Json) -> Json {
    match (under.as_obj(), over.as_obj()) {
        (Some(u), Some(o)) => {
            let mut out: Vec<(String, Json)> = o.to_vec();
            for (k, v) in u {
                if !out.iter().any(|(ok, _)| ok == k) {
                    out.push((k.clone(), v.clone()));
                }
            }
            Json::Obj(out)
        }
        _ => over.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_list_unregister() {
        let reg = ToolRegistry::new();
        reg.register(Arc::new(FnTool::new("b-tool", "second", |_, p| {
            Ok(p.clone())
        })))
        .unwrap();
        reg.register(Arc::new(FnTool::new("a-tool", "first", |_, p| {
            Ok(p.clone())
        })))
        .unwrap();
        assert_eq!(
            reg.list().into_iter().map(|(n, _)| n).collect::<Vec<_>>(),
            ["a-tool", "b-tool"],
            "listing is name-sorted"
        );
        let dup = reg
            .register(Arc::new(FnTool::new("a-tool", "dup", |_, p| Ok(p.clone()))))
            .unwrap_err();
        assert_eq!(dup.code, codes::ALREADY_EXISTS);
        assert!(reg.unregister("a-tool"));
        assert!(!reg.unregister("a-tool"));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn merge_prefers_caller_params() {
        let under = Json::obj([("a", Json::Int(1)), ("b", Json::Int(2))]);
        let over = Json::obj([("b", Json::Int(9)), ("c", Json::Int(3))]);
        let m = merge_params(&under, &over);
        assert_eq!(m.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(m.get("b").unwrap().as_i64(), Some(9));
        assert_eq!(m.get("c").unwrap().as_i64(), Some(3));
    }
}
