//! The gateway itself: dispatch core + assembled daemon.
//!
//! [`GatewayCore`] is the transport-free heart — a method router over
//! the tool registry, the attribute bridge, the process manager, and
//! the keyring. [`Gateway`] wraps a core in the epoll HTTP server and
//! owns the supervision hand-off. Tests drive the core directly;
//! everything external comes in over HTTP.
//!
//! ## Method surface
//!
//! | method           | params                                   | capability      |
//! |------------------|------------------------------------------|-----------------|
//! | `gw.info`        | —                                        | `gw.info`       |
//! | `tool.list`      | —                                        | `tool.list`     |
//! | `tool.invoke`    | `name`, `params?`                        | *the tool name* |
//! | `tool.register`  | `name`, `method`, `description?`, `params?` | `tool.register` |
//! | `tool.unregister`| `name`                                   | `tool.unregister` |
//! | `attr.get`       | `ctx`, `key`, `blocking?`, `timeout_ms?` | `attr.get`      |
//! | `attr.put`       | `ctx`, `key`, `value`                    | `attr.put`      |
//! | `attr.subscribe` | `ctx`, `key`, `only_future?`, `timeout_ms?` | `attr.subscribe` |
//! | `proc.spawn`     | `name`, `host`, `executable`, `args?`, `supervise?` | `proc.spawn` |
//! | `proc.list`      | —                                        | `proc.list`     |
//! | `proc.kill`      | `name`, `sig?`                           | `proc.kill`     |
//! | `proc.crash`     | `name`, `sig?` (fault injection)         | `proc.crash`    |
//!
//! `tool.invoke` is authorised by the *tool's* name so an API key can
//! be scoped to exactly the tools it may run; every other method is
//! authorised by its own name.

use std::sync::Arc;
use std::time::Duration;

use tdp_core::World;
use tdp_ops::{Supervisor, SupervisorConfig};
use tdp_proto::{ContextId, HostId, TdpResult};

use crate::auth::ApiKeys;
use crate::bridge::AttrBridge;
use crate::http::{Handler, HttpRequest, HttpResponse, HttpServer};
use crate::json::Json;
use crate::procs::ProcManager;
use crate::registry::{AliasTool, Tool, ToolRegistry};
use crate::rpc::{self, RpcError, RpcRequest};
use crate::tools::{AttrKeysTool, EchoTool, WorldHealthTool};
use tdp_attrspace::ReconnectPolicy;

/// Ceiling for client-supplied long-poll / blocking-get timeouts, so a
/// client cannot park a worker thread for minutes.
const MAX_CLIENT_TIMEOUT: Duration = Duration::from_secs(30);
const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

/// Gateway tuning.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// HTTP bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// HTTP worker threads (concurrent in-flight requests).
    pub workers: usize,
    /// TDP sessions in the attribute bridge pool — the `n` every HTTP
    /// client multiplexes onto.
    pub pool_size: usize,
    /// Start an ops supervisor and register supervised daemons with it.
    pub supervise: bool,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            pool_size: 8,
            supervise: true,
        }
    }
}

/// Transport-free gateway state: everything `dispatch` needs.
pub struct GatewayCore {
    world: World,
    gw_host: HostId,
    bridge: AttrBridge,
    registry: ToolRegistry,
    keys: ApiKeys,
    procs: ProcManager,
    supervisor: Option<Arc<Supervisor>>,
}

impl GatewayCore {
    /// Build a core over `world`, bridging from `gw_host` to that
    /// host's LASS (started if absent). Registers the built-in tools.
    pub fn new(world: &World, gw_host: HostId, cfg: &GatewayConfig) -> TdpResult<GatewayCore> {
        let lass = world.ensure_lass(gw_host)?;
        // Bridge sessions must survive daemon restarts: generous cap,
        // bounded total patience (a gateway with a dead world should
        // fail requests, not hang them forever).
        let policy = ReconnectPolicy::builder()
            .base(Duration::from_millis(5))
            .cap(Duration::from_millis(200))
            .max_elapsed(Duration::from_secs(10))
            .build();
        let bridge = AttrBridge::connect(world, gw_host, lass, cfg.pool_size, policy)?;
        let supervisor = if cfg.supervise {
            Some(Arc::new(Supervisor::start(
                world,
                gw_host,
                SupervisorConfig::default(),
            )?))
        } else {
            None
        };
        let core = GatewayCore {
            world: world.clone(),
            gw_host,
            bridge,
            registry: ToolRegistry::new(),
            keys: ApiKeys::new(),
            procs: ProcManager::new(world),
            supervisor,
        };
        for tool in [
            Arc::new(EchoTool) as Arc<dyn Tool>,
            Arc::new(AttrKeysTool),
            Arc::new(WorldHealthTool),
        ] {
            core.registry
                .register(tool)
                .map_err(|e| tdp_proto::TdpError::Substrate(e.to_string()))?;
        }
        Ok(core)
    }

    pub fn world(&self) -> &World {
        &self.world
    }

    pub fn gw_host(&self) -> HostId {
        self.gw_host
    }

    pub fn bridge(&self) -> &AttrBridge {
        &self.bridge
    }

    pub fn registry(&self) -> &ToolRegistry {
        &self.registry
    }

    pub fn keys(&self) -> &ApiKeys {
        &self.keys
    }

    pub fn procs(&self) -> &ProcManager {
        &self.procs
    }

    pub fn supervisor(&self) -> Option<&Supervisor> {
        self.supervisor.as_deref()
    }

    // ------------------------------------------------------- dispatch

    /// Full request path: parse, authorise, route, envelope.
    pub fn handle_rpc(&self, body: &str, header_key: Option<&str>) -> Json {
        let req = match rpc::parse_request(body) {
            Ok(r) => r,
            Err(e) => return rpc::response_err(&Json::Null, &e),
        };
        let key = header_key.or(req.api_key.as_deref());
        match self.call(&req, key) {
            Ok(result) => rpc::response_ok(&req.id, result),
            Err(e) => rpc::response_err(&req.id, &e),
        }
    }

    /// Authorise and route one parsed request.
    pub fn call(&self, req: &RpcRequest, key: Option<&str>) -> Result<Json, RpcError> {
        let capability = match req.method.as_str() {
            "tool.invoke" => req
                .params
                .str_field("name")
                .ok_or_else(|| RpcError::invalid_params("tool.invoke needs a name"))?,
            m => m,
        };
        self.keys.check(key, capability)?;
        self.call_unchecked(&req.method, &req.params, 0)
    }

    /// Route with authorisation already decided — the re-entry point
    /// alias tools use (an alias runs with the authority of whoever was
    /// allowed to invoke the alias).
    pub fn call_unchecked(
        &self,
        method: &str,
        params: &Json,
        depth: u32,
    ) -> Result<Json, RpcError> {
        match method {
            "gw.info" => Ok(self.info()),
            "tool.list" => Ok(Json::arr(self.registry.list().into_iter().map(
                |(name, description)| {
                    Json::obj([
                        ("name", Json::from(name)),
                        ("description", Json::from(description)),
                    ])
                },
            ))),
            "tool.invoke" => {
                let name = params
                    .str_field("name")
                    .ok_or_else(|| RpcError::invalid_params("tool.invoke needs a name"))?;
                let tool = self
                    .registry
                    .get(name)
                    .ok_or_else(|| RpcError::invalid_params(format!("no tool named {name}")))?;
                let inner = params
                    .get("params")
                    .cloned()
                    .unwrap_or(Json::Obj(Vec::new()));
                tool.invoke(self, &inner, depth)
            }
            "tool.register" => {
                let name = req_str(params, "name")?;
                let target = req_str(params, "method")?;
                let alias = AliasTool {
                    name: name.to_string(),
                    description: params
                        .str_field("description")
                        .unwrap_or("registered alias")
                        .to_string(),
                    method: target.to_string(),
                    defaults: params
                        .get("params")
                        .cloned()
                        .unwrap_or(Json::Obj(Vec::new())),
                };
                self.registry.register(Arc::new(alias))?;
                Ok(Json::obj([
                    ("registered", Json::from(name)),
                    ("method", Json::from(target)),
                ]))
            }
            "tool.unregister" => {
                let name = req_str(params, "name")?;
                Ok(Json::obj([(
                    "removed",
                    Json::from(self.registry.unregister(name)),
                )]))
            }
            "attr.get" => {
                let (ctx, key) = ctx_key(params)?;
                let timeout = client_timeout(params);
                let blocking = params
                    .get("blocking")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                let value = self.bridge.with_client(ctx, |c| {
                    if blocking {
                        c.get_timeout(ctx, &key, timeout)
                    } else {
                        c.try_get(ctx, &key)
                    }
                })?;
                Ok(Json::obj([
                    ("ctx", Json::from(ctx.0)),
                    ("key", Json::from(key)),
                    ("value", Json::from(value)),
                ]))
            }
            "attr.put" => {
                let (ctx, key) = ctx_key(params)?;
                let value = req_str(params, "value")?.to_string();
                self.bridge.with_client(ctx, |c| c.put(ctx, &key, &value))?;
                Ok(Json::obj([("ok", Json::from(true))]))
            }
            "attr.subscribe" => {
                let (ctx, key) = ctx_key(params)?;
                let only_future = params
                    .get("only_future")
                    .and_then(Json::as_bool)
                    .unwrap_or(true);
                let timeout = client_timeout(params);
                let (token, key, value) =
                    self.bridge
                        .subscribe_once(ctx, &key, only_future, timeout)?;
                Ok(Json::obj([
                    ("token", Json::from(token)),
                    ("key", Json::from(key)),
                    ("value", Json::from(value)),
                ]))
            }
            "proc.spawn" => {
                let name = req_str(params, "name")?;
                let host = params
                    .u64_field("host")
                    .and_then(|h| u32::try_from(h).ok())
                    .map(HostId)
                    .ok_or_else(|| RpcError::invalid_params("proc.spawn needs a host"))?;
                let executable = req_str(params, "executable")?;
                let args: Vec<String> = params
                    .get("args")
                    .and_then(Json::as_arr)
                    .map(|a| {
                        a.iter()
                            .filter_map(Json::as_str)
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                let supervise = params
                    .get("supervise")
                    .and_then(Json::as_bool)
                    .unwrap_or(true);
                let sup = if supervise { self.supervisor() } else { None };
                let pid = self.procs.spawn(name, host, executable, &args, sup)?;
                Ok(Json::obj([
                    ("name", Json::from(name)),
                    ("pid", Json::from(pid.0)),
                    ("supervised", Json::from(sup.is_some())),
                ]))
            }
            "proc.list" => Ok(Json::arr(self.procs.list().into_iter().map(|d| {
                Json::obj([
                    ("name", Json::from(d.name)),
                    ("pid", Json::from(d.pid.0)),
                    ("host", Json::from(d.host.0)),
                    ("executable", Json::from(d.executable)),
                    ("status", Json::from(d.status.to_attr_value())),
                    ("supervised", Json::from(d.supervised)),
                ])
            }))),
            "proc.kill" => {
                let name = req_str(params, "name")?;
                let sig = params.get("sig").and_then(Json::as_i64).unwrap_or(9) as i32;
                let pid = self.procs.kill(name, sig, self.supervisor())?;
                Ok(Json::obj([
                    ("killed", Json::from(name)),
                    ("pid", Json::from(pid.0)),
                ]))
            }
            "proc.crash" => {
                let name = req_str(params, "name")?;
                let sig = params.get("sig").and_then(Json::as_i64).unwrap_or(9) as i32;
                let pid = self.procs.crash(name, sig)?;
                Ok(Json::obj([
                    ("crashed", Json::from(name)),
                    ("pid", Json::from(pid.0)),
                ]))
            }
            other => Err(RpcError::method_not_found(other)),
        }
    }

    fn info(&self) -> Json {
        Json::obj([
            (
                "transport",
                Json::from(format!("{:?}", self.world.transport_mode())),
            ),
            ("gw_host", Json::from(self.gw_host.0)),
            (
                "hosts",
                Json::arr(self.world.hosts().into_iter().map(|h| Json::from(h.0))),
            ),
            ("bridge_sessions", Json::from(self.bridge.pool_size())),
            ("tools", Json::from(self.registry.len())),
            ("daemons", Json::from(self.procs.len())),
            ("open", Json::from(self.keys.is_empty())),
            ("supervised", Json::from(self.supervisor.is_some())),
        ])
    }
}

fn req_str<'p>(params: &'p Json, field: &str) -> Result<&'p str, RpcError> {
    params
        .str_field(field)
        .ok_or_else(|| RpcError::invalid_params(format!("missing string param {field}")))
}

fn ctx_key(params: &Json) -> Result<(ContextId, String), RpcError> {
    let ctx = ContextId(params.u64_field("ctx").unwrap_or(0));
    let key = req_str(params, "key")?.to_string();
    Ok((ctx, key))
}

fn client_timeout(params: &Json) -> Duration {
    params
        .u64_field("timeout_ms")
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_CLIENT_TIMEOUT)
        .min(MAX_CLIENT_TIMEOUT)
}

// ---------------------------------------------------------------- HTTP

/// A running gateway daemon: core + HTTP front end.
pub struct Gateway {
    core: Arc<GatewayCore>,
    http: HttpServer,
}

impl Gateway {
    /// Build a core and serve it per `cfg`.
    pub fn start(world: &World, gw_host: HostId, cfg: GatewayConfig) -> TdpResult<Gateway> {
        let core = Arc::new(GatewayCore::new(world, gw_host, &cfg)?);
        let http = HttpServer::bind(&cfg.addr, cfg.workers, http_handler(Arc::clone(&core)))
            .map_err(|e| tdp_proto::TdpError::Substrate(format!("gateway bind: {e}")))?;
        Ok(Gateway { core, http })
    }

    /// The bound HTTP address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.http.addr()
    }

    pub fn core(&self) -> &Arc<GatewayCore> {
        &self.core
    }

    /// Open HTTP connections right now (the `m` in m+n).
    pub fn open_connections(&self) -> usize {
        self.http.open_connections()
    }

    /// Stop the HTTP server (joins reactor + workers).
    pub fn shutdown(&mut self) {
        self.http.shutdown();
    }
}

/// Routing: `POST /rpc` is JSON-RPC, `GET /health` a liveness probe.
fn http_handler(core: Arc<GatewayCore>) -> Handler {
    Arc::new(
        move |req: &HttpRequest| match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/rpc") | ("POST", "/") => {
                let key = req.header("x-api-key");
                let resp = core.handle_rpc(&req.body_str(), key);
                HttpResponse::json(200, resp.render())
            }
            ("GET", "/health") => HttpResponse::text(200, "ok\n"),
            ("GET", _) => HttpResponse::text(404, "not found\n"),
            _ => HttpResponse::text(405, "method not allowed\n"),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> (World, GatewayCore) {
        let world = World::new();
        let host = world.add_host();
        let cfg = GatewayConfig {
            supervise: false,
            pool_size: 2,
            ..GatewayConfig::default()
        };
        let core = GatewayCore::new(&world, host, &cfg).unwrap();
        (world, core)
    }

    fn rpc(core: &GatewayCore, body: &str) -> Json {
        core.handle_rpc(body, None)
    }

    #[test]
    fn info_and_tool_list() {
        let (_world, core) = core();
        let r = rpc(&core, r#"{"id":1,"method":"gw.info"}"#);
        let info = r.get("result").unwrap();
        assert_eq!(info.get("bridge_sessions").unwrap().as_i64(), Some(2));
        assert_eq!(info.get("open").unwrap().as_bool(), Some(true));
        let r = rpc(&core, r#"{"id":2,"method":"tool.list"}"#);
        let names: Vec<&str> = r
            .get("result")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|t| t.str_field("name"))
            .collect();
        assert_eq!(names, ["attr.keys", "echo", "world.health"]);
    }

    #[test]
    fn attr_roundtrip_over_rpc() {
        let (_world, core) = core();
        let r = rpc(
            &core,
            r#"{"id":1,"method":"attr.put","params":{"ctx":3,"key":"rank","value":"0"}}"#,
        );
        assert!(r.get("error").is_none(), "{}", r.render());
        let r = rpc(
            &core,
            r#"{"id":2,"method":"attr.get","params":{"ctx":3,"key":"rank"}}"#,
        );
        assert_eq!(
            r.get("result").unwrap().str_field("value"),
            Some("0"),
            "{}",
            r.render()
        );
        // Missing key, non-blocking: TDP failure code.
        let r = rpc(
            &core,
            r#"{"id":3,"method":"attr.get","params":{"ctx":3,"key":"absent"}}"#,
        );
        assert_eq!(
            r.get("error").unwrap().get("code").unwrap().as_i64(),
            Some(crate::rpc::codes::TDP_FAILURE)
        );
    }

    #[test]
    fn alias_tools_dispatch_with_merged_params() {
        let (_world, core) = core();
        let r = rpc(
            &core,
            r#"{"id":1,"method":"tool.register","params":{"name":"put-rank","method":"attr.put","params":{"ctx":9,"key":"rank"}}}"#,
        );
        assert!(r.get("error").is_none(), "{}", r.render());
        let r = rpc(
            &core,
            r#"{"id":2,"method":"tool.invoke","params":{"name":"put-rank","params":{"value":"7"}}}"#,
        );
        assert!(r.get("error").is_none(), "{}", r.render());
        let r = rpc(
            &core,
            r#"{"id":3,"method":"attr.get","params":{"ctx":9,"key":"rank"}}"#,
        );
        assert_eq!(r.get("result").unwrap().str_field("value"), Some("7"));
    }

    #[test]
    fn alias_cycles_hit_the_depth_guard() {
        let (_world, core) = core();
        // a invokes b, b invokes a.
        for (name, target) in [("a", "b"), ("b", "a")] {
            let body = format!(
                r#"{{"id":1,"method":"tool.register","params":{{"name":"{name}","method":"tool.invoke","params":{{"name":"{target}"}}}}}}"#
            );
            assert!(rpc(&core, &body).get("error").is_none());
        }
        let r = rpc(
            &core,
            r#"{"id":2,"method":"tool.invoke","params":{"name":"a"}}"#,
        );
        assert_eq!(
            r.get("error").unwrap().get("code").unwrap().as_i64(),
            Some(crate::rpc::codes::TOO_DEEP)
        );
    }

    #[test]
    fn unknown_method_is_32601() {
        let (_world, core) = core();
        let r = rpc(&core, r#"{"id":1,"method":"no.such"}"#);
        assert_eq!(
            r.get("error").unwrap().get("code").unwrap().as_i64(),
            Some(crate::rpc::codes::METHOD_NOT_FOUND)
        );
    }
}
