//! A small HTTP/1.1 server on the wire crate's epoll machinery.
//!
//! One reactor thread owns the non-blocking listener and an
//! [`Epoll`](tdp_wire::sys::Epoll) set; connections are registered
//! `EPOLLONESHOT`, so a fired connection is exclusively the reactor's
//! until it is re-armed. Complete requests are handed to a fixed worker
//! pool over a crossbeam channel; the worker writes the response,
//! drains any pipelined follow-up requests, and re-arms the connection
//! itself (`epoll_ctl` is thread-safe, so no reactor round trip is
//! needed). This is the same shape as the attrspace epoll backend, cut
//! down to request/response instead of framed sessions.
//!
//! Scope: `POST` with `Content-Length` (JSON-RPC) and bare `GET`
//! (health probes). No chunked transfer, no TLS — the gateway fronts a
//! lab network, and clients are the bench harness, curl, and the
//! example programs.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use tdp_sync::Mutex;
use tdp_wire::sys::{Epoll, EventFd, EPOLLIN, EPOLLONESHOT, EPOLLRDHUP};

/// Largest accepted head (request line + headers) in bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted body in bytes.
const MAX_BODY: usize = 4 * 1024 * 1024;
/// How long a worker keeps retrying a `WouldBlock` write before it
/// declares the client stalled and drops the connection.
const WRITE_STALL: Duration = Duration::from_secs(5);

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKEUP: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// One parsed inbound request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    pub method: String,
    pub path: String,
    /// Header names lowercased; values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// The response a handler returns.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl HttpResponse {
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain",
            body: body.into(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            _ => "Error",
        }
    }

    fn render(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
                self.status,
                self.reason(),
                self.content_type,
                self.body.len(),
                if keep_alive { "keep-alive" } else { "close" },
            )
            .as_bytes(),
        );
        out.extend_from_slice(&self.body);
        out
    }
}

/// Request handler. Must be cheap to call concurrently; one invocation
/// per in-flight request, from worker threads.
pub type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

// ------------------------------------------------------------- parsing

/// Outcome of trying to cut one request off the front of a read buffer.
enum Parsed {
    /// Not enough bytes yet.
    Partial,
    /// One full request; `consumed` bytes should be drained.
    Done(HttpRequest, usize),
    /// Unrecoverable framing problem; connection must close.
    Bad(&'static str),
}

fn parse_one(buf: &[u8]) -> Parsed {
    let head_end = match find_head_end(buf) {
        Some(i) => i,
        None if buf.len() > MAX_HEAD => return Parsed::Bad("header section too large"),
        None => return Parsed::Partial,
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return Parsed::Bad("non-UTF-8 header section"),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Parsed::Bad("malformed request line"),
    };
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parsed::Bad("malformed header line");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = match value.parse() {
                Ok(n) => n,
                Err(_) => return Parsed::Bad("bad content-length"),
            };
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY {
        return Parsed::Bad("body too large");
    }
    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Parsed::Partial;
    }
    let req = HttpRequest {
        method,
        path,
        headers,
        body: buf[body_start..total].to_vec(),
    };
    Parsed::Done(req, total)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn wants_close(req: &HttpRequest) -> bool {
    matches!(req.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
}

// ---------------------------------------------------------- connection

struct Conn {
    stream: TcpStream,
    token: u64,
    /// Bytes read off the socket but not yet consumed as requests.
    buf: Mutex<Vec<u8>>,
}

impl Conn {
    fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }
}

struct Shared {
    epoll: Epoll,
    wakeup: EventFd,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    handler: Handler,
    stop: AtomicBool,
}

impl Shared {
    fn close(&self, conn: &Conn) {
        // Delete before dropping the map entry so the reactor can never
        // see a readiness event for a token it just freed.
        let _ = self.epoll.delete(conn.fd());
        self.conns.lock().remove(&conn.token);
    }

    fn rearm(&self, conn: &Conn) {
        if self
            .epoll
            .modify(conn.fd(), EPOLLIN | EPOLLRDHUP | EPOLLONESHOT, conn.token)
            .is_err()
        {
            self.close(conn);
        }
    }
}

// -------------------------------------------------------------- server

/// A running HTTP server; dropping it (or calling [`shutdown`]) stops
/// the reactor and worker threads.
///
/// [`shutdown`]: HttpServer::shutdown
pub struct HttpServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// reactor plus `workers` handler threads.
    pub fn bind(addr: &str, workers: usize, handler: Handler) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            epoll: Epoll::new()?,
            wakeup: EventFd::new()?,
            conns: Mutex::new(HashMap::new()),
            handler,
            stop: AtomicBool::new(false),
        });
        shared
            .epoll
            .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        shared
            .epoll
            .add(shared.wakeup.fd(), EPOLLIN, TOKEN_WAKEUP)?;

        let (tx, rx) = channel::unbounded::<Arc<Conn>>();
        let mut threads = Vec::new();
        for i in 0..workers.max(1) {
            let rx: Receiver<Arc<Conn>> = rx.clone();
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gw-http-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn http worker"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("gw-http-reactor".into())
                    .spawn(move || reactor_loop(&shared, &listener, &tx))
                    .expect("spawn http reactor"),
            );
        }
        Ok(HttpServer {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently-open client connections.
    pub fn open_connections(&self) -> usize {
        self.shared.conns.lock().len()
    }

    /// Stop accepting, close all connections, join all threads.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wakeup.signal();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.shared.conns.lock().clear();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn reactor_loop(shared: &Shared, listener: &TcpListener, tx: &Sender<Arc<Conn>>) {
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events = [tdp_wire::sys::EpollEvent {
        events: 0,
        token: 0,
    }; 64];
    while !shared.stop.load(Ordering::SeqCst) {
        let ready = match shared.epoll.wait(&mut events, 200) {
            Ok(r) => r,
            Err(_) => break,
        };
        // Copy tokens out: handling may mutate the conn map.
        let tokens: Vec<u64> = ready.iter().map(|e| e.token).collect();
        for token in tokens {
            match token {
                TOKEN_WAKEUP => shared.wakeup.drain(),
                TOKEN_LISTENER => accept_all(shared, listener, &mut next_token),
                t => {
                    let conn = shared.conns.lock().get(&t).cloned();
                    if let Some(conn) = conn {
                        pump_conn(shared, &conn, tx);
                    }
                }
            }
        }
    }
    // Closing the epoll fd (via Drop) detaches every registration; the
    // conn sockets close when their Arcs drop with the map.
}

fn accept_all(shared: &Shared, listener: &TcpListener, next: &mut u64) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next;
                *next += 1;
                let conn = Arc::new(Conn {
                    stream,
                    token,
                    buf: Mutex::new(Vec::new()),
                });
                shared.conns.lock().insert(token, Arc::clone(&conn));
                if shared
                    .epoll
                    .add(conn.fd(), EPOLLIN | EPOLLRDHUP | EPOLLONESHOT, token)
                    .is_err()
                {
                    shared.conns.lock().remove(&token);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Read whatever the socket has, then either dispatch a complete
/// request to the workers or re-arm and keep waiting. Runs on the
/// reactor, with the oneshot registration quiesced, so it is the only
/// thread touching this conn.
fn pump_conn(shared: &Shared, conn: &Arc<Conn>, tx: &Sender<Arc<Conn>>) {
    let mut eof = false;
    {
        let mut buf = conn.buf.lock();
        let mut chunk = [0u8; 8192];
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
    }
    let complete = {
        let buf = conn.buf.lock();
        !buf.is_empty() && head_complete(&buf)
    };
    if complete {
        // Hand the conn to a worker; it re-arms (or closes) when done.
        if tx.send(Arc::clone(conn)).is_err() {
            shared.close(conn);
        }
    } else if eof {
        shared.close(conn);
    } else {
        shared.rearm(conn);
    }
}

/// Cheap completeness probe: workers re-run the full parser, this only
/// decides whether dispatching is worthwhile yet.
fn head_complete(buf: &[u8]) -> bool {
    match parse_one(buf) {
        Parsed::Partial => false,
        Parsed::Done(..) | Parsed::Bad(_) => true,
    }
}

fn worker_loop(shared: &Shared, rx: &Receiver<Arc<Conn>>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let conn = match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(c) => c,
            Err(channel::RecvTimeoutError::Timeout) => continue,
            Err(channel::RecvTimeoutError::Disconnected) => return,
        };
        serve_conn(shared, &conn);
    }
}

/// Answer every complete request already buffered on `conn`, then
/// re-arm it. The oneshot registration is quiescent for the whole call,
/// so the worker has exclusive use of the connection.
fn serve_conn(shared: &Shared, conn: &Arc<Conn>) {
    loop {
        let parsed = {
            let mut buf = conn.buf.lock();
            match parse_one(&buf) {
                Parsed::Done(req, consumed) => {
                    buf.drain(..consumed);
                    Ok(req)
                }
                Parsed::Partial => {
                    drop(buf);
                    shared.rearm(conn);
                    return;
                }
                Parsed::Bad(why) => Err(why),
            }
        };
        match parsed {
            Ok(req) => {
                let resp = (shared.handler)(&req);
                let close = wants_close(&req);
                if !write_all(conn, &resp.render(!close)) || close {
                    shared.close(conn);
                    return;
                }
            }
            Err(why) => {
                let resp = HttpResponse::text(400, format!("bad request: {why}\n"));
                let _ = write_all(conn, &resp.render(false));
                shared.close(conn);
                return;
            }
        }
    }
}

/// Write the whole response, spinning briefly on `WouldBlock` (we never
/// register for `EPOLLOUT`; responses are small and clients that stall
/// a socket for [`WRITE_STALL`] get dropped).
fn write_all(conn: &Conn, mut data: &[u8]) -> bool {
    let deadline = Instant::now() + WRITE_STALL;
    while !data.is_empty() {
        match (&conn.stream).write(data) {
            Ok(0) => return false,
            Ok(n) => data = &data[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return false;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            2,
            Arc::new(|req: &HttpRequest| {
                HttpResponse::json(200, format!("{{\"path\":\"{}\"}}", req.path))
            }),
        )
        .unwrap()
    }

    fn raw_roundtrip(addr: SocketAddr, req: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(req.as_bytes()).unwrap();
        let mut out = String::new();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_get_and_post() {
        let srv = echo_server();
        let out = raw_roundtrip(
            srv.addr(),
            "GET /health HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.ends_with("{\"path\":\"/health\"}"), "{out}");

        let body = r#"{"x":1}"#;
        let out = raw_roundtrip(
            srv.addr(),
            &format!(
                "POST /rpc HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(out.contains("\"path\":\"/rpc\""), "{out}");
    }

    #[test]
    fn keep_alive_serves_sequential_requests() {
        let srv = echo_server();
        let mut s = TcpStream::connect(srv.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        for i in 0..3 {
            s.write_all(format!("GET /r{i} HTTP/1.1\r\n\r\n").as_bytes())
                .unwrap();
            let mut buf = [0u8; 4096];
            let mut got = String::new();
            while !got.contains(&format!("/r{i}")) {
                let n = (&s).read(&mut buf).unwrap();
                assert!(n > 0, "server closed mid-keep-alive");
                got.push_str(&String::from_utf8_lossy(&buf[..n]));
            }
        }
    }

    #[test]
    fn pipelined_requests_all_answered() {
        let srv = echo_server();
        let mut s = TcpStream::connect(srv.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Two requests in one write; second asks to close so
        // read_to_string terminates.
        s.write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.contains("/a") && out.contains("/b"), "{out}");
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let srv = echo_server();
        let out = raw_roundtrip(srv.addr(), "NOT-HTTP\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    }

    #[test]
    fn shutdown_joins_threads() {
        let mut srv = echo_server();
        let addr = srv.addr();
        srv.shutdown();
        // Listener is gone: connecting now fails or is refused quickly.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
    }
}
