//! Process control: spawning, listing, and killing RT daemons on world
//! hosts, with optional hand-off to the ops supervisor.
//!
//! A "daemon" here is a named simos process started from an installed
//! [`ExecImage`]. When a spawn asks for supervision, the manager
//! registers a [`DaemonComponent`] with the [`Supervisor`] whose probe
//! is a live `Os::status` check and whose restart closure respawns the
//! same spec — so a daemon dying under load comes back on the patrol
//! loop without any HTTP client noticing beyond a latency blip.
//!
//! The pid lives behind `Arc<Mutex<Pid>>`, shared between the manager's
//! table and the supervisor's restart closure: a restart updates the
//! pid in place, so a concurrent `proc.list` never sees a dangling
//! entry mid-restart (the B9 bench asserts exactly this).
//!
//! `kill` unregisters from the supervisor *before* signalling: an
//! operator kill must not race the patrol loop into resurrecting the
//! daemon it just removed.

use std::collections::BTreeMap;
use std::sync::Arc;

use tdp_core::{ops::Supervisable, World};
use tdp_ops::Supervisor;
use tdp_proto::{HostId, Pid, ProcStatus, TdpError, TdpResult};
use tdp_simos::{fn_program, ExecImage, ProcSpec};
use tdp_sync::Mutex;

use std::time::Duration;

/// Install the stock gateway daemon image at `path` on `host`: a
/// process that idles forever (interruptibly, so kills are prompt) and
/// exposes a couple of symbols for tools to instrument. The `serve`
/// binary installs this on every host at startup; embedders with real
/// workloads install their own images instead.
pub fn install_daemon_image(world: &World, host: HostId, path: &str) {
    let image = ExecImage::new(
        ["main", "serve_loop"],
        Arc::new(|_args| {
            fn_program(|ctx| loop {
                ctx.sleep(Duration::from_millis(50));
            })
        }),
    );
    world.os().fs().install_exec(host, path, image);
}

struct Entry {
    host: HostId,
    executable: String,
    args: Vec<String>,
    pid: Arc<Mutex<Pid>>,
    supervised: bool,
}

/// One row of `proc.list`.
#[derive(Debug, Clone)]
pub struct DaemonInfo {
    pub name: String,
    pub pid: Pid,
    pub host: HostId,
    pub executable: String,
    pub args: Vec<String>,
    pub status: ProcStatus,
    pub supervised: bool,
}

/// Named-daemon table fronting `Os::spawn`/`Os::kill`.
pub struct ProcManager {
    world: World,
    daemons: Mutex<BTreeMap<String, Entry>>,
}

impl ProcManager {
    pub fn new(world: &World) -> ProcManager {
        ProcManager {
            world: world.clone(),
            daemons: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn len(&self) -> usize {
        self.daemons.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.daemons.lock().is_empty()
    }

    /// Spawn `executable` on `host` under `name`. With a supervisor,
    /// the daemon is registered for auto-restart as `gw.<name>`.
    pub fn spawn(
        &self,
        name: &str,
        host: HostId,
        executable: &str,
        args: &[String],
        supervisor: Option<&Supervisor>,
    ) -> TdpResult<Pid> {
        if name.is_empty() {
            return Err(TdpError::Protocol("daemon name must be non-empty".into()));
        }
        {
            let daemons = self.daemons.lock();
            if daemons.contains_key(name) {
                return Err(TdpError::Protocol(format!("daemon {name} already running")));
            }
        }
        let spec = ProcSpec::new(host, executable).args(args.iter().cloned());
        let pid = self.world.os().spawn(spec)?;
        let pid_cell = Arc::new(Mutex::new(pid));
        self.daemons.lock().insert(
            name.to_string(),
            Entry {
                host,
                executable: executable.to_string(),
                args: args.to_vec(),
                pid: Arc::clone(&pid_cell),
                supervised: supervisor.is_some(),
            },
        );
        if let Some(sup) = supervisor {
            let component = Arc::new(DaemonComponent {
                world: self.world.clone(),
                name: name.to_string(),
                pid: Arc::clone(&pid_cell),
            });
            let world = self.world.clone();
            let executable = executable.to_string();
            let args = args.to_vec();
            sup.register(component, move || {
                let spec = ProcSpec::new(host, executable.as_str()).args(args.iter().cloned());
                let new_pid = world.os().spawn(spec)?;
                *pid_cell.lock() = new_pid;
                Ok(())
            });
        }
        Ok(pid)
    }

    /// Current pid of a named daemon.
    pub fn pid_of(&self, name: &str) -> Option<Pid> {
        self.daemons.lock().get(name).map(|e| *e.pid.lock())
    }

    /// Snapshot every daemon, name-sorted, with live status. A daemon
    /// mid-restart reports its old pid's terminal status rather than
    /// erroring — `proc.list` must never fail because a restart is in
    /// flight.
    pub fn list(&self) -> Vec<DaemonInfo> {
        let daemons = self.daemons.lock();
        daemons
            .iter()
            .map(|(name, e)| {
                let pid = *e.pid.lock();
                let status = self
                    .world
                    .os()
                    .status(pid)
                    .unwrap_or(ProcStatus::Exited(-1));
                DaemonInfo {
                    name: name.clone(),
                    pid,
                    host: e.host,
                    executable: e.executable.clone(),
                    args: e.args.clone(),
                    status,
                    supervised: e.supervised,
                }
            })
            .collect()
    }

    /// Kill a named daemon: unregister from the supervisor first (an
    /// operator kill is not a crash), then signal, then drop the entry.
    pub fn kill(&self, name: &str, sig: i32, supervisor: Option<&Supervisor>) -> TdpResult<Pid> {
        let entry = self
            .daemons
            .lock()
            .remove(name)
            .ok_or_else(|| TdpError::Protocol(format!("no daemon named {name}")))?;
        if entry.supervised {
            if let Some(sup) = supervisor {
                sup.unregister(&format!("gw.{name}"));
            }
        }
        let pid = *entry.pid.lock();
        // The process may already be dead (that's fine — the point was
        // removal); surface only non-trivial failures.
        match self.world.os().kill(pid, sig) {
            Ok(()) | Err(TdpError::NoSuchProcess(_)) => Ok(pid),
            Err(e) => Err(e),
        }
    }

    /// Kill the daemon's *process* without touching the table or the
    /// supervisor registration — the fault injection used by tests and
    /// the B9 bench to exercise the restart path.
    pub fn crash(&self, name: &str, sig: i32) -> TdpResult<Pid> {
        let pid = self
            .pid_of(name)
            .ok_or_else(|| TdpError::Protocol(format!("no daemon named {name}")))?;
        self.world.os().kill(pid, sig)?;
        Ok(pid)
    }
}

/// Supervisable view of one managed daemon: probe is "the current pid
/// is non-terminal".
pub struct DaemonComponent {
    world: World,
    name: String,
    pid: Arc<Mutex<Pid>>,
}

impl Supervisable for DaemonComponent {
    fn ops_name(&self) -> String {
        format!("gw.{}", self.name)
    }

    fn ops_probe(&self) -> TdpResult<()> {
        let pid = *self.pid.lock();
        let status = self.world.os().status(pid)?;
        if status.is_terminal() {
            Err(TdpError::Protocol(format!(
                "daemon {} pid {pid} is {status:?}",
                self.name
            )))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_list_kill_roundtrip() {
        let world = World::new();
        let host = world.add_host();
        install_daemon_image(&world, host, "/bin/rtd");
        let procs = ProcManager::new(&world);
        let pid = procs.spawn("rt1", host, "/bin/rtd", &[], None).unwrap();
        assert_eq!(procs.pid_of("rt1"), Some(pid));
        let rows = procs.list();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "rt1");
        assert!(!rows[0].status.is_terminal());
        assert!(!rows[0].supervised);
        // Duplicate names refuse.
        assert!(procs.spawn("rt1", host, "/bin/rtd", &[], None).is_err());
        let killed = procs.kill("rt1", 9, None).unwrap();
        assert_eq!(killed, pid);
        assert!(procs.is_empty());
        assert!(procs.kill("rt1", 9, None).is_err());
    }

    #[test]
    fn probe_fails_after_crash() {
        let world = World::new();
        let host = world.add_host();
        install_daemon_image(&world, host, "/bin/rtd");
        let procs = ProcManager::new(&world);
        procs.spawn("rt1", host, "/bin/rtd", &[], None).unwrap();
        let comp = DaemonComponent {
            world: world.clone(),
            name: "rt1".into(),
            pid: Arc::new(Mutex::new(procs.pid_of("rt1").unwrap())),
        };
        assert!(comp.ops_probe().is_ok());
        procs.crash("rt1", 9).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while comp.ops_probe().is_ok() {
            assert!(
                std::time::Instant::now() < deadline,
                "crashed daemon still probes healthy"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
