//! A small hand-rolled JSON value — parser and writer — for the
//! gateway's wire format.
//!
//! The workspace's `serde_json` shim (see `stubs/README.md`) serializes
//! Rust types; the gateway instead needs a *dynamic* document model:
//! JSON-RPC params are schemaless (each tool defines its own), and the
//! registry forwards them opaquely. Rather than coupling the external
//! wire format to the shim's internal `Content` tree, this module owns
//! the ~250 lines directly — the same no-new-dependencies precedent as
//! `tdp-wire`'s `sys` module.
//!
//! Numbers: integers in `i64` range stay exact ([`Json::Int`]); other
//! numbers ride as `f64` ([`Json::Num`]). Parsing enforces a nesting
//! depth limit so hostile bodies cannot overflow the stack.

use std::fmt;

/// Maximum container nesting the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered list of pairs (insertion order preserved;
    /// lookups are linear — gateway payloads are small).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Member of an object (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(f) if f.fract() == 0.0 && f.abs() < i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Convenience: string member of an object.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: integer member of an object.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Serialize to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(f) => {
                if f.is_finite() {
                    out.push_str(&f.to_string());
                } else {
                    // JSON has no Inf/NaN; null keeps the document valid.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.fail("trailing characters after document"));
        }
        Ok(v)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(i64::from(n))
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        i64::try_from(n).map_or(Json::Num(n as f64), Json::Int)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Num(f)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Parse failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null").map(|()| Json::Null),
            Some(b't') => self.literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.fail("expected `:`"));
            }
            self.pos += 1;
            pairs.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so any plain-byte run is UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.fail("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    self.literal("\\u")
                        .map_err(|_| self.fail("lone high surrogate"))?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.fail("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.fail("invalid codepoint"))?);
            }
            _ => return Err(self.fail("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.fail("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.fail("malformed \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.fail("malformed \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.fail("malformed number"));
        }
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.fail("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("42", Json::Int(42)),
            ("-3", Json::Int(-3)),
            ("1.5", Json::Num(1.5)),
        ] {
            assert_eq!(Json::parse(text).unwrap(), v);
            assert_eq!(Json::parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn containers_and_access() {
        let j = Json::parse(r#"{"a": [1, {"b": "x"}], "n": 7}"#).unwrap();
        assert_eq!(j.u64_field("n"), Some(7));
        let arr = j.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].str_field("b"), Some("x"));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote\" back\\ nl\n tab\t unicode é🚀 ctl\u{01}";
        let rendered = Json::Str(s.into()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(s));
        // Surrogate pair form parses too.
        assert_eq!(Json::parse(r#""🚀""#).unwrap().as_str(), Some("🚀"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"x", "tru", "1 2", "{\"a\" 1}", "{a:1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn rejects_unbounded_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn object_builder_preserves_order() {
        let j = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(j.render(), r#"{"z":1,"a":2}"#);
    }
}
