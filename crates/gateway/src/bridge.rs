//! The attribute bridge: a fixed pool of TDP sessions multiplexing all
//! HTTP clients onto the world's attribute space.
//!
//! This is the m+n story of the paper applied at the gateway boundary:
//! hundreds of HTTP clients do not get hundreds of TDP sessions — they
//! share `pool_size` reliable connections (default 8), checked out per
//! request over a crossbeam channel. Each pooled session is built with
//! [`World::attr_connect_reliable`], so a LASS/CASS restart underneath
//! a pooled connection heals by redial-and-replay instead of surfacing
//! to the HTTP client.
//!
//! Joins are tracked per pooled session and performed lazily: the first
//! operation that touches a context joins it on whichever session it
//! checked out. Reliable sessions replay joins on reconnect, so the
//! tracking stays valid across server restarts.
//!
//! `attr.subscribe` (the long-poll endpoint) deliberately does NOT use
//! the pool: a subscription parks a session until a put fires it, which
//! would starve the pool under load. Each subscribe call dials a fresh
//! dedicated session and drops it when the notification (or timeout)
//! arrives.

use std::collections::HashSet;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use tdp_attrspace::{AttrClient, ReconnectPolicy};
use tdp_core::World;
use tdp_proto::{Addr, ContextId, TdpError, TdpResult};
use tdp_sync::Mutex;

/// How long a request waits for a pooled session before giving up
/// (every session busy in a long blocking get ⇒ backpressure, not
/// unbounded queueing).
const CHECKOUT_TIMEOUT: Duration = Duration::from_secs(10);

struct PoolSession {
    client: AttrClient,
    joined: HashSet<ContextId>,
}

/// Fixed-size pool of reliable attribute sessions.
pub struct AttrBridge {
    world: World,
    gw_host: tdp_proto::HostId,
    server: Addr,
    policy: ReconnectPolicy,
    slots: (Sender<PoolSession>, Receiver<PoolSession>),
    pool_size: usize,
    /// Monotonic token source for `attr.subscribe`.
    next_token: Mutex<u64>,
}

impl AttrBridge {
    /// Dial `pool_size` reliable sessions from `gw_host` to `server`.
    pub fn connect(
        world: &World,
        gw_host: tdp_proto::HostId,
        server: Addr,
        pool_size: usize,
        policy: ReconnectPolicy,
    ) -> TdpResult<AttrBridge> {
        let pool_size = pool_size.max(1);
        let (tx, rx) = bounded(pool_size);
        for _ in 0..pool_size {
            let client = world.attr_connect_reliable(gw_host, server, policy)?;
            let _ = tx.send(PoolSession {
                client,
                joined: HashSet::new(),
            });
        }
        Ok(AttrBridge {
            world: world.clone(),
            gw_host,
            server,
            policy,
            slots: (tx, rx),
            pool_size,
            next_token: Mutex::new(1),
        })
    }

    /// Number of TDP sessions this bridge holds (the `n` in m+n).
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Check out a session, make sure `ctx` is joined on it, run `f`,
    /// return the session to the pool. The pool is the concurrency
    /// limit: at most `pool_size` attribute operations are in flight
    /// regardless of how many HTTP clients are connected.
    pub fn with_client<R>(
        &self,
        ctx: ContextId,
        f: impl FnOnce(&mut AttrClient) -> TdpResult<R>,
    ) -> TdpResult<R> {
        let mut slot = self
            .slots
            .1
            .recv_timeout(CHECKOUT_TIMEOUT)
            .map_err(|_| TdpError::Timeout)?;
        let result = self.run_on(&mut slot, ctx, f);
        // A failed op does not poison the slot: reliable clients redial
        // on the next use, and join replay keeps `joined` truthful.
        let _ = self.slots.0.send(slot);
        result
    }

    fn run_on<R>(
        &self,
        slot: &mut PoolSession,
        ctx: ContextId,
        f: impl FnOnce(&mut AttrClient) -> TdpResult<R>,
    ) -> TdpResult<R> {
        if !slot.joined.contains(&ctx) {
            slot.client.join(ctx)?;
            slot.joined.insert(ctx);
        }
        f(&mut slot.client)
    }

    /// Long-poll one notification for `key` in `ctx` on a dedicated
    /// session (see module docs for why not the pool). Returns
    /// `(token, key, value)`.
    pub fn subscribe_once(
        &self,
        ctx: ContextId,
        key: &str,
        only_future: bool,
        timeout: Duration,
    ) -> TdpResult<(u64, String, String)> {
        let token = {
            let mut t = self.next_token.lock();
            *t += 1;
            *t
        };
        let mut client =
            self.world
                .attr_connect_reliable(self.gw_host, self.server, self.policy)?;
        client.join(ctx)?;
        client.subscribe(ctx, key, token, only_future)?;
        let n = client.wait_notify(timeout)?;
        Ok((n.token, n.key, n.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_multiplexes_and_bounds_sessions() {
        let world = World::new();
        let host = world.add_host();
        let lass = world.ensure_lass(host).unwrap();
        let before = world.attr_session_count();
        let bridge =
            AttrBridge::connect(&world, host, lass, 4, ReconnectPolicy::default()).unwrap();
        let ctx = ContextId(7);
        bridge.with_client(ctx, |c| c.put(ctx, "k", "v")).unwrap();
        // Many operations; the channel pool is FIFO so all four slots
        // get exercised.
        for i in 0..32 {
            let got = bridge.with_client(ctx, |c| c.get(ctx, "k")).unwrap();
            assert_eq!(got, "v", "op {i}");
        }
        // The server registers sessions on its accept thread; poll
        // briefly, then pin the count: exactly four sessions, however
        // many operations flowed.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while world.attr_session_count() != before + 4 {
            assert!(
                std::time::Instant::now() < deadline,
                "expected {} sessions, have {}",
                before + 4,
                world.attr_session_count()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        for _ in 0..16 {
            bridge.with_client(ctx, |c| c.get(ctx, "k")).unwrap();
        }
        assert_eq!(world.attr_session_count(), before + 4);
    }

    #[test]
    fn subscribe_once_sees_a_future_put() {
        let world = World::new();
        let host = world.add_host();
        let lass = world.ensure_lass(host).unwrap();
        let bridge =
            AttrBridge::connect(&world, host, lass, 1, ReconnectPolicy::default()).unwrap();
        let ctx = ContextId(1);
        let b2 = std::sync::Arc::new(bridge);
        let waiter = {
            let b = std::sync::Arc::clone(&b2);
            std::thread::spawn(move || {
                b.subscribe_once(ctx, "signal", true, Duration::from_secs(5))
            })
        };
        // The pooled session stays free while the long-poll parks.
        std::thread::sleep(Duration::from_millis(50));
        b2.with_client(ctx, |c| c.put(ctx, "signal", "go")).unwrap();
        let (_, key, value) = waiter.join().unwrap().unwrap();
        assert_eq!((key.as_str(), value.as_str()), ("signal", "go"));
    }
}
