//! Per-client API-key authentication with tool allowlists.
//!
//! The keyring maps an API key to a list of capability patterns. A
//! request is authorised when the capability it needs matches at least
//! one pattern of the presented key:
//!
//! * `tool.invoke` needs the **tool name** as the capability, so a key
//!   can be scoped to exactly the tools it may run;
//! * every other method needs its own **method name**.
//!
//! Patterns are exact strings or single-`*` globs (`*`, `attr.*`,
//! `*.list`). The policy edges are deliberate:
//!
//! * an **empty keyring** means the gateway runs open — every request
//!   is allowed (the zero-config lab default);
//! * a key with an **empty allowlist** is valid but can do nothing —
//!   registering a key is not granting it anything;
//! * an **unknown key** is always rejected, even on an open method.
//!
//! The keyring is mutable at runtime behind an `RwLock`; a request
//! checks the ring at dispatch time, so revoking a key cuts off the
//! *next* request — calls already past the check complete (see the
//! in-flight mutation test in `tests/gateway_tests.rs`).

use std::collections::HashMap;
use tdp_sync::RwLock;

use crate::rpc::RpcError;

/// Runtime-mutable API-key → allowlist store.
#[derive(Default)]
pub struct ApiKeys {
    ring: RwLock<HashMap<String, Vec<String>>>,
}

impl ApiKeys {
    pub fn new() -> ApiKeys {
        ApiKeys::default()
    }

    /// Insert or replace a key with its capability patterns.
    pub fn grant(&self, key: impl Into<String>, patterns: &[&str]) {
        self.ring
            .write()
            .insert(key.into(), patterns.iter().map(|p| p.to_string()).collect());
    }

    /// Remove a key. Returns whether it existed.
    pub fn revoke(&self, key: &str) -> bool {
        self.ring.write().remove(key).is_some()
    }

    /// Number of registered keys (0 ⇒ the gateway is open).
    pub fn len(&self) -> usize {
        self.ring.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.read().is_empty()
    }

    /// Authorise `capability` for the presented key, per the policy in
    /// the module docs.
    pub fn check(&self, key: Option<&str>, capability: &str) -> Result<(), RpcError> {
        let ring = self.ring.read();
        if ring.is_empty() {
            return Ok(());
        }
        let key = key.ok_or_else(|| RpcError::unauthorized("missing API key"))?;
        let Some(allow) = ring.get(key) else {
            return Err(RpcError::unauthorized("unknown API key"));
        };
        if allow.iter().any(|p| glob_match(p, capability)) {
            Ok(())
        } else {
            Err(RpcError::unauthorized(format!(
                "key not allowed to use {capability}"
            )))
        }
    }
}

/// Match `name` against `pattern`, where the pattern may contain at
/// most one `*` wildcard spanning any run of characters. No `*` means
/// exact match.
pub fn glob_match(pattern: &str, name: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == name,
        Some((prefix, suffix)) => {
            name.len() >= prefix.len() + suffix.len()
                && name.starts_with(prefix)
                && name.ends_with(suffix)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::codes;

    #[test]
    fn empty_keyring_is_open() {
        let keys = ApiKeys::new();
        assert!(keys.check(None, "anything").is_ok());
        assert!(keys.check(Some("whatever"), "tool.list").is_ok());
    }

    #[test]
    fn unknown_key_rejected_once_ring_nonempty() {
        let keys = ApiKeys::new();
        keys.grant("k1", &["*"]);
        assert_eq!(
            keys.check(Some("k2"), "tool.list").unwrap_err().code,
            codes::UNAUTHORIZED
        );
        assert_eq!(
            keys.check(None, "tool.list").unwrap_err().code,
            codes::UNAUTHORIZED
        );
        assert!(keys.check(Some("k1"), "tool.list").is_ok());
    }

    #[test]
    fn globs() {
        assert!(glob_match("*", "x"));
        assert!(glob_match("*", ""));
        assert!(glob_match("attr.*", "attr.get"));
        assert!(!glob_match("attr.*", "tool.list"));
        assert!(glob_match("*.list", "tool.list"));
        assert!(!glob_match("*.list", "tool.invoke"));
        assert!(glob_match("echo", "echo"));
        assert!(!glob_match("echo", "echo2"));
        // Prefix and suffix may not overlap the same characters.
        assert!(!glob_match("ab*ba", "aba"));
        assert!(glob_match("ab*ba", "abba"));
    }

    #[test]
    fn revoke_takes_effect() {
        let keys = ApiKeys::new();
        keys.grant("k", &["echo"]);
        assert!(keys.check(Some("k"), "echo").is_ok());
        assert!(keys.revoke("k"));
        assert!(!keys.revoke("k"));
        // Ring is empty again ⇒ open.
        assert!(keys.check(Some("k"), "echo").is_ok());
        keys.grant("other", &[]);
        assert_eq!(
            keys.check(Some("k"), "echo").unwrap_err().code,
            codes::UNAUTHORIZED
        );
    }
}
