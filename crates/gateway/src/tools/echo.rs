//! `echo`: the liveness tool. Returns its params untouched, tagged
//! with the tool name — the cheapest full round trip through HTTP,
//! JSON-RPC, auth, and the registry, which makes it the unit of load
//! for the B9 bench and the smoke tests.

use crate::json::Json;
use crate::registry::Tool;
use crate::rpc::RpcError;
use crate::server::GatewayCore;

pub struct EchoTool;

impl Tool for EchoTool {
    fn name(&self) -> &str {
        "echo"
    }

    fn description(&self) -> &str {
        "return the given params unchanged (gateway round-trip probe)"
    }

    fn invoke(&self, _core: &GatewayCore, params: &Json, _depth: u32) -> Result<Json, RpcError> {
        Ok(Json::obj([
            ("tool", Json::from("echo")),
            ("params", params.clone()),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        // The name is an API-key capability; changing it is a breaking
        // change for every deployed allowlist.
        assert_eq!(EchoTool.name(), "echo");
    }
}
