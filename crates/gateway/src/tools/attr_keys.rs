//! `attr.keys`: list attribute keys in a context, optionally filtered
//! by prefix. The read-only complement to the `attr.put` endpoint —
//! what a monitoring client is typically granted when it may observe
//! the space but not write it.

use tdp_proto::ContextId;

use crate::json::Json;
use crate::registry::Tool;
use crate::rpc::RpcError;
use crate::server::GatewayCore;

pub struct AttrKeysTool;

impl Tool for AttrKeysTool {
    fn name(&self) -> &str {
        "attr.keys"
    }

    fn description(&self) -> &str {
        "list attribute keys in a context (params: ctx, prefix?)"
    }

    fn invoke(&self, core: &GatewayCore, params: &Json, _depth: u32) -> Result<Json, RpcError> {
        let ctx = ContextId(params.u64_field("ctx").unwrap_or(0));
        let prefix = params.str_field("prefix").unwrap_or("").to_string();
        let keys = core
            .bridge()
            .with_client(ctx, |c| c.list_keys(ctx, &prefix))?;
        Ok(Json::obj([
            ("ctx", Json::from(ctx.0)),
            ("keys", Json::arr(keys.into_iter().map(Json::from))),
        ]))
    }
}
