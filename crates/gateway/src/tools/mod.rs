//! Built-in tools, one per file. Each is a small [`Tool`] impl bound
//! to the live world through the gateway core; together they are the
//! out-of-the-box surface a fresh `tdp-gateway serve` exposes.
//!
//! [`Tool`]: crate::registry::Tool

pub mod attr_keys;
pub mod echo;
pub mod world_health;

pub use attr_keys::AttrKeysTool;
pub use echo::EchoTool;
pub use world_health::WorldHealthTool;
