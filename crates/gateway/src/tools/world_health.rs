//! `world.health`: one call answering "is the world I'm fronting OK?"
//! — host inventory, which daemons are up, live session count, and the
//! supervisor's restart totals. The tool a dashboard polls.

use crate::json::Json;
use crate::registry::Tool;
use crate::rpc::RpcError;
use crate::server::GatewayCore;

pub struct WorldHealthTool;

impl Tool for WorldHealthTool {
    fn name(&self) -> &str {
        "world.health"
    }

    fn description(&self) -> &str {
        "world snapshot: hosts, LASS/CASS placement, sessions, restarts"
    }

    fn invoke(&self, core: &GatewayCore, _params: &Json, _depth: u32) -> Result<Json, RpcError> {
        let world = core.world();
        let mut fields = vec![
            (
                "hosts".to_string(),
                Json::arr(world.hosts().into_iter().map(|h| Json::from(h.0))),
            ),
            (
                "lass_hosts".to_string(),
                Json::arr(world.lass_hosts().into_iter().map(|h| Json::from(h.0))),
            ),
            (
                "cass_host".to_string(),
                world
                    .cass_host()
                    .map(|h| Json::from(h.0))
                    .unwrap_or(Json::Null),
            ),
            (
                "attr_sessions".to_string(),
                Json::from(world.attr_session_count()),
            ),
            ("daemons".to_string(), Json::from(core.procs().len())),
        ];
        if let Some(sup) = core.supervisor() {
            fields.push(("restarts".to_string(), Json::from(sup.restart_total())));
            fields.push((
                "escalated".to_string(),
                Json::arr(sup.escalated().into_iter().map(Json::from)),
            ));
        }
        Ok(Json::Obj(fields))
    }
}
