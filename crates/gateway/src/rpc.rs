//! JSON-RPC 2.0 envelope: request parsing, response building, and the
//! gateway's error-code space.
//!
//! The gateway speaks standard JSON-RPC 2.0 over HTTP POST. Two
//! extensions, both optional:
//!
//! * a top-level `"api_key"` member on the request object, for clients
//!   that cannot set the `x-api-key` HTTP header;
//! * TDP failures are mapped onto the implementation-defined code range
//!   (`-32000` and below) with the `TdpError` rendered in `message`.

use crate::json::Json;
use tdp_proto::TdpError;

/// JSON-RPC error codes the gateway emits.
pub mod codes {
    /// Body was not valid JSON.
    pub const PARSE_ERROR: i64 = -32700;
    /// Envelope was not a valid JSON-RPC request object.
    pub const INVALID_REQUEST: i64 = -32600;
    /// Unknown method.
    pub const METHOD_NOT_FOUND: i64 = -32601;
    /// Params failed validation.
    pub const INVALID_PARAMS: i64 = -32602;
    /// TDP-layer failure (connection, attribute, process errors).
    pub const TDP_FAILURE: i64 = -32000;
    /// Unknown API key, or key not allowed to use the tool.
    pub const UNAUTHORIZED: i64 = -32001;
    /// Name collision on `tool.register` / `proc.spawn`.
    pub const ALREADY_EXISTS: i64 = -32002;
    /// Alias chains recursing past the depth limit.
    pub const TOO_DEEP: i64 = -32003;
}

/// A JSON-RPC failure on its way back to the client.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcError {
    pub code: i64,
    pub message: String,
}

impl RpcError {
    pub fn new(code: i64, message: impl Into<String>) -> RpcError {
        RpcError {
            code,
            message: message.into(),
        }
    }

    pub fn invalid_params(message: impl Into<String>) -> RpcError {
        RpcError::new(codes::INVALID_PARAMS, message)
    }

    pub fn unauthorized(message: impl Into<String>) -> RpcError {
        RpcError::new(codes::UNAUTHORIZED, message)
    }

    pub fn method_not_found(method: &str) -> RpcError {
        RpcError::new(codes::METHOD_NOT_FOUND, format!("unknown method {method}"))
    }
}

impl From<TdpError> for RpcError {
    fn from(e: TdpError) -> RpcError {
        RpcError::new(codes::TDP_FAILURE, e.to_string())
    }
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rpc error {}: {}", self.code, self.message)
    }
}

/// A parsed JSON-RPC request.
#[derive(Debug, Clone)]
pub struct RpcRequest {
    /// Echoed in the response; `Json::Null` for notifications.
    pub id: Json,
    pub method: String,
    pub params: Json,
    /// In-body API key (the `x-api-key` header wins when both present).
    pub api_key: Option<String>,
}

/// Parse one request body.
pub fn parse_request(body: &str) -> Result<RpcRequest, RpcError> {
    let doc = Json::parse(body)
        .map_err(|e| RpcError::new(codes::PARSE_ERROR, format!("bad JSON: {e}")))?;
    if doc.as_obj().is_none() {
        return Err(RpcError::new(
            codes::INVALID_REQUEST,
            "request must be a JSON object",
        ));
    }
    if let Some(v) = doc.str_field("jsonrpc") {
        if v != "2.0" {
            return Err(RpcError::new(
                codes::INVALID_REQUEST,
                format!("unsupported jsonrpc version {v:?}"),
            ));
        }
    }
    let method = doc
        .str_field("method")
        .ok_or_else(|| RpcError::new(codes::INVALID_REQUEST, "missing method"))?
        .to_string();
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    let params = doc.get("params").cloned().unwrap_or(Json::Obj(Vec::new()));
    let api_key = doc.str_field("api_key").map(str::to_string);
    Ok(RpcRequest {
        id,
        method,
        params,
        api_key,
    })
}

/// Build a success response document.
pub fn response_ok(id: &Json, result: Json) -> Json {
    Json::obj([
        ("jsonrpc", Json::from("2.0")),
        ("id", id.clone()),
        ("result", result),
    ])
}

/// Build an error response document.
pub fn response_err(id: &Json, err: &RpcError) -> Json {
    Json::obj([
        ("jsonrpc", Json::from("2.0")),
        ("id", id.clone()),
        (
            "error",
            Json::obj([
                ("code", Json::Int(err.code)),
                ("message", Json::from(err.message.clone())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_request() {
        let r = parse_request(r#"{"jsonrpc":"2.0","id":1,"method":"tool.list"}"#).unwrap();
        assert_eq!(r.method, "tool.list");
        assert_eq!(r.id, Json::Int(1));
        assert_eq!(r.params, Json::Obj(vec![]));
        assert_eq!(r.api_key, None);
    }

    #[test]
    fn parses_params_and_body_key() {
        let r = parse_request(
            r#"{"id":"a","method":"tool.invoke","params":{"name":"echo"},"api_key":"k1"}"#,
        )
        .unwrap();
        assert_eq!(r.params.str_field("name"), Some("echo"));
        assert_eq!(r.api_key.as_deref(), Some("k1"));
    }

    #[test]
    fn rejects_bad_envelopes() {
        assert_eq!(
            parse_request("[]").unwrap_err().code,
            codes::INVALID_REQUEST
        );
        assert_eq!(parse_request("{nope").unwrap_err().code, codes::PARSE_ERROR);
        assert_eq!(
            parse_request(r#"{"id":1}"#).unwrap_err().code,
            codes::INVALID_REQUEST
        );
        assert_eq!(
            parse_request(r#"{"jsonrpc":"1.0","method":"x"}"#)
                .unwrap_err()
                .code,
            codes::INVALID_REQUEST
        );
    }

    #[test]
    fn responses_echo_id() {
        let ok = response_ok(&Json::Int(3), Json::from(true));
        assert_eq!(ok.get("id").unwrap().as_i64(), Some(3));
        assert_eq!(ok.get("result").unwrap().as_bool(), Some(true));
        let err = response_err(&Json::from("x"), &RpcError::method_not_found("nope"));
        assert_eq!(
            err.get("error").unwrap().get("code").unwrap().as_i64(),
            Some(codes::METHOD_NOT_FOUND)
        );
    }

    #[test]
    fn tdp_errors_map_to_the_implementation_range() {
        let e: RpcError = TdpError::Timeout.into();
        assert_eq!(e.code, codes::TDP_FAILURE);
    }
}
