//! The `tdp-gateway` binary.
//!
//! * `tdp-gateway serve [--addr A] [--hosts N] [--duration-secs S]
//!   [--key KEY=pat,pat...]` — boot a world (N hosts, LASS on the
//!   gateway host, stock daemon image installed everywhere), start the
//!   gateway, print the bound address, and serve. Without
//!   `--duration-secs` it serves until killed.
//! * `tdp-gateway smoke` — self-contained smoke run: serve on an
//!   ephemeral port, spawn + invoke + kill over real HTTP from inside
//!   the process, print a trace, exit 0 on success. This is the CI
//!   `gateway_smoke` step.

use std::time::{Duration, Instant};

use tdp_core::World;
use tdp_gateway::{install_daemon_image, Gateway, GatewayConfig, HttpRpcClient, Json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("smoke") => smoke(),
        _ => {
            eprintln!(
                "usage: tdp-gateway serve [--addr A] [--hosts N] [--duration-secs S] [--key K=pat,pat...]\n       tdp-gateway smoke"
            );
            2
        }
    };
    std::process::exit(code);
}

struct ServeOpts {
    addr: String,
    hosts: u64,
    duration: Option<Duration>,
    keys: Vec<(String, Vec<String>)>,
}

fn parse_opts(args: &[String]) -> Result<ServeOpts, String> {
    let mut opts = ServeOpts {
        addr: "127.0.0.1:7780".to_string(),
        hosts: 3,
        duration: None,
        keys: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value()?,
            "--hosts" => {
                opts.hosts = value()?.parse().map_err(|e| format!("--hosts: {e}"))?;
            }
            "--duration-secs" => {
                let s: u64 = value()?
                    .parse()
                    .map_err(|e| format!("--duration-secs: {e}"))?;
                opts.duration = Some(Duration::from_secs(s));
            }
            "--key" => {
                let spec = value()?;
                let (key, pats) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--key wants KEY=pat,pat — got {spec}"))?;
                opts.keys.push((
                    key.to_string(),
                    pats.split(',').map(str::to_string).collect(),
                ));
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.hosts == 0 {
        return Err("--hosts must be at least 1".to_string());
    }
    Ok(opts)
}

/// Boot a world and serve it.
fn serve(args: &[String]) -> i32 {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tdp-gateway: {e}");
            return 2;
        }
    };
    let world = World::new();
    let gw_host = world.add_host();
    install_daemon_image(&world, gw_host, "/bin/rtd");
    for _ in 1..opts.hosts {
        let h = world.add_host();
        install_daemon_image(&world, h, "/bin/rtd");
    }
    let cfg = GatewayConfig {
        addr: opts.addr.clone(),
        ..GatewayConfig::default()
    };
    let gw = match Gateway::start(&world, gw_host, cfg) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("tdp-gateway: {e}");
            return 1;
        }
    };
    for (key, pats) in &opts.keys {
        let pats: Vec<&str> = pats.iter().map(String::as_str).collect();
        gw.core().keys().grant(key.clone(), &pats);
    }
    println!(
        "tdp-gateway serving on http://{} ({} hosts, {} bridge sessions, {})",
        gw.addr(),
        opts.hosts,
        gw.core().bridge().pool_size(),
        if gw.core().keys().is_empty() {
            "open".to_string()
        } else {
            format!("{} api keys", gw.core().keys().len())
        }
    );
    println!("try: curl -s http://{}/health", gw.addr());
    match opts.duration {
        Some(d) => std::thread::sleep(d),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    0
}

/// Serve + invoke + kill over real HTTP, tracing each hop. CI runs
/// this under a deadline; keep it comfortably inside five seconds.
fn smoke() -> i32 {
    let t0 = Instant::now();
    let stamp = |what: &str| println!("[{:>6.1?}] {what}", t0.elapsed());

    let world = World::new();
    let gw_host = world.add_host();
    install_daemon_image(&world, gw_host, "/bin/rtd");
    let mut gw = match Gateway::start(&world, gw_host, GatewayConfig::default()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("tdp-gateway smoke: start: {e}");
            return 1;
        }
    };
    stamp(&format!("serve    http://{}", gw.addr()));

    let run = || -> Result<(), tdp_gateway::RpcError> {
        let mut client = HttpRpcClient::connect(gw.addr())
            .map_err(|e| tdp_gateway::RpcError::new(-1, format!("connect: {e}")))?;
        let r = client.invoke("echo", Json::obj([("ping", Json::from(true))]))?;
        stamp(&format!("invoke   echo -> {}", r.render()));
        let r = client.call(
            "proc.spawn",
            Json::obj([
                ("name", Json::from("rt-smoke")),
                ("host", Json::from(gw_host.0)),
                ("executable", Json::from("/bin/rtd")),
            ]),
        )?;
        stamp(&format!("spawn    rt-smoke -> {}", r.render()));
        let r = client.call("proc.list", Json::Obj(Vec::new()))?;
        stamp(&format!("list     -> {}", r.render()));
        let r = client.call("proc.kill", Json::obj([("name", Json::from("rt-smoke"))]))?;
        stamp(&format!("kill     -> {}", r.render()));
        Ok(())
    };
    let result = run();
    gw.shutdown();
    match result {
        Ok(()) => {
            stamp("smoke OK");
            0
        }
        Err(e) => {
            eprintln!("tdp-gateway smoke: {e}");
            1
        }
    }
}
