//! A minimal blocking JSON-RPC-over-HTTP client, used by the tests,
//! the B9 bench, and the demo example. One keep-alive connection per
//! client; requests are serialised on it (spin up more clients for
//! concurrency — that is exactly what B9 does).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::Json;
use crate::rpc::RpcError;

/// Blocking HTTP/1.1 JSON-RPC client.
pub struct HttpRpcClient {
    stream: TcpStream,
    addr: SocketAddr,
    api_key: Option<String>,
    next_id: i64,
    /// Read-side leftover between responses (keep-alive).
    buf: Vec<u8>,
}

impl HttpRpcClient {
    pub fn connect(addr: SocketAddr) -> std::io::Result<HttpRpcClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(HttpRpcClient {
            stream,
            addr,
            api_key: None,
            next_id: 0,
            buf: Vec::new(),
        })
    }

    /// Present this API key (as the `x-api-key` header) on every call.
    pub fn with_api_key(mut self, key: impl Into<String>) -> HttpRpcClient {
        self.api_key = Some(key.into());
        self
    }

    /// Call `method`; returns the `result` member or the error.
    pub fn call(&mut self, method: &str, params: Json) -> Result<Json, RpcError> {
        self.next_id += 1;
        let req = Json::obj([
            ("jsonrpc", Json::from("2.0")),
            ("id", Json::Int(self.next_id)),
            ("method", Json::from(method)),
            ("params", params),
        ])
        .render();
        let key_header = match &self.api_key {
            Some(k) => format!("x-api-key: {k}\r\n"),
            None => String::new(),
        };
        let http = format!(
            "POST /rpc HTTP/1.1\r\ncontent-type: application/json\r\n{key_header}content-length: {}\r\n\r\n{req}",
            req.len()
        );
        let body = self
            .roundtrip(http.as_bytes())
            .map_err(|e| RpcError::new(crate::rpc::codes::TDP_FAILURE, format!("http: {e}")))?;
        let doc = Json::parse(&body).map_err(|e| {
            RpcError::new(
                crate::rpc::codes::TDP_FAILURE,
                format!("bad response JSON: {e}"),
            )
        })?;
        if let Some(err) = doc.get("error") {
            return Err(RpcError::new(
                err.get("code").and_then(Json::as_i64).unwrap_or(-1),
                err.str_field("message").unwrap_or("unknown error"),
            ));
        }
        Ok(doc.get("result").cloned().unwrap_or(Json::Null))
    }

    /// Shorthand: `tool.invoke` of `name` with `params`.
    pub fn invoke(&mut self, name: &str, params: Json) -> Result<Json, RpcError> {
        self.call(
            "tool.invoke",
            Json::obj([("name", Json::from(name)), ("params", params)]),
        )
    }

    /// One write, then read exactly one HTTP response (headers +
    /// content-length body) off the keep-alive stream. Reconnects once
    /// if the server closed the idle connection under us.
    fn roundtrip(&mut self, request: &[u8]) -> std::io::Result<String> {
        match self.try_roundtrip(request) {
            Ok(body) => Ok(body),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::UnexpectedEof | ErrorKind::BrokenPipe | ErrorKind::ConnectionReset
                ) =>
            {
                self.stream = TcpStream::connect(self.addr)?;
                self.stream.set_nodelay(true)?;
                self.stream
                    .set_read_timeout(Some(Duration::from_secs(60)))?;
                self.buf.clear();
                self.try_roundtrip(request)
            }
            Err(e) => Err(e),
        }
    }

    fn try_roundtrip(&mut self, request: &[u8]) -> std::io::Result<String> {
        self.stream.write_all(request)?;
        loop {
            if let Some((body, consumed)) = split_response(&self.buf)? {
                self.buf.drain(..consumed);
                return Ok(body);
            }
            let mut chunk = [0u8; 8192];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed connection mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// If `buf` holds a complete response, return `(body, total_len)`.
fn split_response(buf: &[u8]) -> std::io::Result<Option<(String, usize)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut content_length = 0usize;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = String::from_utf8_lossy(&buf[head_end + 4..total]).into_owned();
    Ok(Some((body, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_responses_incrementally() {
        let resp = b"HTTP/1.1 200 OK\r\ncontent-length: 4\r\n\r\nbodyNEXT";
        // Partial: nothing yet.
        assert!(split_response(&resp[..10]).unwrap().is_none());
        assert!(split_response(&resp[..40]).unwrap().is_none());
        let (body, consumed) = split_response(resp).unwrap().unwrap();
        assert_eq!(body, "body");
        assert_eq!(&resp[consumed..], b"NEXT");
    }
}
