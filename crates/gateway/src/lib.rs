//! # tdp-gateway — a tool-registry gateway daemon fronting live TDP worlds
//!
//! The dæmon protocol of the paper keeps tools *inside* the world:
//! every party speaks TDP sessions against LASS/CASS attribute spaces.
//! This crate puts a front door on that world for everything that does
//! not speak TDP — dashboards, scripts, `curl` — as a JSON-RPC 2.0
//! service over HTTP/1.1:
//!
//! * **tool registry** ([`registry`], [`tools`]): named capabilities
//!   (`echo`, `attr.keys`, `world.health`, plus runtime-registered
//!   aliases) invoked via `tool.invoke`;
//! * **attribute bridge** ([`bridge`]): all HTTP clients multiplex onto
//!   a fixed pool of reliable TDP sessions — the paper's m+n economy
//!   applied at the gateway boundary, with reconnect-and-replay
//!   underneath so daemon restarts stay invisible;
//! * **process control** ([`procs`]): spawn / list / kill named RT
//!   daemons, with supervised daemons handed to the `tdp-ops`
//!   [`Supervisor`](tdp_ops::Supervisor) for auto-restart;
//! * **auth** ([`auth`]): per-client API keys carrying tool allowlists
//!   (exact names or single-`*` globs);
//! * **transport** ([`http`]): a hand-rolled epoll HTTP/1.1 server on
//!   the wire crate's reactor machinery — no new dependencies.
//!
//! The assembled daemon is [`Gateway`]; the transport-free dispatch
//! core is [`GatewayCore`] (what unit tests drive). [`HttpRpcClient`]
//! is the matching minimal client.
//!
//! ```
//! use tdp_core::World;
//! use tdp_gateway::{Gateway, GatewayConfig, HttpRpcClient, Json};
//!
//! let world = World::new();
//! let host = world.add_host();
//! let mut gw = Gateway::start(&world, host, GatewayConfig {
//!     supervise: false,
//!     ..GatewayConfig::default()
//! }).unwrap();
//! let mut client = HttpRpcClient::connect(gw.addr()).unwrap();
//! let r = client.invoke("echo", Json::obj([("hello", Json::from("world"))])).unwrap();
//! assert_eq!(r.get("params").unwrap().str_field("hello"), Some("world"));
//! gw.shutdown();
//! ```

pub mod auth;
pub mod bridge;
pub mod client;
pub mod http;
pub mod json;
pub mod procs;
pub mod registry;
pub mod rpc;
pub mod server;
pub mod tools;

pub use auth::ApiKeys;
pub use bridge::AttrBridge;
pub use client::HttpRpcClient;
pub use http::{HttpRequest, HttpResponse, HttpServer};
pub use json::Json;
pub use procs::{install_daemon_image, DaemonInfo, ProcManager};
pub use registry::{AliasTool, FnTool, Tool, ToolRegistry};
pub use rpc::{RpcError, RpcRequest};
pub use server::{Gateway, GatewayConfig, GatewayCore};
