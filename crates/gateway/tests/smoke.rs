//! The CI `gateway_smoke` gate: serve + invoke + kill, bounded at five
//! seconds wall clock. Mirrors `tdp-gateway smoke` (the binary form CI
//! also runs) so a hang in either the HTTP reactor or the supervisor
//! hand-off fails fast instead of wedging the workflow.

use std::time::{Duration, Instant};

use tdp_core::World;
use tdp_gateway::{install_daemon_image, Gateway, GatewayConfig, HttpRpcClient, Json};

#[test]
fn serve_invoke_kill_under_five_seconds() {
    let t0 = Instant::now();

    let world = World::new();
    let host = world.add_host();
    install_daemon_image(&world, host, "/bin/rtd");
    let mut gw = Gateway::start(&world, host, GatewayConfig::default()).unwrap();

    let mut c = HttpRpcClient::connect(gw.addr()).unwrap();
    let r = c
        .invoke("echo", Json::obj([("ping", Json::from(true))]))
        .unwrap();
    assert_eq!(
        r.get("params").unwrap().get("ping").unwrap().as_bool(),
        Some(true)
    );
    c.call(
        "proc.spawn",
        Json::obj([
            ("name", Json::from("rt-smoke")),
            ("host", Json::from(host.0)),
            ("executable", Json::from("/bin/rtd")),
        ]),
    )
    .unwrap();
    let rows = c.call("proc.list", Json::Obj(Vec::new())).unwrap();
    assert_eq!(rows.as_arr().unwrap().len(), 1);
    c.call("proc.kill", Json::obj([("name", Json::from("rt-smoke"))]))
        .unwrap();
    gw.shutdown();

    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "smoke took {:?}",
        t0.elapsed()
    );
}
