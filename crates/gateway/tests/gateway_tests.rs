//! End-to-end gateway tests over real HTTP: auth/allowlist edge cases,
//! tool registration, attribute bridging, and supervised daemon
//! restarts driven entirely from the client side.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tdp_core::World;
use tdp_gateway::rpc::codes;
use tdp_gateway::{install_daemon_image, Gateway, GatewayConfig, HttpRpcClient, Json};

fn start_gateway(supervise: bool) -> (World, Gateway) {
    let world = World::new();
    let gw_host = world.add_host();
    install_daemon_image(&world, gw_host, "/bin/rtd");
    let cfg = GatewayConfig {
        supervise,
        pool_size: 4,
        workers: 4,
        ..GatewayConfig::default()
    };
    let gw = Gateway::start(&world, gw_host, cfg).unwrap();
    (world, gw)
}

// ------------------------------------------------------ allowlist edges

#[test]
fn empty_allowlist_denies_everything() {
    let (_world, gw) = start_gateway(false);
    // A registered key with no capabilities: valid identity, zero
    // authority.
    gw.core().keys().grant("observer", &[]);
    let mut c = HttpRpcClient::connect(gw.addr())
        .unwrap()
        .with_api_key("observer");
    for method in ["tool.list", "gw.info", "proc.list"] {
        let err = c.call(method, Json::Obj(Vec::new())).unwrap_err();
        assert_eq!(err.code, codes::UNAUTHORIZED, "{method}");
    }
    let err = c.invoke("echo", Json::Obj(Vec::new())).unwrap_err();
    assert_eq!(err.code, codes::UNAUTHORIZED);
}

#[test]
fn glob_vs_exact_tool_names() {
    let (_world, gw) = start_gateway(false);
    gw.core().keys().grant("exact", &["echo", "tool.list"]);
    gw.core().keys().grant("globby", &["attr.*", "tool.list"]);

    let mut exact = HttpRpcClient::connect(gw.addr())
        .unwrap()
        .with_api_key("exact");
    assert!(exact.invoke("echo", Json::Obj(Vec::new())).is_ok());
    assert!(exact.call("tool.list", Json::Obj(Vec::new())).is_ok());
    // "echo" is not a prefix grant: "echo2" style names stay out, and
    // so do other tools.
    let err = exact
        .invoke("attr.keys", Json::obj([("ctx", Json::Int(0))]))
        .unwrap_err();
    assert_eq!(err.code, codes::UNAUTHORIZED);

    let mut globby = HttpRpcClient::connect(gw.addr())
        .unwrap()
        .with_api_key("globby");
    // attr.* covers the attr.keys tool via tool.invoke...
    assert!(globby
        .invoke("attr.keys", Json::obj([("ctx", Json::Int(0))]))
        .is_ok());
    // ...and the attr.put / attr.get endpoints (method-name caps).
    assert!(globby
        .call(
            "attr.put",
            Json::obj([
                ("ctx", Json::Int(1)),
                ("key", Json::from("k")),
                ("value", Json::from("v")),
            ]),
        )
        .is_ok());
    // But not echo.
    let err = globby.invoke("echo", Json::Obj(Vec::new())).unwrap_err();
    assert_eq!(err.code, codes::UNAUTHORIZED);
}

#[test]
fn unknown_api_key_rejected_even_on_open_methods() {
    let (_world, gw) = start_gateway(false);
    gw.core().keys().grant("real", &["*"]);
    let mut anon = HttpRpcClient::connect(gw.addr()).unwrap();
    let mut wrong = HttpRpcClient::connect(gw.addr())
        .unwrap()
        .with_api_key("nope");
    for c in [&mut anon, &mut wrong] {
        let err = c.call("tool.list", Json::Obj(Vec::new())).unwrap_err();
        assert_eq!(err.code, codes::UNAUTHORIZED);
    }
    // The in-body api_key extension works too.
    let mut body_key = HttpRpcClient::connect(gw.addr()).unwrap();
    let err = body_key
        .call("tool.list", Json::Obj(Vec::new()))
        .unwrap_err();
    assert_eq!(err.code, codes::UNAUTHORIZED);
    let ok = HttpRpcClient::connect(gw.addr())
        .unwrap()
        .with_api_key("real")
        .call("tool.list", Json::Obj(Vec::new()));
    assert!(ok.is_ok());
}

#[test]
fn allowlist_mutation_while_request_in_flight() {
    let (_world, gw) = start_gateway(false);
    gw.core().keys().grant("k", &["attr.get", "attr.put"]);
    let addr = gw.addr();

    // Park a blocking attr.get on a key nobody has put yet: the request
    // is authorised at dispatch time, then waits inside the bridge.
    let waiter = std::thread::spawn(move || {
        let mut c = HttpRpcClient::connect(addr).unwrap().with_api_key("k");
        c.call(
            "attr.get",
            Json::obj([
                ("ctx", Json::Int(5)),
                ("key", Json::from("late")),
                ("blocking", Json::from(true)),
                ("timeout_ms", Json::from(10_000u64)),
            ]),
        )
    });
    std::thread::sleep(Duration::from_millis(150));

    // Revoke mid-flight: the parked request keeps its already-granted
    // authority; only the *next* request sees the new ring.
    gw.core().keys().revoke("k");
    gw.core().keys().grant("writer", &["attr.put"]);
    let mut w = HttpRpcClient::connect(addr).unwrap().with_api_key("writer");
    w.call(
        "attr.put",
        Json::obj([
            ("ctx", Json::Int(5)),
            ("key", Json::from("late")),
            ("value", Json::from("arrived")),
        ]),
    )
    .unwrap();

    let got = waiter.join().unwrap().unwrap();
    assert_eq!(got.str_field("value"), Some("arrived"));

    // The revoked key is dead for new calls.
    let mut revoked = HttpRpcClient::connect(addr).unwrap().with_api_key("k");
    let err = revoked
        .call(
            "attr.get",
            Json::obj([("ctx", Json::Int(5)), ("key", Json::from("late"))]),
        )
        .unwrap_err();
    assert_eq!(err.code, codes::UNAUTHORIZED);
}

// ------------------------------------------------------- tool registry

#[test]
fn register_and_invoke_alias_over_http() {
    let (_world, gw) = start_gateway(false);
    let mut c = HttpRpcClient::connect(gw.addr()).unwrap();
    c.call(
        "tool.register",
        Json::obj([
            ("name", Json::from("mark")),
            ("description", Json::from("stamp a progress attribute")),
            ("method", Json::from("attr.put")),
            (
                "params",
                Json::obj([("ctx", Json::Int(2)), ("key", Json::from("progress"))]),
            ),
        ]),
    )
    .unwrap();
    // Shows up in the listing.
    let tools = c.call("tool.list", Json::Obj(Vec::new())).unwrap();
    let names: Vec<&str> = tools
        .as_arr()
        .unwrap()
        .iter()
        .filter_map(|t| t.str_field("name"))
        .collect();
    assert!(names.contains(&"mark"), "{names:?}");
    // Invoking it writes through to the attribute space.
    c.invoke("mark", Json::obj([("value", Json::from("50%"))]))
        .unwrap();
    let got = c
        .call(
            "attr.get",
            Json::obj([("ctx", Json::Int(2)), ("key", Json::from("progress"))]),
        )
        .unwrap();
    assert_eq!(got.str_field("value"), Some("50%"));
    // Duplicate registration refuses.
    let err = c
        .call(
            "tool.register",
            Json::obj([
                ("name", Json::from("mark")),
                ("method", Json::from("gw.info")),
            ]),
        )
        .unwrap_err();
    assert_eq!(err.code, codes::ALREADY_EXISTS);
}

#[test]
fn subscribe_long_poll_sees_put_from_other_client() {
    let (_world, gw) = start_gateway(false);
    let addr = gw.addr();
    let waiter = std::thread::spawn(move || {
        let mut c = HttpRpcClient::connect(addr).unwrap();
        c.call(
            "attr.subscribe",
            Json::obj([
                ("ctx", Json::Int(3)),
                ("key", Json::from("phase")),
                ("timeout_ms", Json::from(10_000u64)),
            ]),
        )
    });
    std::thread::sleep(Duration::from_millis(100));
    let mut putter = HttpRpcClient::connect(addr).unwrap();
    putter
        .call(
            "attr.put",
            Json::obj([
                ("ctx", Json::Int(3)),
                ("key", Json::from("phase")),
                ("value", Json::from("checkpoint")),
            ]),
        )
        .unwrap();
    let n = waiter.join().unwrap().unwrap();
    assert_eq!(n.str_field("key"), Some("phase"));
    assert_eq!(n.str_field("value"), Some("checkpoint"));
}

// ----------------------------------------------- m+n session multiplex

#[test]
fn many_http_clients_share_the_session_pool() {
    let (world, gw) = start_gateway(false);
    let addr = gw.addr();
    let clients = 24;
    let per_client = 8;
    let mut handles = Vec::new();
    for i in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut c = HttpRpcClient::connect(addr).unwrap();
            for j in 0..per_client {
                let r = c
                    .invoke("echo", Json::obj([("n", Json::Int(i * 100 + j))]))
                    .unwrap();
                assert_eq!(
                    r.get("params").unwrap().get("n").unwrap().as_i64(),
                    Some(i * 100 + j)
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // TDP-side sessions stay bounded by the pool regardless of HTTP
    // fan-in (the reliable clients may redial but never multiply).
    assert!(
        world.attr_session_count() <= gw.core().bridge().pool_size(),
        "sessions {} > pool {}",
        world.attr_session_count(),
        gw.core().bridge().pool_size()
    );
}

// --------------------------------------------- supervised RT daemons

#[test]
fn crashed_daemon_restarts_with_clean_lists() {
    let (_world, gw) = start_gateway(true);
    let addr = gw.addr();
    let mut c = HttpRpcClient::connect(addr).unwrap();
    let gw_host = gw.core().gw_host();
    let spawned = c
        .call(
            "proc.spawn",
            Json::obj([
                ("name", Json::from("rt1")),
                ("host", Json::from(gw_host.0)),
                ("executable", Json::from("/bin/rtd")),
            ]),
        )
        .unwrap();
    assert_eq!(spawned.get("supervised").unwrap().as_bool(), Some(true));
    let pid0 = spawned.get("pid").unwrap().as_u64().unwrap();

    // Hammer proc.list from a side thread while the daemon dies and
    // comes back: every list call must succeed (acceptance criterion).
    let failed = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicUsize::new(0));
    let lister = {
        let failed = Arc::clone(&failed);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = HttpRpcClient::connect(addr).unwrap();
            let mut calls = 0usize;
            while stop.load(Ordering::SeqCst) == 0 {
                if c.call("proc.list", Json::Obj(Vec::new())).is_err() {
                    failed.fetch_add(1, Ordering::SeqCst);
                }
                calls += 1;
            }
            calls
        })
    };

    c.call("proc.crash", Json::obj([("name", Json::from("rt1"))]))
        .unwrap();
    gw.core()
        .supervisor()
        .expect("gateway started with supervision")
        .wait_restarts("gw.rt1", 1, Duration::from_secs(10))
        .unwrap();

    // The daemon is back under the same name with a fresh pid.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let rows = c.call("proc.list", Json::Obj(Vec::new())).unwrap();
        let row = rows
            .as_arr()
            .unwrap()
            .iter()
            .find(|r| r.str_field("name") == Some("rt1"))
            .cloned()
            .expect("rt1 stays listed through the restart");
        if row.str_field("status") == Some("running") {
            assert_ne!(row.get("pid").unwrap().as_u64().unwrap(), pid0);
            break;
        }
        assert!(Instant::now() < deadline, "rt1 never came back: {rows}");
        std::thread::sleep(Duration::from_millis(20));
    }

    stop.store(1, Ordering::SeqCst);
    let calls = lister.join().unwrap();
    assert!(calls > 0);
    assert_eq!(
        failed.load(Ordering::SeqCst),
        0,
        "proc.list failed during restart"
    );

    // Operator kill: daemon leaves the table and stays dead.
    c.call("proc.kill", Json::obj([("name", Json::from("rt1"))]))
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let rows = c.call("proc.list", Json::Obj(Vec::new())).unwrap();
    assert!(
        rows.as_arr().unwrap().is_empty(),
        "killed daemon resurrected: {rows}"
    );
}
