//! # tdp-grid — the Grid layer above the batch systems
//!
//! §1 of the paper: "More recently, attention has focused on Grid
//! computing, using systems such as Globus or Legion … The presence of
//! such a Grid system provides additional services for authentication,
//! data staging, monitoring, and scheduling. While these interfaces are
//! crucial for running programs in this complex environment, they offer
//! **additional layers of interfaces and abstractions that must be
//! negotiated when trying to deploy a run-time tool** in that
//! environment."
//!
//! This crate is that additional layer, Globus-shaped:
//!
//! * an [`rsl`] parser for `&(attribute=value)…` job descriptions;
//! * a [`Gatekeeper`] on a head node that authenticates submissions
//!   (subject + proxy token) and hands them to whichever **local
//!   resource manager** sits behind it — the Condor pool or the LSF
//!   cluster, via the [`LocalRm`] abstraction;
//! * a [`GramClient`] for remote users, streaming job state
//!   (`PENDING → ACTIVE → DONE|FAILED`) back over the submission
//!   connection.
//!
//! The TDP payoff: a tool daemon requested in the RSL runs unchanged
//! through gatekeeper → batch system → starter → TDP — one more layer
//! negotiated with zero new tool code.

pub mod gatekeeper;
pub mod rsl;

pub use gatekeeper::{Gatekeeper, GramClient, GramState, GridJobRequest, LocalRm};
pub use rsl::Rsl;
