//! The gatekeeper: authentication + RSL translation + job management —
//! the GRAM of our Globus-shaped layer.

use crate::rsl::Rsl;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use tdp_condor::{CondorPool, JobState, SubmitDescription, ToolDaemonSpec, Universe};
use tdp_core::World;
use tdp_lsf::{LsfCluster, LsfJobState, LsfRequest};
use tdp_netsim::Conn;
use tdp_proto::{attr::split_multi_value, Addr, HostId, JobId, ProcStatus, TdpError, TdpResult};
use tdp_sync::Mutex;

/// The gatekeeper's well-known port (Globus's 2119).
pub const GATEKEEPER_PORT: u16 = 2119;

/// A grid job request, translated out of RSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridJobRequest {
    pub executable: String,
    pub arguments: Vec<String>,
    /// Parallel width (`count`): tasks under LSF, MPI ranks under
    /// Condor when > 1.
    pub count: u32,
    pub output: Option<String>,
    pub suspend_at_exec: bool,
    pub tool: Option<(String, Vec<String>)>,
}

impl GridJobRequest {
    /// Translate RSL → request. Required: `executable`.
    pub fn from_rsl(rsl: &Rsl) -> TdpResult<GridJobRequest> {
        let executable = rsl
            .get("executable")
            .ok_or_else(|| TdpError::Protocol("RSL: missing (executable=…)".into()))?
            .to_string();
        let arguments = rsl
            .get("arguments")
            .map(split_multi_value)
            .unwrap_or_default();
        let count = rsl.get_int("count").unwrap_or(1).max(1) as u32;
        let tool = rsl.get("tool").map(|cmd| {
            (
                cmd.to_string(),
                rsl.get("tool_args")
                    .map(split_multi_value)
                    .unwrap_or_default(),
            )
        });
        Ok(GridJobRequest {
            executable,
            arguments,
            count,
            output: rsl.get("output").map(str::to_string),
            suspend_at_exec: rsl
                .get("suspend_at_exec")
                .is_some_and(|v| v.eq_ignore_ascii_case("true"))
                || tool.is_some(),
            tool,
        })
    }
}

/// The local resource manager behind the gatekeeper — how GRAM's job
/// manager adapts to "fork", Condor, LSF, … backends.
pub trait LocalRm: Send + Sync + 'static {
    fn name(&self) -> &'static str;
    fn submit(&self, req: &GridJobRequest) -> TdpResult<JobId>;
    /// Wait for the job; `Ok(per-task statuses)` or `Err(reason)`.
    fn wait(
        &self,
        job: JobId,
        timeout: Duration,
    ) -> TdpResult<Result<HashMap<u32, ProcStatus>, String>>;
}

impl LocalRm for CondorPool {
    fn name(&self) -> &'static str {
        "condor"
    }

    fn submit(&self, req: &GridJobRequest) -> TdpResult<JobId> {
        let mut d = SubmitDescription {
            executable: req.executable.clone(),
            arguments: req.arguments.clone(),
            output: req.output.clone(),
            suspend_job_at_exec: req.suspend_at_exec,
            ..SubmitDescription::default()
        };
        if req.count > 1 {
            d.universe = Universe::Mpi;
            d.machine_count = req.count;
        }
        if let Some((cmd, args)) = &req.tool {
            d.tool_daemon = Some(ToolDaemonSpec {
                cmd: cmd.clone(),
                args: args.clone(),
                output: None,
                error: None,
            });
        }
        Ok(CondorPool::submit(self, d))
    }

    fn wait(
        &self,
        job: JobId,
        timeout: Duration,
    ) -> TdpResult<Result<HashMap<u32, ProcStatus>, String>> {
        match self.wait_job(job, timeout)? {
            JobState::Completed(done) => Ok(Ok(done)),
            JobState::Failed(e) => Ok(Err(e)),
            other => Ok(Err(format!("unexpected state {other:?}"))),
        }
    }
}

impl LocalRm for LsfCluster {
    fn name(&self) -> &'static str {
        "lsf"
    }

    fn submit(&self, req: &GridJobRequest) -> TdpResult<JobId> {
        let mut r = LsfRequest::new(req.executable.clone())
            .args(req.arguments.clone())
            .ntasks(req.count);
        if let Some(out) = &req.output {
            r = r.output(out.clone());
        }
        if req.suspend_at_exec {
            r = r.suspended();
        }
        if let Some((cmd, args)) = &req.tool {
            r = r.tool(cmd.clone(), args.clone());
        }
        self.bsub(r)
    }

    fn wait(
        &self,
        job: JobId,
        timeout: Duration,
    ) -> TdpResult<Result<HashMap<u32, ProcStatus>, String>> {
        match self.wait_job(job, timeout)? {
            LsfJobState::Done(done) => Ok(Ok(done)),
            LsfJobState::Failed(e) => Ok(Err(e)),
            other => Ok(Err(format!("unexpected state {other:?}"))),
        }
    }
}

/// Wire messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum GramMsg {
    Submit {
        subject: String,
        token: String,
        rsl: String,
    },
    Accepted {
        job: JobId,
        backend: String,
    },
    Denied {
        reason: String,
    },
    Status {
        state: String,
        detail: String,
    },
}

/// Job state as observed by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GramState {
    Pending,
    Active,
    Done(HashMap<u32, ProcStatus>),
    Failed(String),
}

/// The authenticating front door of a grid site.
pub struct Gatekeeper {
    world: World,
    addr: Addr,
    grid_map: Arc<Mutex<HashMap<String, String>>>,
}

impl Gatekeeper {
    /// Start on the site's head node, forwarding to `backend`.
    pub fn start(world: &World, head: HostId, backend: Arc<dyn LocalRm>) -> TdpResult<Gatekeeper> {
        let listener = world.net().listen(head, GATEKEEPER_PORT)?;
        let addr = listener.local_addr();
        let grid_map: Arc<Mutex<HashMap<String, String>>> = Arc::new(Mutex::new(HashMap::new()));
        let gm = grid_map.clone();
        thread::Builder::new()
            .name("grid-gatekeeper".into())
            .spawn(move || {
                while let Ok(mut conn) = listener.accept() {
                    let backend = backend.clone();
                    let gm = gm.clone();
                    thread::Builder::new()
                        .name("gram-jobmanager".into())
                        .spawn(move || serve(&mut conn, &backend, &gm))
                        .expect("spawn job manager");
                }
            })
            .map_err(|e| TdpError::Substrate(format!("spawn gatekeeper: {e}")))?;
        Ok(Gatekeeper {
            world: world.clone(),
            addr,
            grid_map,
        })
    }

    /// Address clients submit to.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Add a subject to the grid-map (Globus's grid-mapfile): only
    /// authorized subjects with the matching proxy token may submit.
    pub fn authorize(&self, subject: impl Into<String>, token: impl Into<String>) {
        self.grid_map.lock().insert(subject.into(), token.into());
    }

    /// Remove a subject.
    pub fn revoke(&self, subject: &str) {
        self.grid_map.lock().remove(subject);
    }
}

impl tdp_core::Supervisable for Gatekeeper {
    fn ops_name(&self) -> String {
        format!("grid.gatekeeper.{}", self.addr.host.0)
    }

    fn ops_probe(&self) -> TdpResult<()> {
        // Connect-only probe: a full Submit would spawn a job manager
        // session, so just prove the listener is bound and accepting.
        let conn = self.world.net().connect(self.addr.host, self.addr)?;
        drop(conn);
        Ok(())
    }
}

fn serve(conn: &mut Conn, backend: &Arc<dyn LocalRm>, grid_map: &Mutex<HashMap<String, String>>) {
    let Ok(chunk) = conn.recv() else { return };
    let Ok(GramMsg::Submit {
        subject,
        token,
        rsl,
    }) = serde_json::from_slice(&chunk)
    else {
        let _ = send(
            conn,
            &GramMsg::Denied {
                reason: "malformed submission".into(),
            },
        );
        return;
    };
    // Authentication: subject must be in the grid-map with this token.
    if grid_map.lock().get(&subject) != Some(&token) {
        let _ = send(
            conn,
            &GramMsg::Denied {
                reason: format!("subject {subject:?} not authorized"),
            },
        );
        return;
    }
    // Parse + translate + submit.
    let req = match Rsl::parse(&rsl).and_then(|r| GridJobRequest::from_rsl(&r)) {
        Ok(r) => r,
        Err(e) => {
            let _ = send(
                conn,
                &GramMsg::Denied {
                    reason: e.to_string(),
                },
            );
            return;
        }
    };
    let job = match backend.submit(&req) {
        Ok(j) => j,
        Err(e) => {
            let _ = send(
                conn,
                &GramMsg::Denied {
                    reason: e.to_string(),
                },
            );
            return;
        }
    };
    if send(
        conn,
        &GramMsg::Accepted {
            job,
            backend: backend.name().into(),
        },
    )
    .is_err()
    {
        return;
    }
    let _ = send(
        conn,
        &GramMsg::Status {
            state: "ACTIVE".into(),
            detail: String::new(),
        },
    );
    match backend.wait(job, Duration::from_secs(600)) {
        Ok(Ok(done)) => {
            let detail = serde_json::to_string(
                &done
                    .iter()
                    .map(|(k, v)| (*k, v.to_attr_value()))
                    .collect::<HashMap<_, _>>(),
            )
            .unwrap_or_default();
            let _ = send(
                conn,
                &GramMsg::Status {
                    state: "DONE".into(),
                    detail,
                },
            );
        }
        Ok(Err(e)) => {
            let _ = send(
                conn,
                &GramMsg::Status {
                    state: "FAILED".into(),
                    detail: e,
                },
            );
        }
        Err(e) => {
            let _ = send(
                conn,
                &GramMsg::Status {
                    state: "FAILED".into(),
                    detail: e.to_string(),
                },
            );
        }
    }
}

fn send(conn: &Conn, msg: &GramMsg) -> TdpResult<()> {
    let data = serde_json::to_vec(msg).map_err(|e| TdpError::Protocol(format!("encode: {e}")))?;
    conn.send(&data)
}

/// Client-side handle for one grid job.
pub struct GramClient {
    conn: Conn,
    pub job: JobId,
    pub backend: String,
}

impl GramClient {
    /// Submit an RSL request to a gatekeeper. Errors on denial.
    pub fn submit(
        world: &World,
        from: HostId,
        gatekeeper: Addr,
        subject: &str,
        token: &str,
        rsl: &str,
    ) -> TdpResult<GramClient> {
        let mut conn = world.net().connect(from, gatekeeper)?;
        send(
            &conn,
            &GramMsg::Submit {
                subject: subject.to_string(),
                token: token.to_string(),
                rsl: rsl.to_string(),
            },
        )?;
        let chunk = conn.recv_timeout(Duration::from_secs(10))?;
        match serde_json::from_slice(&chunk)
            .map_err(|e| TdpError::Protocol(format!("decode: {e}")))?
        {
            GramMsg::Accepted { job, backend } => Ok(GramClient { conn, job, backend }),
            GramMsg::Denied { reason } => Err(TdpError::Substrate(format!("denied: {reason}"))),
            other => Err(TdpError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Read the next state transition.
    pub fn next_state(&mut self, timeout: Duration) -> TdpResult<GramState> {
        let chunk = self.conn.recv_timeout(timeout)?;
        match serde_json::from_slice(&chunk)
            .map_err(|e| TdpError::Protocol(format!("decode: {e}")))?
        {
            GramMsg::Status { state, detail } => Ok(match state.as_str() {
                "ACTIVE" => GramState::Active,
                "DONE" => {
                    let raw: HashMap<u32, String> =
                        serde_json::from_str(&detail).unwrap_or_default();
                    GramState::Done(
                        raw.into_iter()
                            .filter_map(|(k, v)| ProcStatus::parse(&v).map(|s| (k, s)))
                            .collect(),
                    )
                }
                "FAILED" => GramState::Failed(detail),
                _ => GramState::Pending,
            }),
            other => Err(TdpError::Protocol(format!("unexpected message {other:?}"))),
        }
    }

    /// Wait for the terminal state.
    pub fn wait(&mut self, timeout: Duration) -> TdpResult<GramState> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or(TdpError::Timeout)?;
            match self.next_state(remaining)? {
                GramState::Done(d) => return Ok(GramState::Done(d)),
                GramState::Failed(e) => return Ok(GramState::Failed(e)),
                _ => continue,
            }
        }
    }
}
