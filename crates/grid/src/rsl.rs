//! RSL — the Globus Resource Specification Language, in the
//! `&(attribute=value)(attribute="quoted value")` form GRAM clients
//! spoke in the paper's era.

use std::collections::BTreeMap;
use tdp_proto::{TdpError, TdpResult};

/// A parsed RSL expression: an ordered attribute map (last assignment
/// wins, like real RSL relation lists in conjunction).
///
/// ```
/// use tdp_grid::Rsl;
/// let r = Rsl::parse(r#"&(executable=/bin/a)(arguments="x y")(count=2)"#).unwrap();
/// assert_eq!(r.get("executable"), Some("/bin/a"));
/// assert_eq!(r.get_int("count"), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Rsl {
    attrs: BTreeMap<String, String>,
}

impl Rsl {
    /// Parse `&(a=1)(b="two words")…`. The leading `&` (conjunction) is
    /// optional; attribute names are case-insensitive (stored lowered).
    pub fn parse(text: &str) -> TdpResult<Rsl> {
        let mut rsl = Rsl::default();
        let mut chars = text.chars().peekable();
        // Skip whitespace and the optional leading '&'.
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.peek() == Some(&'&') {
            chars.next();
        }
        loop {
            while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
                chars.next();
            }
            match chars.next() {
                None => break,
                Some('(') => {}
                Some(c) => {
                    return Err(TdpError::Protocol(format!(
                        "RSL: expected '(' , found {c:?}"
                    )))
                }
            }
            // attribute name up to '='
            let mut name = String::new();
            for c in chars.by_ref() {
                if c == '=' {
                    break;
                }
                name.push(c);
            }
            let name = name.trim().to_ascii_lowercase();
            if name.is_empty() {
                return Err(TdpError::Protocol("RSL: empty attribute name".into()));
            }
            // value up to the matching ')', honouring double quotes.
            let mut value = String::new();
            let mut in_quotes = false;
            let mut closed = false;
            for c in chars.by_ref() {
                match c {
                    '"' => in_quotes = !in_quotes,
                    ')' if !in_quotes => {
                        closed = true;
                        break;
                    }
                    c => value.push(c),
                }
            }
            if !closed || in_quotes {
                return Err(TdpError::Protocol(format!(
                    "RSL: unterminated relation for {name:?}"
                )));
            }
            rsl.attrs.insert(name, value.trim().to_string());
        }
        Ok(rsl)
    }

    /// Fetch an attribute.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.attrs
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Fetch and parse an integer attribute.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(|v| v.trim().parse().ok())
    }

    /// All attributes (sorted by name).
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Render back to canonical RSL text.
    pub fn render(&self) -> String {
        let mut out = String::from("&");
        for (k, v) in &self.attrs {
            if v.chars().any(|c| c.is_whitespace() || c == ')' || c == '(') {
                out.push_str(&format!("({k}=\"{v}\")"));
            } else {
                out.push_str(&format!("({k}={v})"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_classic_gram_request() {
        let r = Rsl::parse(r#"&(executable=/bin/app)(arguments="1 2 3")(count=4)(queue=batch)"#)
            .unwrap();
        assert_eq!(r.get("executable"), Some("/bin/app"));
        assert_eq!(r.get("arguments"), Some("1 2 3"));
        assert_eq!(r.get_int("count"), Some(4));
        assert_eq!(r.get("queue"), Some("batch"));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn names_case_insensitive_leading_amp_optional() {
        let r = Rsl::parse("(Executable=foo)(COUNT=2)").unwrap();
        assert_eq!(r.get("executable"), Some("foo"));
        assert_eq!(r.get_int("CoUnT"), Some(2));
    }

    #[test]
    fn quoted_values_keep_parens_and_spaces() {
        let r = Rsl::parse(r#"&(tool_args="-p2090 -P2091 (quoted)")"#).unwrap();
        assert_eq!(r.get("tool_args"), Some("-p2090 -P2091 (quoted)"));
    }

    #[test]
    fn render_roundtrip() {
        let r = Rsl::parse(r#"&(a=1)(b="two words")"#).unwrap();
        let r2 = Rsl::parse(&r.render()).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(
            Rsl::parse("(noequals)").is_ok_and(|r| r.get("noequals").is_none())
                || Rsl::parse("(noequals)").is_err()
        );
        assert!(Rsl::parse("(a=1").is_err(), "unterminated relation");
        assert!(Rsl::parse(r#"(a="unclosed)"#).is_err(), "unclosed quote");
        assert!(Rsl::parse("junk(a=1)").is_err(), "garbage before relation");
        assert!(Rsl::parse("(=v)").is_err(), "empty name");
    }

    #[test]
    fn last_assignment_wins() {
        let r = Rsl::parse("&(a=1)(a=2)").unwrap();
        assert_eq!(r.get("a"), Some("2"));
    }

    #[test]
    fn empty_rsl_is_valid() {
        let r = Rsl::parse("&").unwrap();
        assert_eq!(r.attrs().count(), 0);
    }
}
