//! Grid-layer tests: authentication, RSL translation, and the full
//! stack — remote user → gatekeeper → batch system → TDP → tool.

use std::sync::Arc;
use std::time::Duration;
use tdp_condor::CondorPool;
use tdp_core::World;
use tdp_grid::{Gatekeeper, GramClient, GramState, GridJobRequest, Rsl};
use tdp_lsf::LsfCluster;
use tdp_paradyn::{paradynd_image, ParadynFrontend};
use tdp_proto::{ProcStatus, TdpError};
use tdp_simos::{fn_program, ExecImage};
use tdp_tools::tracey_image;

const T: Duration = Duration::from_secs(60);

fn app_image() -> ExecImage {
    ExecImage::new(
        ["main", "work"],
        Arc::new(|_| {
            fn_program(|ctx| {
                ctx.call("main", |ctx| {
                    for _ in 0..6 {
                        ctx.call("work", |ctx| ctx.compute(10));
                    }
                });
                ctx.write_stdout(b"grid job output");
                0
            })
        }),
    )
}

#[test]
fn rsl_to_request_translation() {
    let rsl = Rsl::parse(
        r#"&(executable=/bin/app)(arguments="a b")(count=3)(tool=paradynd)(tool_args="-a%pid -A")(output=out)"#,
    )
    .unwrap();
    let req = GridJobRequest::from_rsl(&rsl).unwrap();
    assert_eq!(req.executable, "/bin/app");
    assert_eq!(req.arguments, vec!["a", "b"]);
    assert_eq!(req.count, 3);
    assert_eq!(req.output.as_deref(), Some("out"));
    assert!(req.suspend_at_exec, "a tool implies suspend-at-exec");
    let (cmd, args) = req.tool.unwrap();
    assert_eq!(cmd, "paradynd");
    assert_eq!(args, vec!["-a%pid", "-A"]);
    // Missing executable is an error.
    assert!(GridJobRequest::from_rsl(&Rsl::parse("&(count=2)").unwrap()).is_err());
}

#[test]
fn gatekeeper_authenticates_subjects() {
    let world = World::new();
    let pool = Arc::new(CondorPool::build(&world, 1).unwrap());
    pool.install_everywhere("/bin/app", app_image());
    let head = world.add_host();
    let user_host = world.add_host();
    let gk = Gatekeeper::start(&world, head, pool).unwrap();
    gk.authorize("/O=Grid/CN=alice", "proxy-abc");

    // Wrong token.
    let err = match GramClient::submit(
        &world,
        user_host,
        gk.addr(),
        "/O=Grid/CN=alice",
        "wrong",
        "&(executable=/bin/app)",
    ) {
        Err(e) => e,
        Ok(_) => panic!("wrong token must be denied"),
    };
    assert!(matches!(err, TdpError::Substrate(_)), "{err}");
    // Unknown subject.
    assert!(GramClient::submit(
        &world,
        user_host,
        gk.addr(),
        "/O=Grid/CN=mallory",
        "proxy-abc",
        "&(executable=/bin/app)"
    )
    .is_err());
    // Correct credentials work.
    let mut c = GramClient::submit(
        &world,
        user_host,
        gk.addr(),
        "/O=Grid/CN=alice",
        "proxy-abc",
        "&(executable=/bin/app)",
    )
    .unwrap();
    assert_eq!(c.backend, "condor");
    match c.wait(T).unwrap() {
        GramState::Done(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    // Revocation takes effect.
    gk.revoke("/O=Grid/CN=alice");
    assert!(GramClient::submit(
        &world,
        user_host,
        gk.addr(),
        "/O=Grid/CN=alice",
        "proxy-abc",
        "&(executable=/bin/app)"
    )
    .is_err());
}

#[test]
fn bad_rsl_is_denied_not_crashed() {
    let world = World::new();
    let pool = Arc::new(CondorPool::build(&world, 1).unwrap());
    let head = world.add_host();
    let user = world.add_host();
    let gk = Gatekeeper::start(&world, head, pool).unwrap();
    gk.authorize("u", "t");
    let err = match GramClient::submit(&world, user, gk.addr(), "u", "t", "(((") {
        Err(e) => e,
        Ok(_) => panic!("malformed RSL must be denied"),
    };
    assert!(err.to_string().contains("denied"), "{err}");
    // The gatekeeper survives and still accepts valid submissions.
    assert!(GramClient::submit(&world, user, gk.addr(), "u", "t", "&(count=1)").is_err());
}

/// The paper's full nightmare stack, working: a remote user submits
/// through the grid layer to a Condor pool; the starter speaks TDP; the
/// Paradyn daemon attaches and profiles — three layers of middleware,
/// zero tool changes.
#[test]
fn grid_to_condor_with_paradyn() {
    let world = World::new();
    let pool = Arc::new(CondorPool::build(&world, 1).unwrap());
    pool.install_everywhere("/bin/app", app_image());
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let head = world.add_host();
    let user = world.add_host();
    let gk = Gatekeeper::start(&world, head, pool.clone()).unwrap();
    gk.authorize("alice", "tok");

    let rsl = format!(
        r#"&(executable=/bin/app)(tool=paradynd)(tool_args="-m{} -p{} -P{} -a%pid -A")"#,
        fe.host().0,
        fe.control_addr().port.0,
        fe.data_addr().port.0,
    );
    let mut c = GramClient::submit(&world, user, gk.addr(), "alice", "tok", &rsl).unwrap();
    match c.wait(T).unwrap() {
        GramState::Done(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    fe.wait_done(1, T).unwrap();
    assert!(fe
        .samples()
        .iter()
        .any(|s| s.symbol == "work" && s.count == 6));
}

#[test]
fn grid_to_lsf_with_tracey() {
    // Same gatekeeper code, different backend, different tool.
    let world = World::new();
    let master = world.add_host();
    let exec = world.add_host();
    world.os().fs().install_exec(exec, "/bin/app", app_image());
    world
        .os()
        .fs()
        .install_exec(exec, "tracey", tracey_image(world.clone()));
    let cluster = Arc::new(LsfCluster::start(&world, master).unwrap());
    let _sbd = cluster.add_host(exec, 1).unwrap();
    let head = world.add_host();
    let user = world.add_host();
    let gk = Gatekeeper::start(&world, head, cluster).unwrap();
    gk.authorize("bob", "tok2");

    let mut c = GramClient::submit(
        &world,
        user,
        gk.addr(),
        "bob",
        "tok2",
        "&(executable=/bin/app)(tool=tracey)(output=result)",
    )
    .unwrap();
    assert_eq!(c.backend, "lsf");
    match c.wait(T).unwrap() {
        GramState::Done(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    // Output + coverage report staged to the LSF master.
    assert_eq!(
        world.os().fs().read_file(master, "result").unwrap(),
        b"grid job output"
    );
    assert!(world
        .os()
        .fs()
        .list(master, "tracey")
        .iter()
        .any(|f| f.ends_with(".coverage")));
}

#[test]
fn grid_parallel_count_maps_to_mpi_universe() {
    use tdp_mpi::{apps, MpiComm};
    let world = World::new();
    let pool = Arc::new(CondorPool::build(&world, 3).unwrap());
    let comm = MpiComm::new(3);
    pool.install_everywhere("ring", apps::ring(comm, 1, 2));
    let head = world.add_host();
    let user = world.add_host();
    let gk = Gatekeeper::start(&world, head, pool).unwrap();
    gk.authorize("alice", "tok");
    let mut c = GramClient::submit(
        &world,
        user,
        gk.addr(),
        "alice",
        "tok",
        "&(executable=ring)(count=3)",
    )
    .unwrap();
    match c.wait(T).unwrap() {
        GramState::Done(done) => {
            assert_eq!(done.len(), 3);
            assert!(done.values().all(|s| *s == ProcStatus::Exited(0)));
        }
        other => panic!("{other:?}"),
    }
}
