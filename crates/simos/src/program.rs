//! Programs and executable images.
//!
//! A simulated "binary" is an [`ExecImage`]: a factory producing a fresh
//! [`Program`] per exec, plus the metadata a run-time tool reads from a
//! real executable — the **symbol table** ("paradynd parses the
//! executable to discover symbols and find potential instrumentation
//! points", §4.2).

use crate::process::ProcCtx;
use std::sync::Arc;

/// The body of a simulated process. `run` is the program's `main`; its
/// return value is the process exit code.
pub trait Program: Send + 'static {
    fn run(self: Box<Self>, ctx: &mut ProcCtx) -> i32;
}

impl<F> Program for F
where
    F: FnOnce(&mut ProcCtx) -> i32 + Send + 'static,
{
    fn run(self: Box<Self>, ctx: &mut ProcCtx) -> i32 {
        (*self)(ctx)
    }
}

/// Wrap a closure as a boxed [`Program`].
pub fn fn_program<F>(f: F) -> Box<dyn Program>
where
    F: FnOnce(&mut ProcCtx) -> i32 + Send + 'static,
{
    Box::new(f)
}

/// Factory invoked at exec time: receives the argv the process was
/// started with and yields the program body to run.
pub type ProgramFactory = Arc<dyn Fn(&[String]) -> Box<dyn Program> + Send + Sync>;

/// An executable image installed in a host filesystem.
#[derive(Clone)]
pub struct ExecImage {
    /// Symbols a tool can discover and instrument — function names in
    /// the simulated binary.
    pub symbols: Arc<Vec<String>>,
    /// Produces the program body at exec time.
    pub factory: ProgramFactory,
}

impl ExecImage {
    /// Image with an explicit symbol table.
    pub fn new<S: Into<String>>(
        symbols: impl IntoIterator<Item = S>,
        factory: ProgramFactory,
    ) -> ExecImage {
        ExecImage {
            symbols: Arc::new(symbols.into_iter().map(Into::into).collect()),
            factory,
        }
    }

    /// Image from a plain closure, re-run for every exec, with no
    /// symbols (a stripped binary).
    pub fn from_fn<F>(f: F) -> ExecImage
    where
        F: Fn(&[String]) -> Box<dyn Program> + Send + Sync + 'static,
    {
        ExecImage {
            symbols: Arc::new(Vec::new()),
            factory: Arc::new(f),
        }
    }
}

impl std::fmt::Debug for ExecImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecImage")
            .field("symbols", &self.symbols)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_carries_symbols() {
        let img = ExecImage::new(
            ["main", "compute", "io_wait"],
            Arc::new(|_args| fn_program(|_ctx| 0)),
        );
        assert_eq!(img.symbols.as_slice(), &["main", "compute", "io_wait"]);
    }

    #[test]
    fn factory_sees_args() {
        let img = ExecImage::from_fn(|args| {
            let n: i32 = args.first().and_then(|a| a.parse().ok()).unwrap_or(-1);
            fn_program(move |_ctx| n)
        });
        // The factory alone is testable without a kernel: build a program
        // and check it captured the argv.
        let _prog = (img.factory)(&["7".to_string()]);
        assert!(img.symbols.is_empty());
    }
}
