//! Per-host filesystems with file staging.
//!
//! Backs two TDP requirements: executables must exist on the host that
//! execs them, and "the RT may need configuration files transferred to
//! the execution nodes … trace files must be transferred from the
//! execution nodes after the application completes" (§2).

use crate::program::ExecImage;
use std::collections::HashMap;
use std::sync::Arc;
use tdp_proto::{HostId, TdpError, TdpResult};
use tdp_sync::RwLock;

/// A filesystem entry.
#[derive(Clone)]
pub enum FileKind {
    /// Plain data file.
    Data(Arc<Vec<u8>>),
    /// Executable image (program factory + symbol table).
    Exec(ExecImage),
}

impl std::fmt::Debug for FileKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileKind::Data(d) => write!(f, "Data({} bytes)", d.len()),
            FileKind::Exec(e) => write!(f, "Exec({} symbols)", e.symbols.len()),
        }
    }
}

/// All hosts' filesystems. Hosts spring into existence on first write
/// (the simulation adds hosts dynamically).
#[derive(Default)]
pub struct HostFs {
    inner: RwLock<HashMap<HostId, HashMap<String, FileKind>>>,
}

impl HostFs {
    pub fn new() -> HostFs {
        HostFs::default()
    }

    /// Create or overwrite a data file.
    pub fn write_file(&self, host: HostId, path: &str, data: &[u8]) {
        self.inner
            .write()
            .entry(host)
            .or_default()
            .insert(path.to_string(), FileKind::Data(Arc::new(data.to_vec())));
    }

    /// Append to a data file, creating it if absent. Appending to an
    /// executable replaces it with a data file (like `cat >> binary`).
    pub fn append_file(&self, host: HostId, path: &str, data: &[u8]) {
        let mut fs = self.inner.write();
        let files = fs.entry(host).or_default();
        match files.get_mut(path) {
            Some(FileKind::Data(existing)) => {
                let mut v = existing.as_ref().clone();
                v.extend_from_slice(data);
                *existing = Arc::new(v);
            }
            _ => {
                files.insert(path.to_string(), FileKind::Data(Arc::new(data.to_vec())));
            }
        }
    }

    /// Read a data file.
    pub fn read_file(&self, host: HostId, path: &str) -> TdpResult<Vec<u8>> {
        match self.inner.read().get(&host).and_then(|f| f.get(path)) {
            Some(FileKind::Data(d)) => Ok(d.as_ref().clone()),
            Some(FileKind::Exec(_)) => Err(TdpError::Substrate(format!("{path} is an executable"))),
            None => Err(TdpError::NoSuchFile(path.to_string())),
        }
    }

    /// Install an executable image.
    pub fn install_exec(&self, host: HostId, path: &str, image: ExecImage) {
        self.inner
            .write()
            .entry(host)
            .or_default()
            .insert(path.to_string(), FileKind::Exec(image));
    }

    /// Look up an executable for exec.
    pub fn lookup_exec(&self, host: HostId, path: &str) -> TdpResult<ExecImage> {
        match self.inner.read().get(&host).and_then(|f| f.get(path)) {
            Some(FileKind::Exec(img)) => Ok(img.clone()),
            Some(FileKind::Data(_)) => {
                Err(TdpError::Substrate(format!("{path} is not executable")))
            }
            None => Err(TdpError::NoSuchFile(path.to_string())),
        }
    }

    /// Does the path exist (data or executable)?
    pub fn exists(&self, host: HostId, path: &str) -> bool {
        self.inner
            .read()
            .get(&host)
            .is_some_and(|f| f.contains_key(path))
    }

    /// Delete a file. Ok even if absent.
    pub fn remove(&self, host: HostId, path: &str) {
        if let Some(f) = self.inner.write().get_mut(&host) {
            f.remove(path);
        }
    }

    /// List paths on a host with the given prefix, sorted.
    pub fn list(&self, host: HostId, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .inner
            .read()
            .get(&host)
            .map(|f| {
                f.keys()
                    .filter(|k| k.starts_with(prefix))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Stage (copy) a file between hosts — the TDP file-transfer
    /// primitive. Works for data files and executables (Condor's
    /// `transfer_input_files = paradynd` ships the tool daemon binary).
    pub fn stage(&self, from: HostId, src: &str, to: HostId, dst: &str) -> TdpResult<()> {
        let kind = self
            .inner
            .read()
            .get(&from)
            .and_then(|f| f.get(src).cloned())
            .ok_or_else(|| TdpError::NoSuchFile(src.to_string()))?;
        self.inner
            .write()
            .entry(to)
            .or_default()
            .insert(dst.to_string(), kind);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::fn_program;

    fn img() -> ExecImage {
        ExecImage::new(["main"], Arc::new(|_| fn_program(|_| 0)))
    }

    #[test]
    fn write_read_roundtrip() {
        let fs = HostFs::new();
        fs.write_file(HostId(1), "/etc/conf", b"key=val");
        assert_eq!(fs.read_file(HostId(1), "/etc/conf").unwrap(), b"key=val");
    }

    #[test]
    fn files_are_per_host() {
        let fs = HostFs::new();
        fs.write_file(HostId(1), "/f", b"one");
        assert!(fs.read_file(HostId(2), "/f").is_err());
    }

    #[test]
    fn append_creates_and_extends() {
        let fs = HostFs::new();
        fs.append_file(HostId(1), "/log", b"a");
        fs.append_file(HostId(1), "/log", b"b");
        assert_eq!(fs.read_file(HostId(1), "/log").unwrap(), b"ab");
    }

    #[test]
    fn exec_install_and_lookup() {
        let fs = HostFs::new();
        fs.install_exec(HostId(1), "/bin/foo", img());
        let got = fs.lookup_exec(HostId(1), "/bin/foo").unwrap();
        assert_eq!(got.symbols.as_slice(), &["main"]);
        assert!(fs.lookup_exec(HostId(1), "/bin/bar").is_err());
    }

    #[test]
    fn reading_exec_as_data_fails() {
        let fs = HostFs::new();
        fs.install_exec(HostId(1), "/bin/foo", img());
        assert!(fs.read_file(HostId(1), "/bin/foo").is_err());
        assert!(fs.lookup_exec(HostId(1), "/bin/foo").is_ok());
    }

    #[test]
    fn exec_of_data_file_fails() {
        let fs = HostFs::new();
        fs.write_file(HostId(1), "/notes.txt", b"hello");
        assert!(fs.lookup_exec(HostId(1), "/notes.txt").is_err());
    }

    #[test]
    fn stage_data_between_hosts() {
        let fs = HostFs::new();
        fs.write_file(HostId(0), "paradyn.conf", b"cfg");
        fs.stage(HostId(0), "paradyn.conf", HostId(3), "/work/paradyn.conf")
            .unwrap();
        assert_eq!(
            fs.read_file(HostId(3), "/work/paradyn.conf").unwrap(),
            b"cfg"
        );
        // Source untouched.
        assert_eq!(fs.read_file(HostId(0), "paradyn.conf").unwrap(), b"cfg");
    }

    #[test]
    fn stage_executable_ships_tool_daemon() {
        let fs = HostFs::new();
        fs.install_exec(HostId(0), "paradynd", img());
        fs.stage(HostId(0), "paradynd", HostId(3), "/work/paradynd")
            .unwrap();
        assert!(fs.lookup_exec(HostId(3), "/work/paradynd").is_ok());
    }

    #[test]
    fn stage_missing_file_errors() {
        let fs = HostFs::new();
        assert!(matches!(
            fs.stage(HostId(0), "ghost", HostId(1), "g"),
            Err(TdpError::NoSuchFile(_))
        ));
    }

    #[test]
    fn list_with_prefix_sorted() {
        let fs = HostFs::new();
        fs.write_file(HostId(1), "/out/trace.2", b"");
        fs.write_file(HostId(1), "/out/trace.1", b"");
        fs.write_file(HostId(1), "/other", b"");
        assert_eq!(
            fs.list(HostId(1), "/out/"),
            vec!["/out/trace.1", "/out/trace.2"]
        );
    }

    #[test]
    fn remove_is_idempotent() {
        let fs = HostFs::new();
        fs.write_file(HostId(1), "/f", b"x");
        fs.remove(HostId(1), "/f");
        fs.remove(HostId(1), "/f");
        assert!(!fs.exists(HostId(1), "/f"));
    }
}
