//! The kernel: process table, lifecycle control, tracing and status
//! event routing.

use crate::fs::HostFs;
use crate::process::{self, KillUnwind, Pcb, ProbeSnapshot, ProcCtx, ProcState, Sink, StartMode};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdp_proto::{HostId, Pid, ProcStatus, TdpError, TdpResult};
use tdp_sync::{Mutex, RwLock};

/// Capacity of each watcher / breakpoint-subscriber queue. Delivery
/// uses `try_send` (see [`Kernel::emit`]): a subscriber this many
/// events behind is dropped rather than allowed to wedge the kernel.
const EVENT_QUEUE_CAP: usize = 1024;

/// Who receives a process's *termination* status. Models the OS-variant
/// behaviour §2.3 cites as the reason to centralize process control:
/// "under Linux, the parent (RM) process may or may not be the recipient
/// of the child process' termination code. The choice … can depend on
/// whether some third process (the RT) is attached … In one unusual
/// case, the return code might go to both."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Linux-like default: the tracer steals the wait-status while
    /// attached; otherwise the parent gets it.
    #[default]
    TracerElseParent,
    /// Only the parent ever sees it (tracer misses terminations).
    ParentOnly,
    /// The "unusual case": both parent and tracer receive it.
    Both,
}

/// Which relationship a status watcher has to the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    Parent,
    Tracer,
    /// Out-of-band observer (tests, monitors): always receives
    /// everything regardless of routing.
    Observer,
}

/// A process status-change notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcEvent {
    pub pid: Pid,
    pub status: ProcStatus,
}

/// Kernel configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsConfig {
    /// Real nanoseconds burned per `ProcCtx::compute` unit. 0 (default)
    /// keeps CPU time purely virtual — fast deterministic tests.
    pub time_scale_ns: u64,
    /// Termination-status routing policy.
    pub routing: Routing,
}

struct Watcher {
    role: Role,
    tx: Sender<ProcEvent>,
}

struct OsInner {
    cfg: OsConfig,
    fs: Arc<HostFs>,
    procs: RwLock<HashMap<Pid, Arc<Pcb>>>,
    watchers: Mutex<HashMap<Pid, Vec<Watcher>>>,
    next_pid: AtomicU64,
    next_token: AtomicU64,
}

/// Handle to the simulated kernel. Cheap to clone.
#[derive(Clone)]
pub struct Os {
    inner: Arc<OsInner>,
}

/// Specification for [`Os::spawn`].
#[derive(Clone)]
pub struct ProcSpec {
    pub host: HostId,
    /// Path of the executable on `host`'s filesystem.
    pub executable: String,
    pub args: Vec<String>,
    pub env: HashMap<String, String>,
    pub parent: Option<Pid>,
    pub start: StartMode,
    pub stdin: Vec<u8>,
    pub stdout: Sink,
    pub stderr: Sink,
}

impl ProcSpec {
    pub fn new(host: HostId, executable: impl Into<String>) -> ProcSpec {
        ProcSpec {
            host,
            executable: executable.into(),
            args: Vec::new(),
            env: HashMap::new(),
            parent: None,
            start: StartMode::Run,
            stdin: Vec::new(),
            stdout: Sink::Capture,
            stderr: Sink::Capture,
        }
    }

    pub fn args<S: Into<String>>(mut self, args: impl IntoIterator<Item = S>) -> ProcSpec {
        self.args = args.into_iter().map(Into::into).collect();
        self
    }

    pub fn env_var(mut self, k: impl Into<String>, v: impl Into<String>) -> ProcSpec {
        self.env.insert(k.into(), v.into());
        self
    }

    pub fn parent(mut self, pid: Pid) -> ProcSpec {
        self.parent = Some(pid);
        self
    }

    pub fn paused(mut self) -> ProcSpec {
        self.start = StartMode::Paused;
        self
    }

    pub fn stdin_bytes(mut self, data: impl Into<Vec<u8>>) -> ProcSpec {
        self.stdin = data.into();
        self
    }

    pub fn stdout(mut self, sink: Sink) -> ProcSpec {
        self.stdout = sink;
        self
    }

    pub fn stderr(mut self, sink: Sink) -> ProcSpec {
        self.stderr = sink;
        self
    }
}

impl Default for Os {
    fn default() -> Self {
        Self::new()
    }
}

impl Os {
    pub fn new() -> Os {
        Os::with_config(OsConfig::default())
    }

    pub fn with_config(cfg: OsConfig) -> Os {
        install_kill_unwind_hook();
        Os {
            inner: Arc::new(OsInner {
                cfg,
                fs: Arc::new(HostFs::new()),
                procs: RwLock::new(HashMap::new()),
                watchers: Mutex::new(HashMap::new()),
                next_pid: AtomicU64::new(1),
                next_token: AtomicU64::new(1),
            }),
        }
    }

    /// The cluster-wide (per-host) filesystem.
    pub fn fs(&self) -> &HostFs {
        &self.inner.fs
    }

    /// Kernel configuration in force.
    pub fn config(&self) -> OsConfig {
        self.inner.cfg
    }

    /// Create a process: fork + exec. With [`StartMode::Paused`] the
    /// process exists but is *stopped at exec* — `tdp_create_process`'s
    /// paused option — until [`Os::continue_process`].
    pub fn spawn(&self, spec: ProcSpec) -> TdpResult<Pid> {
        let image = self.inner.fs.lookup_exec(spec.host, &spec.executable)?;
        let pid = Pid(self.inner.next_pid.fetch_add(1, Ordering::Relaxed));
        let pcb = Pcb::new(
            pid,
            spec.host,
            spec.executable.clone(),
            spec.args.clone(),
            spec.env,
            spec.parent,
            image.symbols.clone(),
            spec.start,
            spec.stdin,
            &spec.stdout,
            &spec.stderr,
        );
        self.inner.procs.write().insert(pid, pcb.clone());
        self.emit(
            pid,
            match spec.start {
                StartMode::Run => ProcStatus::Running,
                StartMode::Paused => ProcStatus::Created,
            },
        );
        let program = (image.factory)(&spec.args);
        let os = self.clone();
        std::thread::Builder::new()
            .name(format!("sim-{pid}"))
            .spawn(move || os.run_process(pcb, program))
            .map_err(|e| TdpError::Substrate(format!("thread spawn: {e}")))?;
        Ok(pid)
    }

    /// The body of a simulated process's thread.
    fn run_process(&self, pcb: Arc<Pcb>, program: Box<dyn crate::program::Program>) {
        // The initial gate: a paused process parks here, "stopped just
        // after the exec call" with no program code run yet.
        let mut ctx = ProcCtx::new(
            pcb.clone(),
            self.inner.fs.clone(),
            self.inner.cfg.time_scale_ns,
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.checkpoint();
            program.run(&mut ctx)
        }));
        let status = match result {
            Ok(code) => ProcStatus::Exited(code),
            Err(payload) => match payload.downcast::<KillUnwind>() {
                Ok(k) => ProcStatus::Killed(k.0),
                Err(other) => {
                    // A program panic is a crash: report it like a
                    // SIGSEGV (signal 11) and leave a note on stderr.
                    let msg = panic_text(&other);
                    process::push_stderr_note(&pcb, &self.inner.fs, &msg);
                    ProcStatus::Killed(11)
                }
            },
        };
        // Deliver to watcher channels BEFORE flipping the state: a
        // `wait_terminal` caller that wakes on the notify below must be
        // able to drain the terminal event immediately.
        self.emit_terminal(&pcb, status);
        {
            let mut ctl = pcb.ctl.lock();
            ctl.state = status;
        }
        pcb.cv.notify_all();
    }

    /// Current status of a process (zombies included until reaped).
    pub fn status(&self, pid: Pid) -> TdpResult<ProcStatus> {
        Ok(self.pcb(pid)?.state())
    }

    /// Attach a tracer. Errors with [`TdpError::AlreadyTraced`] if a
    /// tracer is present — one tracer per process, like ptrace.
    /// Attaching does *not* stop the process (§2.2's attach steps make
    /// pausing a separate action).
    pub fn attach(&self, pid: Pid) -> TdpResult<TraceHandle> {
        let pcb = self.pcb(pid)?;
        let token = self.inner.next_token.fetch_add(1, Ordering::Relaxed);
        {
            let mut ctl = pcb.ctl.lock();
            if ctl.state.is_terminal() {
                return Err(TdpError::WrongProcessState {
                    pid,
                    state: format!("{:?}", ctl.state),
                    wanted: "alive".to_string(),
                });
            }
            if ctl.tracer.is_some() {
                return Err(TdpError::AlreadyTraced(pid));
            }
            ctl.tracer = Some(token);
        }
        Ok(TraceHandle {
            os: self.clone(),
            pcb,
            token,
        })
    }

    /// Stop (pause) a process — kernel-side SIGSTOP, usable by the RM
    /// without being the tracer.
    pub fn stop_process(&self, pid: Pid) -> TdpResult<()> {
        let pcb = self.pcb(pid)?;
        {
            let mut ctl = pcb.ctl.lock();
            match ctl.state {
                ProcStatus::Running => ctl.state = ProcStatus::Stopped,
                ProcStatus::Stopped | ProcStatus::Created => return Ok(()), // idempotent
                s => {
                    return Err(TdpError::WrongProcessState {
                        pid,
                        state: format!("{s:?}"),
                        wanted: "Running".to_string(),
                    })
                }
            }
        }
        pcb.cv.notify_all();
        self.emit(pid, ProcStatus::Stopped);
        Ok(())
    }

    /// Continue a process: starts a `Created` (paused-at-exec) process
    /// or resumes a `Stopped` one — `tdp_continue_process`.
    pub fn continue_process(&self, pid: Pid) -> TdpResult<()> {
        let pcb = self.pcb(pid)?;
        {
            let mut ctl = pcb.ctl.lock();
            match ctl.state {
                ProcStatus::Created | ProcStatus::Stopped => ctl.state = ProcStatus::Running,
                ProcStatus::Running => return Ok(()), // idempotent
                s => {
                    return Err(TdpError::WrongProcessState {
                        pid,
                        state: format!("{s:?}"),
                        wanted: "Created or Stopped".to_string(),
                    })
                }
            }
        }
        pcb.cv.notify_all();
        self.emit(pid, ProcStatus::Running);
        Ok(())
    }

    /// Deliver a fatal signal. Takes effect at the target's next pause
    /// gate (cooperative kernel); stopped and created processes die
    /// immediately on wake.
    pub fn kill(&self, pid: Pid, sig: i32) -> TdpResult<()> {
        let pcb = self.pcb(pid)?;
        {
            let mut ctl = pcb.ctl.lock();
            if ctl.state.is_terminal() {
                return Ok(()); // already dead; kill is idempotent
            }
            ctl.kill = Some(sig);
            // Wake a parked (Stopped/Created) thread so the kill lands.
            if ctl.state == ProcStatus::Stopped || ctl.state == ProcStatus::Created {
                ctl.state = ProcStatus::Running;
            }
        }
        pcb.cv.notify_all();
        pcb.io_cv.notify_all();
        Ok(())
    }

    /// Register a status watcher with the given role. All non-terminal
    /// transitions go to every watcher; terminal status follows the
    /// [`Routing`] policy.
    pub fn watch(&self, pid: Pid, role: Role) -> TdpResult<Receiver<ProcEvent>> {
        self.pcb(pid)?; // validate existence
        let (tx, rx) = bounded(EVENT_QUEUE_CAP);
        self.inner
            .watchers
            .lock()
            .entry(pid)
            .or_default()
            .push(Watcher { role, tx });
        Ok(rx)
    }

    /// Block until the process reaches a terminal state.
    pub fn wait_terminal(&self, pid: Pid, timeout: Duration) -> TdpResult<ProcStatus> {
        let pcb = self.pcb(pid)?;
        let deadline = Instant::now() + timeout;
        let mut ctl = pcb.ctl.lock();
        loop {
            if ctl.state.is_terminal() {
                return Ok(ctl.state);
            }
            if pcb.cv.wait_until(&mut ctl, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
    }

    /// Push bytes into a process's stdin.
    pub fn write_stdin(&self, pid: Pid, data: &[u8]) -> TdpResult<()> {
        let pcb = self.pcb(pid)?;
        process::push_stdin(&pcb, data)
    }

    /// Close a process's stdin (EOF).
    pub fn close_stdin(&self, pid: Pid) -> TdpResult<()> {
        let pcb = self.pcb(pid)?;
        process::close_stdin(&pcb);
        Ok(())
    }

    /// Read everything a `Sink::Capture` stdout has accumulated.
    pub fn read_stdout(&self, pid: Pid) -> TdpResult<Vec<u8>> {
        let pcb = self.pcb(pid)?;
        Ok(process::read_captured(&pcb, false))
    }

    /// Read everything a `Sink::Capture` stderr has accumulated.
    pub fn read_stderr(&self, pid: Pid) -> TdpResult<Vec<u8>> {
        let pcb = self.pcb(pid)?;
        Ok(process::read_captured(&pcb, true))
    }

    /// Remove a terminated process from the process table.
    pub fn reap(&self, pid: Pid) -> TdpResult<ProcStatus> {
        let status = self.status(pid)?;
        if !status.is_terminal() {
            return Err(TdpError::WrongProcessState {
                pid,
                state: format!("{status:?}"),
                wanted: "terminal".to_string(),
            });
        }
        self.inner.procs.write().remove(&pid);
        self.inner.watchers.lock().remove(&pid);
        Ok(status)
    }

    /// Pids of live (non-terminal) processes on a host, sorted.
    pub fn processes_on(&self, host: HostId) -> Vec<Pid> {
        let mut v: Vec<Pid> = self
            .inner
            .procs
            .read()
            .values()
            .filter(|p| p.host == host && !p.state().is_terminal())
            .map(|p| p.pid)
            .collect();
        v.sort();
        v
    }

    /// Metadata of a process: (host, executable, args, parent).
    pub fn proc_info(&self, pid: Pid) -> TdpResult<(HostId, String, Vec<String>, Option<Pid>)> {
        let p = self.pcb(pid)?;
        Ok((p.host, p.executable.clone(), p.args.clone(), p.parent))
    }

    /// Total virtual CPU consumed by a process so far.
    pub fn cpu_of(&self, pid: Pid) -> TdpResult<u64> {
        Ok(self.pcb(pid)?.instr.lock().total_cpu)
    }

    /// Wall-clock time since the process was created (tools divide CPU
    /// by this for utilization metrics).
    pub fn uptime_of(&self, pid: Pid) -> TdpResult<Duration> {
        Ok(self.pcb(pid)?.started_at.elapsed())
    }

    fn pcb(&self, pid: Pid) -> TdpResult<Arc<Pcb>> {
        self.inner
            .procs
            .read()
            .get(&pid)
            .cloned()
            .ok_or(TdpError::NoSuchProcess(pid))
    }

    /// Deliver a non-terminal transition to every watcher.
    ///
    /// `try_send` on a bounded queue keeps delivery non-blocking while
    /// the `watchers` lock is held: a watcher that has fallen
    /// [`EVENT_QUEUE_CAP`] events behind is treated exactly like a
    /// disconnected one and dropped, instead of stalling every status
    /// transition in the kernel behind its full queue.
    fn emit(&self, pid: Pid, status: ProcStatus) {
        let mut watchers = self.inner.watchers.lock();
        if let Some(list) = watchers.get_mut(&pid) {
            list.retain(|w| w.tx.try_send(ProcEvent { pid, status }).is_ok());
        }
    }

    /// Deliver a terminal status under the routing policy.
    fn emit_terminal(&self, pcb: &Pcb, status: ProcStatus) {
        let tracer_attached = pcb.ctl.lock().tracer.is_some();
        let routing = self.inner.cfg.routing;
        let mut watchers = self.inner.watchers.lock();
        if let Some(list) = watchers.get_mut(&pcb.pid) {
            list.retain(|w| {
                let deliver = match w.role {
                    Role::Observer => true,
                    Role::Parent => match routing {
                        Routing::ParentOnly | Routing::Both => true,
                        Routing::TracerElseParent => !tracer_attached,
                    },
                    Role::Tracer => match routing {
                        Routing::ParentOnly => false,
                        Routing::Both => true,
                        Routing::TracerElseParent => tracer_attached,
                    },
                };
                !deliver
                    || w.tx
                        .try_send(ProcEvent {
                            pid: pcb.pid,
                            status,
                        })
                        .is_ok()
            });
        }
    }
}

/// Capability held by the (single) tracer of a process — what
/// `tdp_attach` returns under the hood. Dropping the handle detaches
/// (and, like `PTRACE_DETACH`, resumes a stopped tracee).
pub struct TraceHandle {
    os: Os,
    pcb: Arc<Pcb>,
    token: u64,
}

impl TraceHandle {
    /// Pid of the traced process.
    pub fn target(&self) -> Pid {
        self.pcb.pid
    }

    /// Symbol table of the traced executable ("paradynd parses the
    /// executable to discover symbols", §4.2).
    pub fn symbols(&self) -> Vec<String> {
        self.pcb.symbols.as_ref().clone()
    }

    /// Pause the tracee.
    pub fn stop(&self) -> TdpResult<()> {
        self.check()?;
        self.os.stop_process(self.pcb.pid)
    }

    /// Continue the tracee (from Created or Stopped).
    pub fn cont(&self) -> TdpResult<()> {
        self.check()?;
        self.os.continue_process(self.pcb.pid)
    }

    /// Insert instrumentation at a symbol. Errors if the symbol is not
    /// in the executable's table.
    pub fn arm_probe(&self, sym: &str) -> TdpResult<()> {
        self.check()?;
        if !self.pcb.symbols.iter().any(|s| s == sym) {
            return Err(TdpError::Substrate(format!(
                "no symbol {sym:?} in {}",
                self.pcb.executable
            )));
        }
        self.pcb.instr.lock().armed.insert(sym.to_string());
        Ok(())
    }

    /// Remove instrumentation from a symbol.
    pub fn disarm_probe(&self, sym: &str) -> TdpResult<()> {
        self.check()?;
        self.pcb.instr.lock().armed.remove(sym);
        Ok(())
    }

    /// Read the accumulated probe data.
    pub fn read_probes(&self) -> TdpResult<ProbeSnapshot> {
        self.check()?;
        Ok(self.pcb.snapshot_probes())
    }

    /// Arm a breakpoint: entering `sym` stops the tracee *before* the
    /// body runs and notifies [`TraceHandle::breakpoint_events`]
    /// subscribers — the dynamic-instrumentation substrate a debugger
    /// needs.
    pub fn arm_breakpoint(&self, sym: &str) -> TdpResult<()> {
        self.check()?;
        if !self.pcb.symbols.iter().any(|s| s == sym) {
            return Err(TdpError::Substrate(format!(
                "no symbol {sym:?} in {}",
                self.pcb.executable
            )));
        }
        self.pcb.instr.lock().breakpoints.insert(sym.to_string());
        Ok(())
    }

    /// Remove a breakpoint.
    pub fn disarm_breakpoint(&self, sym: &str) -> TdpResult<()> {
        self.check()?;
        self.pcb.instr.lock().breakpoints.remove(sym);
        Ok(())
    }

    /// The most recently hit breakpoint, if any.
    pub fn last_breakpoint(&self) -> TdpResult<Option<String>> {
        self.check()?;
        Ok(self.pcb.instr.lock().last_break.clone())
    }

    /// Subscribe to breakpoint hits: one message (the symbol) per stop.
    pub fn breakpoint_events(&self) -> TdpResult<Receiver<String>> {
        self.check()?;
        let (tx, rx) = bounded(EVENT_QUEUE_CAP);
        self.pcb.bp_subs.lock().push(tx);
        Ok(rx)
    }

    /// Enable or disable live call-stack tracking (off by default: it
    /// costs an allocation per named call while on).
    pub fn set_stack_tracking(&self, on: bool) -> TdpResult<()> {
        self.check()?;
        let mut i = self.pcb.instr.lock();
        i.track_stack = on;
        if !on {
            i.live_stack.clear();
        }
        Ok(())
    }

    /// Snapshot of the tracee's named-call stack, outermost first.
    /// Meaningful while the tracee is stopped (e.g. at a breakpoint).
    pub fn read_stack(&self) -> TdpResult<Vec<String>> {
        self.check()?;
        Ok(self.pcb.instr.lock().live_stack.clone())
    }

    /// Explicit detach (also happens on drop). Resumes a stopped tracee.
    pub fn detach(self) {
        // Drop impl does the work.
    }

    fn check(&self) -> TdpResult<()> {
        let ctl = self.pcb.ctl.lock();
        if ctl.tracer == Some(self.token) {
            Ok(())
        } else {
            Err(TdpError::NotTracer(self.pcb.pid))
        }
    }
}

impl Drop for TraceHandle {
    fn drop(&mut self) {
        let mut ctl = self.pcb.ctl.lock();
        if ctl.tracer == Some(self.token) {
            ctl.tracer = None;
            if ctl.state == ProcState::Stopped {
                ctl.state = ProcState::Running;
                drop(ctl);
                self.pcb.cv.notify_all();
                self.os.emit(self.pcb.pid, ProcStatus::Running);
            }
        }
    }
}

/// The kill mechanism unwinds program threads with a `KillUnwind`
/// panic; that is kernel bookkeeping, not a bug, so the default panic
/// hook must stay quiet about it. Installed once, delegating everything
/// else to the pre-existing hook.
fn install_kill_unwind_hook() {
    static ONCE: tdp_sync::Once = tdp_sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<KillUnwind>().is_none() {
                previous(info);
            }
        }));
    });
}

fn panic_text(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}\n")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}\n")
    } else {
        "panic: <non-string payload>\n".to_string()
    }
}
