//! Process control blocks, the pause gate, instrumentation probes and
//! the per-process syscall interface [`ProcCtx`].

use crate::fs::HostFs;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdp_proto::{HostId, Pid, TdpError, TdpResult};
use tdp_sync::{Condvar, Mutex};

/// Re-export: process states are exactly the wire-level statuses the RM
/// publishes in the attribute space.
pub use tdp_proto::ProcStatus as ProcState;

/// How a process is started (§2.2):
/// * `Run` — case 1: create and start immediately;
/// * `Paused` — case 2: fork+exec complete but the process is stopped
///   before its first instruction, waiting for a `continue`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartMode {
    #[default]
    Run,
    Paused,
}

/// Where a process's stdout/stderr goes. §2's "standard input and output
/// management" is layered above this: the RM wires a process's stdio to
/// files or forwards it over a (possibly proxied) connection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Sink {
    /// Discard.
    Null,
    /// Keep in memory, readable via `Os::read_stdout` / `read_stderr`.
    #[default]
    Capture,
    /// Append to a file on the process's host filesystem.
    File(String),
}

/// Panic payload used to unwind a program when its process is killed.
pub(crate) struct KillUnwind(pub i32);

/// Pending control-plane state, guarded by `Pcb::ctl`.
pub(crate) struct Ctl {
    pub state: ProcState,
    /// Pending kill signal; takes effect at the next gate.
    pub kill: Option<i32>,
    /// Trace token of the attached tracer, if any.
    pub tracer: Option<u64>,
}

/// Per-symbol instrumentation state — the Dyninst-shaped substrate
/// ("dynamically inserting and removing instrumentation in the
/// application program at run time", §4.2).
#[derive(Default)]
pub(crate) struct Instr {
    pub armed: HashSet<String>,
    /// Symbols with an armed breakpoint: entering one stops the
    /// process before the body runs (the debugger capability).
    pub breakpoints: HashSet<String>,
    /// The most recently hit breakpoint.
    pub last_break: Option<String>,
    /// Maintain `live_stack` (off by default — zero overhead unless a
    /// debugger asks).
    pub track_stack: bool,
    /// The named-call stack, innermost last (only when `track_stack`).
    pub live_stack: Vec<String>,
    pub counts: HashMap<String, u64>,
    /// Inclusive virtual CPU units attributed to each armed symbol.
    pub time: HashMap<String, u64>,
    /// Exclusive (self) virtual CPU units: work done while the symbol
    /// was the innermost armed frame.
    pub self_time: HashMap<String, u64>,
    /// Total virtual CPU units consumed by the process.
    pub total_cpu: u64,
}

/// Snapshot of a process's probe data, as read by an attached tool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeSnapshot {
    /// Completed calls per instrumented symbol.
    pub counts: HashMap<String, u64>,
    /// Inclusive virtual CPU units per instrumented symbol.
    pub time: HashMap<String, u64>,
    /// Exclusive (self) virtual CPU units per instrumented symbol.
    pub self_time: HashMap<String, u64>,
    /// Total virtual CPU units consumed by the process so far.
    pub total_cpu: u64,
}

pub(crate) struct Io {
    pub stdin: VecDeque<u8>,
    pub stdin_closed: bool,
    pub stdout: SinkState,
    pub stderr: SinkState,
}

pub(crate) enum SinkState {
    Null,
    Capture(Vec<u8>),
    File(String),
}

impl SinkState {
    fn from_sink(s: &Sink) -> SinkState {
        match s {
            Sink::Null => SinkState::Null,
            Sink::Capture => SinkState::Capture(Vec::new()),
            Sink::File(p) => SinkState::File(p.clone()),
        }
    }
}

/// The process control block. One per simulated process; shared between
/// the kernel, the process's own thread (via [`ProcCtx`]) and any
/// attached tracer.
pub(crate) struct Pcb {
    pub pid: Pid,
    pub host: HostId,
    pub executable: String,
    pub args: Vec<String>,
    pub env: HashMap<String, String>,
    pub parent: Option<Pid>,
    pub symbols: Arc<Vec<String>>,
    pub ctl: Mutex<Ctl>,
    pub cv: Condvar,
    pub instr: Mutex<Instr>,
    pub io: Mutex<Io>,
    pub io_cv: Condvar,
    /// Debugger notification channels: one message (the symbol name)
    /// per breakpoint hit.
    pub bp_subs: Mutex<Vec<crossbeam::channel::Sender<String>>>,
    /// Wall-clock start, reported to tools for rate computations.
    pub started_at: Instant,
}

impl Pcb {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the spec fields
    pub fn new(
        pid: Pid,
        host: HostId,
        executable: String,
        args: Vec<String>,
        env: HashMap<String, String>,
        parent: Option<Pid>,
        symbols: Arc<Vec<String>>,
        start: StartMode,
        stdin: Vec<u8>,
        stdout: &Sink,
        stderr: &Sink,
    ) -> Arc<Pcb> {
        let state = match start {
            StartMode::Run => ProcState::Running,
            StartMode::Paused => ProcState::Created,
        };
        Arc::new(Pcb {
            pid,
            host,
            executable,
            args,
            env,
            parent,
            symbols,
            ctl: Mutex::new(Ctl {
                state,
                kill: None,
                tracer: None,
            }),
            cv: Condvar::new(),
            instr: Mutex::new(Instr::default()),
            io: Mutex::new(Io {
                stdin: stdin.into(),
                stdin_closed: false,
                stdout: SinkState::from_sink(stdout),
                stderr: SinkState::from_sink(stderr),
            }),
            io_cv: Condvar::new(),
            bp_subs: Mutex::new(Vec::new()),
            started_at: Instant::now(),
        })
    }

    /// The pause gate: every ProcCtx operation passes through here. A
    /// pending stop parks the thread; a pending kill unwinds it.
    pub fn gate(&self) {
        let mut ctl = self.ctl.lock();
        loop {
            if let Some(sig) = ctl.kill {
                drop(ctl);
                std::panic::panic_any(KillUnwind(sig));
            }
            match ctl.state {
                ProcState::Stopped | ProcState::Created => self.cv.wait(&mut ctl),
                _ => return,
            }
        }
    }

    /// Current externally visible state.
    pub fn state(&self) -> ProcState {
        self.ctl.lock().state
    }

    pub fn snapshot_probes(&self) -> ProbeSnapshot {
        let i = self.instr.lock();
        ProbeSnapshot {
            counts: i.counts.clone(),
            time: i.time.clone(),
            self_time: i.self_time.clone(),
            total_cpu: i.total_cpu,
        }
    }
}

/// The syscall interface handed to a running [`crate::Program`].
///
/// Every method passes the pause gate first, so an attached tool (or the
/// resource manager) observes stop/continue/kill taking effect at
/// operation boundaries.
pub struct ProcCtx {
    pub(crate) pcb: Arc<Pcb>,
    pub(crate) fs: Arc<HostFs>,
    /// Nanoseconds of real time burned per `compute` unit (0 = purely
    /// virtual time).
    pub(crate) time_scale_ns: u64,
    /// Stack of symbols currently on the simulated call stack, with
    /// the `total_cpu` value at entry (for attribution).
    call_stack: Vec<(String, u64)>,
}

impl ProcCtx {
    pub(crate) fn new(pcb: Arc<Pcb>, fs: Arc<HostFs>, time_scale_ns: u64) -> ProcCtx {
        ProcCtx {
            pcb,
            fs,
            time_scale_ns,
            call_stack: Vec::new(),
        }
    }

    /// This process's pid.
    pub fn pid(&self) -> Pid {
        self.pcb.pid
    }

    /// The host this process runs on.
    pub fn host(&self) -> HostId {
        self.pcb.host
    }

    /// Command-line arguments (argv[1..]).
    pub fn args(&self) -> &[String] {
        &self.pcb.args
    }

    /// Environment lookup.
    pub fn env(&self, key: &str) -> Option<&str> {
        self.pcb.env.get(key).map(String::as_str)
    }

    /// Explicit pause-gate crossing; long computations that never call
    /// another ctx method should sprinkle these so stops and kills can
    /// take effect.
    pub fn checkpoint(&mut self) {
        self.pcb.gate();
    }

    /// Consume `units` of virtual CPU, attributed to the innermost
    /// instrumented frame on the simulated call stack.
    pub fn compute(&mut self, units: u64) {
        self.pcb.gate();
        {
            let mut i = self.pcb.instr.lock();
            i.total_cpu += units;
            // Exclusive attribution: the innermost armed frame owns this
            // work (the call stack only holds armed frames).
            if let Some((sym, _)) = self.call_stack.last() {
                *i.self_time.entry(sym.clone()).or_insert(0) += units;
            }
        }
        if self.time_scale_ns > 0 {
            std::thread::sleep(Duration::from_nanos(
                self.time_scale_ns.saturating_mul(units),
            ));
        }
    }

    /// Enter the named function, run `body`, exit. If a tracer has armed
    /// a probe on `sym`, the call is counted and the virtual CPU consumed
    /// inside is attributed to `sym` — dynamic instrumentation with true
    /// zero-count when disarmed.
    pub fn call<R>(&mut self, sym: &str, body: impl FnOnce(&mut ProcCtx) -> R) -> R {
        self.pcb.gate();
        let (armed, breakpoint, track) = {
            let i = self.pcb.instr.lock();
            (
                i.armed.contains(sym),
                i.breakpoints.contains(sym),
                i.track_stack,
            )
        };
        if breakpoint {
            // Stop *before* the body runs, record the hit, notify the
            // debugger, and park at the gate until continued.
            {
                let mut i = self.pcb.instr.lock();
                i.last_break = Some(sym.to_string());
            }
            {
                let mut ctl = self.pcb.ctl.lock();
                if ctl.state == ProcState::Running {
                    ctl.state = ProcState::Stopped;
                }
            }
            // Non-blocking delivery under the subscriber lock: a
            // subscriber whose bounded queue is full has stopped
            // draining breakpoint stops and is dropped like a
            // disconnected one (see `Kernel::emit`).
            self.pcb
                .bp_subs
                .lock()
                .retain(|tx| tx.try_send(sym.to_string()).is_ok());
            self.pcb.gate();
        }
        if track {
            self.pcb.instr.lock().live_stack.push(sym.to_string());
        }
        let r = self.call_inner(sym, armed, body);
        if track {
            self.pcb.instr.lock().live_stack.pop();
        }
        r
    }

    fn call_inner<R>(&mut self, sym: &str, armed: bool, body: impl FnOnce(&mut ProcCtx) -> R) -> R {
        if armed {
            let cpu_in = self.pcb.instr.lock().total_cpu;
            self.call_stack.push((sym.to_string(), cpu_in));
            let r = body(self);
            let (sym, cpu_at_entry) = self.call_stack.pop().expect("balanced call stack");
            let mut i = self.pcb.instr.lock();
            let delta = i.total_cpu.saturating_sub(cpu_at_entry);
            *i.counts.entry(sym.clone()).or_insert(0) += 1;
            *i.time.entry(sym).or_insert(0) += delta;
            r
        } else {
            body(self)
        }
    }

    /// Sleep for `dur`, interruptible by stop (time keeps passing) and
    /// kill (unwinds).
    pub fn sleep(&mut self, dur: Duration) {
        let deadline = Instant::now() + dur;
        loop {
            self.pcb.gate();
            let mut ctl = self.pcb.ctl.lock();
            if Instant::now() >= deadline {
                return;
            }
            if ctl.kill.is_some() || ctl.state == ProcState::Stopped {
                continue; // re-gate
            }
            self.pcb.cv.wait_until(&mut ctl, deadline);
            if Instant::now() >= deadline {
                drop(ctl);
                self.pcb.gate(); // one final kill/stop check
                return;
            }
        }
    }

    /// Write to standard output.
    pub fn write_stdout(&mut self, data: &[u8]) {
        self.pcb.gate();
        write_sink(&self.pcb, &self.fs, data, false);
    }

    /// Write to standard error.
    pub fn write_stderr(&mut self, data: &[u8]) {
        self.pcb.gate();
        write_sink(&self.pcb, &self.fs, data, true);
    }

    /// Blocking read of some stdin bytes. `Ok(None)` means EOF.
    pub fn read_stdin(&mut self) -> TdpResult<Option<Vec<u8>>> {
        loop {
            self.pcb.gate();
            let mut io = self.pcb.io.lock();
            if !io.stdin.is_empty() {
                let out: Vec<u8> = io.stdin.drain(..).collect();
                return Ok(Some(out));
            }
            if io.stdin_closed {
                return Ok(None);
            }
            // Poll-wait so a concurrent kill (signalled on the ctl
            // condvar) is noticed promptly at the gate above.
            self.pcb.io_cv.wait_for(&mut io, Duration::from_millis(20));
        }
    }

    /// The filesystem of this process's host.
    pub fn fs(&self) -> HostFsView<'_> {
        HostFsView {
            fs: &self.fs,
            host: self.pcb.host,
        }
    }
}

/// A view of [`HostFs`] restricted to one host — what a process sees.
pub struct HostFsView<'a> {
    fs: &'a HostFs,
    host: HostId,
}

impl HostFsView<'_> {
    pub fn read(&self, path: &str) -> TdpResult<Vec<u8>> {
        self.fs.read_file(self.host, path)
    }

    pub fn write(&self, path: &str, data: &[u8]) {
        self.fs.write_file(self.host, path, data);
    }

    pub fn append(&self, path: &str, data: &[u8]) {
        self.fs.append_file(self.host, path, data);
    }

    pub fn exists(&self, path: &str) -> bool {
        self.fs.exists(self.host, path)
    }
}

fn write_sink(pcb: &Pcb, fs: &HostFs, data: &[u8], to_stderr: bool) {
    let mut io = pcb.io.lock();
    let sink = if to_stderr {
        &mut io.stderr
    } else {
        &mut io.stdout
    };
    match sink {
        SinkState::Null => {}
        SinkState::Capture(buf) => buf.extend_from_slice(data),
        SinkState::File(path) => {
            let path = path.clone();
            drop(io);
            fs.append_file(pcb.host, &path, data);
        }
    }
}

/// Internal: deliver stdin bytes (used by `Os::write_stdin`).
pub(crate) fn push_stdin(pcb: &Pcb, data: &[u8]) -> TdpResult<()> {
    let mut io = pcb.io.lock();
    if io.stdin_closed {
        return Err(TdpError::Disconnected);
    }
    io.stdin.extend(data);
    drop(io);
    pcb.io_cv.notify_all();
    Ok(())
}

pub(crate) fn close_stdin(pcb: &Pcb) {
    pcb.io.lock().stdin_closed = true;
    pcb.io_cv.notify_all();
}

/// Internal: the kernel writes a crash note to a process's stderr sink
/// (used when a program panics — our "core dump" message).
pub(crate) fn push_stderr_note(pcb: &Pcb, fs: &HostFs, msg: &str) {
    write_sink(pcb, fs, msg.as_bytes(), true);
}

pub(crate) fn read_captured(pcb: &Pcb, stderr: bool) -> Vec<u8> {
    let io = pcb.io.lock();
    match if stderr { &io.stderr } else { &io.stdout } {
        SinkState::Capture(buf) => buf.clone(),
        _ => Vec::new(),
    }
}
