//! # tdp-simos — the simulated multi-host operating system
//!
//! TDP's process-management interfaces (`tdp_create_process`,
//! `tdp_attach`, `tdp_continue_process`, status monitoring) were designed
//! against Unix `fork`/`exec`/`ptrace` and Windows `CreateProcess`. This
//! crate provides the substrate those interfaces run on in our
//! reproduction: a cooperative "kernel" managing **simulated processes on
//! simulated hosts**, with exactly the semantics the paper's protocol
//! depends on:
//!
//! * **create-paused**: a process can be created and left *stopped at
//!   exec* — the thread exists, `fork`+`exec` have "succeeded", but not
//!   one instruction of the program body (not even library
//!   initialization) has run (§4.3, Step 1);
//! * **attach / detach**: a single tracer may attach to a process
//!   (second attach ⇒ [`tdp_proto::TdpError::AlreadyTraced`]), pause and
//!   continue it, and install/remove **instrumentation probes** on the
//!   executable's symbols — the Dyninst-shaped capability Paradyn needs;
//! * **status routing**: when a process terminates, the wait-status is
//!   delivered to its *parent*, its *tracer*, or both, under a
//!   configurable [`Routing`] policy. This models the OS-specific
//!   behaviour §2.3 complains about ("under Linux, the parent process may
//!   or may not be the recipient of the child process' termination code
//!   … in one unusual case, the return code might go to both") and is
//!   the reason TDP centralizes process control in the RM;
//! * **per-host filesystems** with file staging (tool configuration
//!   files out, trace files back — §2's "tool daemon configuration and
//!   data files").
//!
//! ## Execution model
//!
//! A simulated process is an OS thread running a [`Program`] against a
//! [`ProcCtx`] — the process's private "syscall interface". Every
//! `ProcCtx` operation passes through a *pause gate*: a pending stop
//! takes effect there, and a pending kill unwinds the program. This is
//! cooperative preemption at syscall granularity, which is precisely the
//! granularity at which TDP ever observes a process.

pub mod fs;
pub mod kernel;
pub mod process;
pub mod program;

pub use fs::{FileKind, HostFs};
pub use kernel::{Os, OsConfig, ProcEvent, ProcSpec, Role, Routing, TraceHandle};
pub use process::{ProbeSnapshot, ProcCtx, ProcState, Sink, StartMode};
pub use program::{fn_program, ExecImage, Program, ProgramFactory};
