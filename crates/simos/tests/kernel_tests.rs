//! Integration tests of the simulated kernel: process lifecycle,
//! create-paused semantics, tracing, probes, stdio, status routing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tdp_proto::{HostId, ProcStatus, TdpError};
use tdp_simos::kernel::{ProcSpec, Role};
use tdp_simos::{fn_program, ExecImage, Os, OsConfig, Routing, Sink};

const H: HostId = HostId(1);
const TIMEOUT: Duration = Duration::from_secs(5);

fn os_with(exes: Vec<(&str, ExecImage)>) -> Os {
    let os = Os::new();
    for (path, img) in exes {
        os.fs().install_exec(H, path, img);
    }
    os
}

fn trivial_exit(code: i32) -> ExecImage {
    ExecImage::from_fn(move |_| fn_program(move |_ctx| code))
}

#[test]
fn run_to_completion_exit_code() {
    let os = os_with(vec![("/bin/seven", trivial_exit(7))]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/seven")).unwrap();
    assert_eq!(
        os.wait_terminal(pid, TIMEOUT).unwrap(),
        ProcStatus::Exited(7)
    );
}

#[test]
fn spawn_missing_executable_fails() {
    let os = os_with(vec![]);
    assert!(matches!(
        os.spawn(ProcSpec::new(H, "/bin/ghost")),
        Err(TdpError::NoSuchFile(_))
    ));
}

#[test]
fn args_and_env_reach_program() {
    let os = os_with(vec![(
        "/bin/echoargs",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                let joined = ctx.args().join(",");
                let tag = ctx.env("TAG").unwrap_or("none").to_string();
                ctx.write_stdout(format!("{joined}|{tag}").as_bytes());
                0
            })
        }),
    )]);
    let pid = os
        .spawn(
            ProcSpec::new(H, "/bin/echoargs")
                .args(["a", "b"])
                .env_var("TAG", "t1"),
        )
        .unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    assert_eq!(os.read_stdout(pid).unwrap(), b"a,b|t1");
}

#[test]
fn paused_process_runs_nothing_until_continue() {
    let touched = Arc::new(AtomicBool::new(false));
    let t2 = touched.clone();
    let os = Os::new();
    os.fs().install_exec(
        H,
        "/bin/toucher",
        ExecImage::from_fn(move |_| {
            let t = t2.clone();
            fn_program(move |_ctx| {
                t.store(true, Ordering::SeqCst);
                0
            })
        }),
    );
    let pid = os.spawn(ProcSpec::new(H, "/bin/toucher").paused()).unwrap();
    assert_eq!(os.status(pid).unwrap(), ProcStatus::Created);
    std::thread::sleep(Duration::from_millis(50));
    // Stopped at exec: not one instruction of the body has run.
    assert!(!touched.load(Ordering::SeqCst));
    os.continue_process(pid).unwrap();
    assert_eq!(
        os.wait_terminal(pid, TIMEOUT).unwrap(),
        ProcStatus::Exited(0)
    );
    assert!(touched.load(Ordering::SeqCst));
}

#[test]
fn stop_and_continue_running_process() {
    let os = os_with(vec![(
        "/bin/spin",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                for _ in 0..1000 {
                    ctx.sleep(Duration::from_millis(1));
                }
                0
            })
        }),
    )]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/spin")).unwrap();
    os.stop_process(pid).unwrap();
    assert_eq!(os.status(pid).unwrap(), ProcStatus::Stopped);
    // Stop is idempotent.
    os.stop_process(pid).unwrap();
    os.continue_process(pid).unwrap();
    assert_eq!(os.status(pid).unwrap(), ProcStatus::Running);
    os.kill(pid, 9).unwrap();
    assert_eq!(
        os.wait_terminal(pid, TIMEOUT).unwrap(),
        ProcStatus::Killed(9)
    );
}

#[test]
fn kill_paused_process() {
    let os = os_with(vec![("/bin/x", trivial_exit(0))]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    os.kill(pid, 15).unwrap();
    assert_eq!(
        os.wait_terminal(pid, TIMEOUT).unwrap(),
        ProcStatus::Killed(15)
    );
}

#[test]
fn kill_terminated_is_idempotent() {
    let os = os_with(vec![("/bin/x", trivial_exit(0))]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/x")).unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    os.kill(pid, 9).unwrap();
    assert_eq!(os.status(pid).unwrap(), ProcStatus::Exited(0));
}

#[test]
fn panicking_program_reports_crash() {
    let os = os_with(vec![(
        "/bin/crash",
        ExecImage::from_fn(|_| fn_program(|_ctx| panic!("segfault simulation"))),
    )]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/crash")).unwrap();
    assert_eq!(
        os.wait_terminal(pid, TIMEOUT).unwrap(),
        ProcStatus::Killed(11)
    );
    let err = String::from_utf8(os.read_stderr(pid).unwrap()).unwrap();
    assert!(err.contains("segfault simulation"));
}

#[test]
fn attach_is_exclusive() {
    let os = os_with(vec![("/bin/x", trivial_exit(0))]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    let h1 = os.attach(pid).unwrap();
    assert!(matches!(os.attach(pid), Err(TdpError::AlreadyTraced(_))));
    drop(h1);
    // After detach a new tracer may attach.
    let _h2 = os.attach(pid).unwrap();
}

#[test]
fn attach_to_dead_process_fails() {
    let os = os_with(vec![("/bin/x", trivial_exit(0))]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/x")).unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    assert!(matches!(
        os.attach(pid),
        Err(TdpError::WrongProcessState { .. })
    ));
}

#[test]
fn detach_resumes_stopped_tracee() {
    let os = os_with(vec![(
        "/bin/slow",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                ctx.sleep(Duration::from_millis(10));
                0
            })
        }),
    )]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/slow")).unwrap();
    let h = os.attach(pid).unwrap();
    h.stop().unwrap();
    assert_eq!(os.status(pid).unwrap(), ProcStatus::Stopped);
    drop(h); // PTRACE_DETACH semantics: resume
    assert_eq!(
        os.wait_terminal(pid, TIMEOUT).unwrap(),
        ProcStatus::Exited(0)
    );
}

fn worker_image() -> ExecImage {
    ExecImage::new(
        ["main", "compute_phase", "io_phase"],
        Arc::new(|_args| {
            fn_program(|ctx| {
                ctx.call("main", |ctx| {
                    for _ in 0..10 {
                        ctx.call("compute_phase", |ctx| ctx.compute(100));
                        ctx.call("io_phase", |ctx| ctx.compute(10));
                    }
                });
                0
            })
        }),
    )
}

#[test]
fn probes_count_and_attribute_cpu() {
    let os = os_with(vec![("/bin/worker", worker_image())]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/worker").paused()).unwrap();
    let h = os.attach(pid).unwrap();
    assert_eq!(h.symbols(), vec!["main", "compute_phase", "io_phase"]);
    h.arm_probe("compute_phase").unwrap();
    h.arm_probe("io_phase").unwrap();
    h.cont().unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    let snap = h.read_probes().unwrap();
    assert_eq!(snap.counts["compute_phase"], 10);
    assert_eq!(snap.counts["io_phase"], 10);
    assert_eq!(snap.time["compute_phase"], 1000);
    assert_eq!(snap.time["io_phase"], 100);
    assert_eq!(snap.total_cpu, 1100);
}

#[test]
fn disarmed_probes_cost_nothing_and_count_nothing() {
    let os = os_with(vec![("/bin/worker", worker_image())]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/worker").paused()).unwrap();
    let h = os.attach(pid).unwrap();
    h.arm_probe("compute_phase").unwrap();
    h.disarm_probe("compute_phase").unwrap();
    h.cont().unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    let snap = h.read_probes().unwrap();
    assert!(snap.counts.is_empty());
    // total CPU still accumulates regardless of instrumentation.
    assert_eq!(snap.total_cpu, 1100);
}

#[test]
fn arming_unknown_symbol_fails() {
    let os = os_with(vec![("/bin/worker", worker_image())]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/worker").paused()).unwrap();
    let h = os.attach(pid).unwrap();
    assert!(h.arm_probe("no_such_fn").is_err());
}

#[test]
fn nested_call_attribution() {
    // outer calls inner; inner burns 50, outer an extra 5. Armed on
    // both: outer's time includes inner's (inclusive attribution).
    let os = os_with(vec![(
        "/bin/nest",
        ExecImage::new(
            ["outer", "inner"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("outer", |ctx| {
                        ctx.call("inner", |ctx| ctx.compute(50));
                        ctx.compute(5);
                    });
                    0
                })
            }),
        ),
    )]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/nest").paused()).unwrap();
    let h = os.attach(pid).unwrap();
    h.arm_probe("outer").unwrap();
    h.arm_probe("inner").unwrap();
    h.cont().unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    let snap = h.read_probes().unwrap();
    assert_eq!(snap.time["inner"], 50);
    assert_eq!(snap.time["outer"], 55);
}

#[test]
fn stdin_stdout_pipeline() {
    let os = os_with(vec![(
        "/bin/upcase",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                while let Ok(Some(chunk)) = ctx.read_stdin() {
                    let up: Vec<u8> = chunk.iter().map(|b| b.to_ascii_uppercase()).collect();
                    ctx.write_stdout(&up);
                }
                0
            })
        }),
    )]);
    let pid = os
        .spawn(ProcSpec::new(H, "/bin/upcase").stdin_bytes(&b"hello "[..]))
        .unwrap();
    os.write_stdin(pid, b"world").unwrap();
    os.close_stdin(pid).unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    assert_eq!(os.read_stdout(pid).unwrap(), b"HELLO WORLD");
}

#[test]
fn kill_interrupts_blocked_stdin_read() {
    let os = os_with(vec![(
        "/bin/reader",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                let _ = ctx.read_stdin(); // blocks forever: no writer
                0
            })
        }),
    )]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/reader")).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    os.kill(pid, 9).unwrap();
    assert_eq!(
        os.wait_terminal(pid, TIMEOUT).unwrap(),
        ProcStatus::Killed(9)
    );
}

#[test]
fn stdout_to_host_file() {
    let os = os_with(vec![(
        "/bin/logger",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                ctx.write_stdout(b"line1\n");
                ctx.write_stdout(b"line2\n");
                0
            })
        }),
    )]);
    let pid = os
        .spawn(ProcSpec::new(H, "/bin/logger").stdout(Sink::File("/out/job.out".into())))
        .unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    assert_eq!(
        os.fs().read_file(H, "/out/job.out").unwrap(),
        b"line1\nline2\n"
    );
}

#[test]
fn watchers_see_lifecycle_events() {
    let os = os_with(vec![("/bin/x", trivial_exit(3))]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    let rx = os.watch(pid, Role::Observer).unwrap();
    os.continue_process(pid).unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    let mut seen = Vec::new();
    while let Ok(ev) = rx.recv_timeout(Duration::from_millis(200)) {
        seen.push(ev.status);
        if ev.status.is_terminal() {
            break;
        }
    }
    assert_eq!(seen, vec![ProcStatus::Running, ProcStatus::Exited(3)]);
}

#[test]
fn routing_tracer_steals_wait_status_from_parent() {
    // Default TracerElseParent: with a tracer attached, the parent does
    // NOT see the termination code — the §2.3 Linux behaviour.
    let os = os_with(vec![("/bin/x", trivial_exit(0))]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    let parent_rx = os.watch(pid, Role::Parent).unwrap();
    let tracer_rx = os.watch(pid, Role::Tracer).unwrap();
    let _h = os.attach(pid).unwrap();
    os.continue_process(pid).unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    let tracer_events: Vec<_> = tracer_rx.try_iter().collect();
    assert!(tracer_events.iter().any(|e| e.status.is_terminal()));
    let parent_events: Vec<_> = parent_rx.try_iter().collect();
    assert!(
        !parent_events.iter().any(|e| e.status.is_terminal()),
        "parent must not receive termination while a tracer is attached"
    );
}

#[test]
fn routing_parent_receives_without_tracer() {
    let os = os_with(vec![("/bin/x", trivial_exit(0))]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    let parent_rx = os.watch(pid, Role::Parent).unwrap();
    os.continue_process(pid).unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    let parent_events: Vec<_> = parent_rx.try_iter().collect();
    assert!(parent_events.iter().any(|e| e.status.is_terminal()));
}

#[test]
fn routing_both_delivers_twice() {
    // The "unusual case" where the return code goes to both.
    let os = Os::with_config(OsConfig {
        time_scale_ns: 0,
        routing: Routing::Both,
    });
    os.fs().install_exec(H, "/bin/x", trivial_exit(0));
    let pid = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    let parent_rx = os.watch(pid, Role::Parent).unwrap();
    let tracer_rx = os.watch(pid, Role::Tracer).unwrap();
    let _h = os.attach(pid).unwrap();
    os.continue_process(pid).unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    assert!(parent_rx.try_iter().any(|e| e.status.is_terminal()));
    assert!(tracer_rx.try_iter().any(|e| e.status.is_terminal()));
}

#[test]
fn routing_parent_only_starves_tracer() {
    let os = Os::with_config(OsConfig {
        time_scale_ns: 0,
        routing: Routing::ParentOnly,
    });
    os.fs().install_exec(H, "/bin/x", trivial_exit(0));
    let pid = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    let tracer_rx = os.watch(pid, Role::Tracer).unwrap();
    let _h = os.attach(pid).unwrap();
    os.continue_process(pid).unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    assert!(!tracer_rx.try_iter().any(|e| e.status.is_terminal()));
}

#[test]
fn reap_removes_zombie() {
    let os = os_with(vec![("/bin/x", trivial_exit(0))]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/x")).unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    assert_eq!(os.reap(pid).unwrap(), ProcStatus::Exited(0));
    assert!(matches!(os.status(pid), Err(TdpError::NoSuchProcess(_))));
}

#[test]
fn reap_of_live_process_fails() {
    let os = os_with(vec![("/bin/x", trivial_exit(0))]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    assert!(os.reap(pid).is_err());
    os.kill(pid, 9).unwrap();
    os.wait_terminal(pid, TIMEOUT).unwrap();
    assert!(os.reap(pid).is_ok());
}

#[test]
fn processes_on_lists_live_only() {
    let os = os_with(vec![("/bin/x", trivial_exit(0))]);
    let p1 = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    let p2 = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    let other = os.spawn(ProcSpec::new(HostId(2), "/bin/x"));
    assert!(other.is_err(), "no executable on host 2");
    assert_eq!(os.processes_on(H), vec![p1, p2]);
    os.kill(p1, 9).unwrap();
    os.wait_terminal(p1, TIMEOUT).unwrap();
    assert_eq!(os.processes_on(H), vec![p2]);
}

#[test]
fn proc_info_reports_metadata() {
    let os = os_with(vec![("/bin/x", trivial_exit(0))]);
    let parent = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    let child = os
        .spawn(
            ProcSpec::new(H, "/bin/x")
                .args(["-v"])
                .parent(parent)
                .paused(),
        )
        .unwrap();
    let (host, exe, args, par) = os.proc_info(child).unwrap();
    assert_eq!(host, H);
    assert_eq!(exe, "/bin/x");
    assert_eq!(args, vec!["-v"]);
    assert_eq!(par, Some(parent));
}

#[test]
fn wait_terminal_times_out_on_running_process() {
    let os = os_with(vec![("/bin/x", trivial_exit(0))]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/x").paused()).unwrap();
    assert_eq!(
        os.wait_terminal(pid, Duration::from_millis(50)),
        Err(TdpError::Timeout)
    );
    os.kill(pid, 9).unwrap();
}

#[test]
fn factory_builds_fresh_program_per_exec() {
    let os = os_with(vec![(
        "/bin/counter",
        ExecImage::from_fn(|args| {
            let n: i32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0);
            fn_program(move |_| n)
        }),
    )]);
    let mut env = HashMap::new();
    env.insert("unused".to_string(), "x".to_string());
    let p1 = os
        .spawn(ProcSpec::new(H, "/bin/counter").args(["11"]))
        .unwrap();
    let p2 = os
        .spawn(ProcSpec::new(H, "/bin/counter").args(["22"]))
        .unwrap();
    assert_eq!(
        os.wait_terminal(p1, TIMEOUT).unwrap(),
        ProcStatus::Exited(11)
    );
    assert_eq!(
        os.wait_terminal(p2, TIMEOUT).unwrap(),
        ProcStatus::Exited(22)
    );
    drop(env);
}

#[test]
fn stop_during_compute_parks_at_gate() {
    let os = os_with(vec![(
        "/bin/churn",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                for _ in 0..100_000 {
                    ctx.compute(1);
                }
                0
            })
        }),
    )]);
    let pid = os.spawn(ProcSpec::new(H, "/bin/churn")).unwrap();
    os.stop_process(pid).unwrap();
    let cpu_a = os.cpu_of(pid).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let cpu_b = os.cpu_of(pid).unwrap();
    // Allow one in-flight unit that passed the gate before the stop.
    assert!(
        cpu_b - cpu_a <= 1,
        "stopped process kept computing: {cpu_a} -> {cpu_b}"
    );
    os.continue_process(pid).unwrap();
    assert_eq!(
        os.wait_terminal(pid, TIMEOUT).unwrap(),
        ProcStatus::Exited(0)
    );
}
