//! Breakpoint and stack-tracking tests: the debugger-grade capabilities
//! of the tracing substrate.

use std::sync::Arc;
use std::time::Duration;
use tdp_proto::{HostId, ProcStatus};
use tdp_simos::kernel::ProcSpec;
use tdp_simos::{fn_program, ExecImage, Os};

const H: HostId = HostId(1);
const T: Duration = Duration::from_secs(5);

fn os_with_phases() -> Os {
    let os = Os::new();
    os.fs().install_exec(
        H,
        "/bin/phased",
        ExecImage::new(
            ["main", "phase_a", "phase_b", "inner"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for _ in 0..3 {
                            ctx.call("phase_a", |ctx| {
                                ctx.call("inner", |ctx| ctx.compute(5));
                            });
                            ctx.call("phase_b", |ctx| ctx.compute(2));
                        }
                    });
                    0
                })
            }),
        ),
    );
    os
}

#[test]
fn breakpoint_stops_before_body() {
    let os = os_with_phases();
    let pid = os.spawn(ProcSpec::new(H, "/bin/phased").paused()).unwrap();
    let h = os.attach(pid).unwrap();
    h.arm_probe("phase_a").unwrap();
    h.arm_breakpoint("phase_a").unwrap();
    let hits = h.breakpoint_events().unwrap();
    h.cont().unwrap();

    // First hit: stopped at entry, body not yet counted.
    assert_eq!(hits.recv_timeout(T).unwrap(), "phase_a");
    assert_eq!(os.status(pid).unwrap(), ProcStatus::Stopped);
    let snap = h.read_probes().unwrap();
    assert_eq!(
        snap.counts.get("phase_a"),
        None,
        "stopped before the body ran"
    );
    assert_eq!(h.last_breakpoint().unwrap().as_deref(), Some("phase_a"));

    // Continue: loop hits the breakpoint twice more.
    h.cont().unwrap();
    assert_eq!(hits.recv_timeout(T).unwrap(), "phase_a");
    h.cont().unwrap();
    assert_eq!(hits.recv_timeout(T).unwrap(), "phase_a");
    h.cont().unwrap();
    assert_eq!(os.wait_terminal(pid, T).unwrap(), ProcStatus::Exited(0));
    // All three iterations completed once the debugger let them.
    assert_eq!(h.read_probes().unwrap().counts["phase_a"], 3);
}

#[test]
fn disarm_breakpoint_lets_program_run_free() {
    let os = os_with_phases();
    let pid = os.spawn(ProcSpec::new(H, "/bin/phased").paused()).unwrap();
    let h = os.attach(pid).unwrap();
    h.arm_breakpoint("phase_b").unwrap();
    let hits = h.breakpoint_events().unwrap();
    h.cont().unwrap();
    assert_eq!(hits.recv_timeout(T).unwrap(), "phase_b");
    h.disarm_breakpoint("phase_b").unwrap();
    h.cont().unwrap();
    assert_eq!(os.wait_terminal(pid, T).unwrap(), ProcStatus::Exited(0));
    assert!(hits.try_recv().is_err(), "no further hits after disarm");
}

#[test]
fn arm_breakpoint_on_unknown_symbol_fails() {
    let os = os_with_phases();
    let pid = os.spawn(ProcSpec::new(H, "/bin/phased").paused()).unwrap();
    let h = os.attach(pid).unwrap();
    assert!(h.arm_breakpoint("no_such").is_err());
    os.kill(pid, 9).unwrap();
}

#[test]
fn stack_snapshot_at_breakpoint() {
    let os = os_with_phases();
    let pid = os.spawn(ProcSpec::new(H, "/bin/phased").paused()).unwrap();
    let h = os.attach(pid).unwrap();
    h.set_stack_tracking(true).unwrap();
    h.arm_breakpoint("inner").unwrap();
    let hits = h.breakpoint_events().unwrap();
    h.cont().unwrap();
    hits.recv_timeout(T).unwrap();
    // Stopped at `inner`'s entry: the stack shows main -> phase_a.
    // (`inner` itself is pushed only once its body starts.)
    assert_eq!(h.read_stack().unwrap(), vec!["main", "phase_a"]);
    // Remove the breakpoint before resuming, or the remaining loop
    // iterations would park again with no debugger to continue them.
    h.disarm_breakpoint("inner").unwrap();
    h.cont().unwrap();
    os.wait_terminal(pid, T).unwrap();
}

#[test]
fn stack_tracking_off_by_default() {
    let os = os_with_phases();
    let pid = os.spawn(ProcSpec::new(H, "/bin/phased").paused()).unwrap();
    let h = os.attach(pid).unwrap();
    h.cont().unwrap();
    os.wait_terminal(pid, T).unwrap();
    assert!(h.read_stack().unwrap().is_empty());
}

#[test]
fn kill_releases_process_stopped_at_breakpoint() {
    let os = os_with_phases();
    let pid = os.spawn(ProcSpec::new(H, "/bin/phased").paused()).unwrap();
    let h = os.attach(pid).unwrap();
    h.arm_breakpoint("phase_a").unwrap();
    let hits = h.breakpoint_events().unwrap();
    h.cont().unwrap();
    hits.recv_timeout(T).unwrap();
    os.kill(pid, 9).unwrap();
    assert_eq!(os.wait_terminal(pid, T).unwrap(), ProcStatus::Killed(9));
}

#[test]
fn multiple_breakpoints_report_their_symbol() {
    let os = os_with_phases();
    let pid = os.spawn(ProcSpec::new(H, "/bin/phased").paused()).unwrap();
    let h = os.attach(pid).unwrap();
    h.arm_breakpoint("phase_a").unwrap();
    h.arm_breakpoint("phase_b").unwrap();
    let hits = h.breakpoint_events().unwrap();
    h.cont().unwrap();
    // Alternating stops in program order.
    let mut seen = Vec::new();
    for _ in 0..6 {
        seen.push(hits.recv_timeout(T).unwrap());
        h.cont().unwrap();
    }
    assert_eq!(
        seen,
        vec!["phase_a", "phase_b", "phase_a", "phase_b", "phase_a", "phase_b"]
    );
    os.wait_terminal(pid, T).unwrap();
}
