//! Property test: random sequences of process-control operations never
//! panic, never deadlock, and always leave the kernel in a coherent
//! state (every process is eventually reapable after a kill).

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tdp_proto::HostId;
use tdp_simos::kernel::ProcSpec;
use tdp_simos::{fn_program, ExecImage, Os};

const H: HostId = HostId(1);

#[derive(Debug, Clone)]
enum Op {
    Spawn { paused: bool },
    Stop(usize),
    Cont(usize),
    Kill(usize),
    Attach(usize),
    Detach(usize),
    ArmProbe(usize),
    ReadProbes(usize),
    Status(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let idx = 0usize..6;
    prop_oneof![
        any::<bool>().prop_map(|paused| Op::Spawn { paused }),
        idx.clone().prop_map(Op::Stop),
        idx.clone().prop_map(Op::Cont),
        idx.clone().prop_map(Op::Kill),
        idx.clone().prop_map(Op::Attach),
        idx.clone().prop_map(Op::Detach),
        idx.clone().prop_map(Op::ArmProbe),
        idx.clone().prop_map(Op::ReadProbes),
        idx.prop_map(Op::Status),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
    #[test]
    fn random_control_sequences_stay_coherent(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let os = Os::new();
        os.fs().install_exec(
            H,
            "/bin/worker",
            ExecImage::new(["main", "work"], Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for _ in 0..50 {
                            ctx.call("work", |ctx| {
                                ctx.compute(1);
                                ctx.sleep(Duration::from_micros(200));
                            });
                        }
                    });
                    0
                })
            })),
        );
        let mut pids = Vec::new();
        let mut handles = std::collections::HashMap::new();
        for op in &ops {
            match op {
                Op::Spawn { paused } => {
                    let mut spec = ProcSpec::new(H, "/bin/worker");
                    if *paused {
                        spec = spec.paused();
                    }
                    pids.push(os.spawn(spec).unwrap());
                }
                Op::Stop(i) => {
                    if let Some(pid) = pids.get(*i) {
                        let _ = os.stop_process(*pid); // may be terminal: Err ok
                    }
                }
                Op::Cont(i) => {
                    if let Some(pid) = pids.get(*i) {
                        let _ = os.continue_process(*pid);
                    }
                }
                Op::Kill(i) => {
                    if let Some(pid) = pids.get(*i) {
                        let _ = os.kill(*pid, 9);
                    }
                }
                Op::Attach(i) => {
                    if let Some(pid) = pids.get(*i) {
                        if let Ok(h) = os.attach(*pid) {
                            handles.insert(*pid, h);
                        }
                    }
                }
                Op::Detach(i) => {
                    if let Some(pid) = pids.get(*i) {
                        handles.remove(pid);
                    }
                }
                Op::ArmProbe(i) => {
                    if let Some(pid) = pids.get(*i) {
                        if let Some(h) = handles.get(pid) {
                            let _ = h.arm_probe("work");
                        }
                    }
                }
                Op::ReadProbes(i) => {
                    if let Some(pid) = pids.get(*i) {
                        if let Some(h) = handles.get(pid) {
                            let _ = h.read_probes();
                        }
                    }
                }
                Op::Status(i) => {
                    if let Some(pid) = pids.get(*i) {
                        prop_assert!(os.status(*pid).is_ok(), "spawned pid must have status");
                    }
                }
            }
        }
        // Cleanup invariant: every process can be killed and reaped.
        drop(handles); // detach resumes anything stopped
        for pid in &pids {
            let _ = os.kill(*pid, 9);
        }
        for pid in &pids {
            let st = os.wait_terminal(*pid, Duration::from_secs(10)).unwrap();
            prop_assert!(st.is_terminal());
            prop_assert!(os.reap(*pid).is_ok());
            prop_assert!(os.status(*pid).is_err(), "reaped pid must be gone");
        }
    }
}
