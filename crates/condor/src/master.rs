//! `condor_master` — "its job is to keep track of the other Condor
//! daemons" (§4.1): a supervisor that probes a daemon's liveness and
//! restarts it from a factory when it dies. This implements the
//! fault-detection-and-recovery extension the paper lists as required
//! of the RM ("the RM must be able to detect these failures and
//! respond to them").

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use tdp_core::World;
use tdp_proto::{Addr, HostId, TdpResult};

/// Supervises one daemon identified by its listening address.
pub struct Master {
    restarts: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    monitor: Option<thread::JoinHandle<()>>,
}

impl Master {
    /// Supervise the daemon listening at `probe()`'s address. The
    /// `restart` closure must bring a replacement up (rebinding the same
    /// well-known port) and return its address. Probing opens a
    /// connection from `host` every `interval`; a refused connection
    /// triggers a restart.
    pub fn supervise(
        world: &World,
        host: HostId,
        addr: Addr,
        interval: Duration,
        restart: impl FnMut() -> TdpResult<Addr> + Send + 'static,
    ) -> Master {
        let restarts = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let (r2, s2) = (restarts.clone(), stop.clone());
        let world = world.clone();
        let current = Arc::new(Mutex::new(addr));
        let monitor = thread::Builder::new()
            .name(format!("condor-master-{host}"))
            .spawn(move || {
                let mut restart = restart;
                while !s2.load(Ordering::SeqCst) {
                    thread::sleep(interval);
                    let target = *current.lock();
                    match world.net().connect(host, target) {
                        Ok(conn) => drop(conn), // alive; close the probe
                        Err(_) => {
                            // Daemon gone: bring up a replacement.
                            if let Ok(new_addr) = restart() {
                                *current.lock() = new_addr;
                                r2.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                }
            })
            .expect("spawn master monitor");
        Master {
            restarts,
            stop,
            monitor: Some(monitor),
        }
    }

    /// How many times the supervised daemon has been restarted.
    pub fn restart_count(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }

    /// Stop supervising.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Master {
    fn drop(&mut self) {
        self.stop_inner();
    }
}
