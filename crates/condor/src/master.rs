//! `condor_master` — "its job is to keep track of the other Condor
//! daemons" (§4.1): a supervisor that probes a daemon's liveness and
//! restarts it from a factory when it dies. This implements the
//! fault-detection-and-recovery extension the paper lists as required
//! of the RM ("the RM must be able to detect these failures and
//! respond to them").

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tdp_core::World;
use tdp_proto::{Addr, HostId, TdpError, TdpResult};
use tdp_sync::{Condvar, Mutex};

/// Supervises one daemon identified by its listening address.
pub struct Master {
    restarts: Arc<(Mutex<u64>, Condvar)>,
    stop_tx: Sender<()>,
    monitor: Option<thread::JoinHandle<()>>,
}

impl Master {
    /// Supervise the daemon listening at `probe()`'s address. The
    /// `restart` closure must bring a replacement up (rebinding the same
    /// well-known port) and return its address. Probing opens a
    /// connection from `host` every `interval`; a refused connection
    /// triggers a restart.
    pub fn supervise(
        world: &World,
        host: HostId,
        addr: Addr,
        interval: Duration,
        restart: impl FnMut() -> TdpResult<Addr> + Send + 'static,
    ) -> Master {
        let restarts: Arc<(Mutex<u64>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
        // The stop channel doubles as the tick timer: a recv timeout is
        // one probe interval, a received message (or a dropped sender)
        // is shutdown — so shutdown never waits out a sleep.
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let r2 = restarts.clone();
        let world = world.clone();
        let current = Arc::new(Mutex::new(addr));
        let monitor = thread::Builder::new()
            .name(format!("condor-master-{host}"))
            .spawn(move || {
                let mut restart = restart;
                loop {
                    match stop_rx.recv_timeout(interval) {
                        Err(RecvTimeoutError::Timeout) => {}
                        _ => return,
                    }
                    let target = *current.lock();
                    match world.net().connect(host, target) {
                        Ok(conn) => drop(conn), // alive; close the probe
                        Err(_) => {
                            // Daemon gone: bring up a replacement.
                            if let Ok(new_addr) = restart() {
                                *current.lock() = new_addr;
                                let (count, cv) = &*r2;
                                *count.lock() += 1;
                                cv.notify_all();
                            }
                        }
                    }
                }
            })
            .expect("spawn master monitor");
        Master {
            restarts,
            stop_tx,
            monitor: Some(monitor),
        }
    }

    /// How many times the supervised daemon has been restarted.
    pub fn restart_count(&self) -> u64 {
        *self.restarts.0.lock()
    }

    /// Block until at least `n` restarts have happened; returns the
    /// count observed. Lets tests (and operators) wait on recovery
    /// without polling.
    pub fn wait_restarts(&self, n: u64, timeout: Duration) -> TdpResult<u64> {
        let deadline = Instant::now() + timeout;
        let (count, cv) = &*self.restarts;
        let mut c = count.lock();
        while *c < n {
            if cv.wait_until(&mut c, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
        Ok(*c)
    }

    /// Stop supervising.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let _ = self.stop_tx.try_send(());
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Master {
    fn drop(&mut self) {
        self.stop_inner();
    }
}
