//! Wire messages between Condor daemons (JSON-encoded, one message per
//! network chunk) and the tiny send/recv helpers.

use crate::classad::ClassAd;
use crate::submit::SubmitDescription;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use tdp_netsim::Conn;
use tdp_proto::{Addr, HostId, JobId, TdpError, TdpResult};

/// Messages to/from the matchmaker (collector + negotiator).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MmMsg {
    /// startd → matchmaker: advertise a machine.
    RegisterMachine {
        name: String,
        host: HostId,
        startd: Addr,
        ad: ClassAd,
    },
    /// startd → matchmaker: update availability.
    UpdateMachine { name: String, available: bool },
    /// startd → matchmaker: leaving the pool.
    UnregisterMachine { name: String },
    /// schedd → matchmaker: find a machine for this job ad, excluding
    /// the named machines (already claimed for the same MPI job).
    Negotiate {
        job_ad: ClassAd,
        exclude: Vec<String>,
    },
    /// matchmaker → schedd.
    MatchFound {
        name: String,
        host: HostId,
        startd: Addr,
        ad: ClassAd,
    },
    /// matchmaker → schedd.
    NoMatch,
    /// Acknowledgement for register/update/unregister.
    Ack,
    /// schedd/tests → matchmaker: dump the machine table.
    QueryMachines,
    /// matchmaker reply: (name, available) pairs.
    Machines(Vec<(String, bool)>),
}

/// Everything the starter needs to run one (rank of a) job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobDetails {
    pub job: JobId,
    pub submit: SubmitDescription,
    /// Where the shadow for this job listens (remote syscalls + status).
    pub shadow: Addr,
    /// Submit host (source of staged files).
    pub submit_host: HostId,
    /// MPI rank this activation runs (0 for Vanilla/Standard).
    pub rank: u32,
    /// Tool daemons for non-zero ranks auto-run (§4.3: they
    /// "immediately issue a run command").
    pub tool_auto_run: bool,
}

/// Claiming-protocol and activation messages (schedd ↔ startd).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ClaimMsg {
    /// schedd → startd: may I claim this machine for `job`?
    RequestClaim { job: JobId },
    /// startd → schedd: claim granted.
    ClaimAccepted { claim_id: u64 },
    /// startd → schedd: machine busy or gone.
    ClaimRejected { reason: String },
    /// schedd → startd: run this job under the claim. (Boxed: the
    /// details dwarf the other variants.)
    ActivateClaim {
        claim_id: u64,
        details: Box<JobDetails>,
    },
    /// startd → schedd: starter launched.
    Activated,
    /// schedd → startd: give the machine back.
    ReleaseClaim { claim_id: u64 },
    /// startd → schedd: released.
    Released,
}

/// Remote-syscall and status messages (starter → shadow), plus replies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ShadowMsg {
    /// Read a file on the submit machine.
    FetchFile {
        path: String,
    },
    FileData {
        path: String,
        data: Vec<u8>,
    },
    FileError {
        path: String,
        error: String,
    },
    /// Write a file on the submit machine (output staging).
    StoreFile {
        path: String,
        data: Vec<u8>,
    },
    StoreOk,
    /// Job status change, as an attribute-style string.
    StatusUpdate {
        job: JobId,
        rank: u32,
        status: String,
    },
    /// Terminal report.
    JobDone {
        job: JobId,
        rank: u32,
        status: String,
    },
    /// The starter could not run this rank at all (staging failure,
    /// missing executable, dead tool…). The schedd may requeue.
    RankFailed {
        job: JobId,
        rank: u32,
        error: String,
    },
    Ack,
}

/// Send one JSON message as one chunk.
pub fn send_json<T: Serialize>(conn: &Conn, msg: &T) -> TdpResult<()> {
    let data =
        serde_json::to_vec(msg).map_err(|e| TdpError::Protocol(format!("json encode: {e}")))?;
    conn.send(&data)
}

/// Receive one JSON message (one chunk).
pub fn recv_json<T: DeserializeOwned>(conn: &mut Conn) -> TdpResult<T> {
    let chunk = conn.recv()?;
    serde_json::from_slice(&chunk).map_err(|e| TdpError::Protocol(format!("json decode: {e}")))
}

/// Receive with a deadline.
pub fn recv_json_timeout<T: DeserializeOwned>(conn: &mut Conn, t: Duration) -> TdpResult<T> {
    let chunk = conn.recv_timeout(t)?;
    serde_json::from_slice(&chunk).map_err(|e| TdpError::Protocol(format!("json decode: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classad::ClassAd;

    #[test]
    fn json_roundtrip_over_conn() {
        let (a, mut b) = Conn::pair();
        let msg = MmMsg::RegisterMachine {
            name: "slot1@host2".into(),
            host: HostId(2),
            startd: Addr::new(HostId(2), 9620),
            ad: ClassAd::new().with_int("Memory", 512),
        };
        send_json(&a, &msg).unwrap();
        let got: MmMsg = recv_json(&mut b).unwrap();
        match got {
            MmMsg::RegisterMachine { name, host, .. } => {
                assert_eq!(name, "slot1@host2");
                assert_eq!(host, HostId(2));
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn claim_and_shadow_msgs_roundtrip() {
        let (a, mut b) = Conn::pair();
        send_json(&a, &ClaimMsg::RequestClaim { job: JobId(1) }).unwrap();
        assert!(matches!(
            recv_json::<ClaimMsg>(&mut b).unwrap(),
            ClaimMsg::RequestClaim { .. }
        ));
        send_json(
            &a,
            &ShadowMsg::FetchFile {
                path: "infile".into(),
            },
        )
        .unwrap();
        assert!(matches!(
            recv_json::<ShadowMsg>(&mut b).unwrap(),
            ShadowMsg::FetchFile { .. }
        ));
    }

    #[test]
    fn garbage_decodes_to_error() {
        let (a, mut b) = Conn::pair();
        a.send(b"{not json").unwrap();
        assert!(recv_json::<MmMsg>(&mut b).is_err());
    }
}
