//! `condor_startd` — represents one execution machine: advertises it to
//! the matchmaker, accepts claims from the schedd, and spawns a
//! `condor_starter` per activation (Figure 4).

use crate::classad::ClassAd;
use crate::messages::{recv_json, recv_json_timeout, send_json, ClaimMsg, MmMsg};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use tdp_core::World;
use tdp_proto::{Addr, HostId, TdpError, TdpResult};
use tdp_sync::Mutex;

/// The startd's well-known port on every execution host.
pub const STARTD_PORT: u16 = 9620;

struct StartdInner {
    world: World,
    host: HostId,
    name: String,
    mm: Addr,
    busy: AtomicBool,
    next_claim: AtomicU64,
    /// Claim currently held (id), if any.
    claim: Mutex<Option<u64>>,
    /// Pid of the application currently supervised by a starter on this
    /// machine, for vacate.
    running_app: Arc<Mutex<Option<tdp_proto::Pid>>>,
    alive: AtomicBool,
}

/// A running startd.
pub struct Startd {
    inner: Arc<StartdInner>,
    addr: Addr,
}

impl Startd {
    /// Start on `host`, advertising `ad` to the matchmaker at `mm`.
    pub fn start(world: &World, host: HostId, ad: ClassAd, mm: Addr) -> TdpResult<Startd> {
        let listener = world.net().listen(host, STARTD_PORT)?;
        let addr = listener.local_addr();
        let name = format!("slot1@host{}", host.0);
        let inner = Arc::new(StartdInner {
            world: world.clone(),
            host,
            name: name.clone(),
            mm,
            busy: AtomicBool::new(false),
            next_claim: AtomicU64::new(1),
            claim: Mutex::new(None),
            running_app: Arc::new(Mutex::new(None)),
            alive: AtomicBool::new(true),
        });

        // Register with the matchmaker.
        let mut conn = world.net().connect(host, mm)?;
        send_json(
            &conn,
            &MmMsg::RegisterMachine {
                name,
                host,
                startd: addr,
                ad,
            },
        )?;
        let _: MmMsg = recv_json_timeout(&mut conn, Duration::from_secs(5))?;

        let inner2 = inner.clone();
        thread::Builder::new()
            .name(format!("condor-startd-{host}"))
            .spawn(move || {
                while let Ok(mut conn) = listener.accept() {
                    let inner = inner2.clone();
                    thread::Builder::new()
                        .name("startd-session".into())
                        .spawn(move || {
                            while let Ok(msg) = recv_json::<ClaimMsg>(&mut conn) {
                                let reply = inner.handle(msg);
                                if send_json(&conn, &reply).is_err() {
                                    break;
                                }
                            }
                        })
                        .expect("spawn startd session");
                }
            })
            .map_err(|e| TdpError::Substrate(format!("spawn startd: {e}")))?;
        Ok(Startd { inner, addr })
    }

    pub fn addr(&self) -> Addr {
        self.addr
    }

    pub fn name(&self) -> &str {
        &self.inner.name
    }

    pub fn host(&self) -> HostId {
        self.inner.host
    }

    pub fn is_busy(&self) -> bool {
        self.inner.busy.load(Ordering::SeqCst)
    }

    /// Simulate a daemon crash: stop listening and mark dead (the
    /// master's restart trigger in the fault-recovery extension).
    pub fn simulate_crash(&self) {
        self.inner.alive.store(false, Ordering::SeqCst);
        self.inner.world.net().unbind(self.addr);
        // Tell the matchmaker the machine is gone, as its ad would time
        // out in real Condor.
        if let Ok(conn) = self
            .inner
            .world
            .net()
            .connect(self.inner.host, self.inner.mm)
        {
            let _ = send_json(
                &conn,
                &MmMsg::UnregisterMachine {
                    name: self.inner.name.clone(),
                },
            );
        }
    }

    /// Is the daemon (believed) alive?
    pub fn alive(&self) -> bool {
        self.inner.alive.load(Ordering::SeqCst)
    }

    /// Vacate the machine: politely evict the running job with signal
    /// 15 (Condor's preemption). The starter stages the checkpoint back
    /// and reports `killed:15`; a checkpointing job is then requeued by
    /// the schedd.
    pub fn vacate(&self) -> TdpResult<()> {
        let pid = self.inner.running_app.lock().ok_or_else(|| {
            TdpError::Substrate(format!("{}: nothing to vacate", self.inner.name))
        })?;
        self.inner.world.os().kill(pid, 15)
    }
}

impl tdp_core::Supervisable for Startd {
    fn ops_name(&self) -> String {
        format!("condor.startd.{}", self.inner.host.0)
    }

    fn ops_probe(&self) -> TdpResult<()> {
        // Same probe the condor_master uses: a connection to the
        // well-known port (refused once `simulate_crash` unbinds it).
        let conn = self.inner.world.net().connect(self.inner.host, self.addr)?;
        drop(conn);
        Ok(())
    }
}

/// `run_starter` plus bookkeeping of the supervised app pid so the
/// startd can vacate it.
fn run_starter_tracked(
    world: &World,
    host: HostId,
    details: &crate::messages::JobDetails,
    slot: &Mutex<Option<tdp_proto::Pid>>,
) -> TdpResult<tdp_proto::ProcStatus> {
    let r = run_starter_with_pid_slot(world, host, details, slot);
    *slot.lock() = None;
    r
}

fn run_starter_with_pid_slot(
    world: &World,
    host: HostId,
    details: &crate::messages::JobDetails,
    slot: &Mutex<Option<tdp_proto::Pid>>,
) -> TdpResult<tdp_proto::ProcStatus> {
    crate::starter::run_starter_observed(world, host, details, |pid| {
        *slot.lock() = Some(pid);
    })
}

impl StartdInner {
    fn handle(self: &Arc<Self>, msg: ClaimMsg) -> ClaimMsg {
        match msg {
            ClaimMsg::RequestClaim { .. } => {
                if self.busy.swap(true, Ordering::SeqCst) {
                    ClaimMsg::ClaimRejected {
                        reason: "machine busy".into(),
                    }
                } else {
                    let id = self.next_claim.fetch_add(1, Ordering::SeqCst);
                    *self.claim.lock() = Some(id);
                    self.advertise(false);
                    ClaimMsg::ClaimAccepted { claim_id: id }
                }
            }
            ClaimMsg::ActivateClaim { claim_id, details } => {
                let details = *details;
                if *self.claim.lock() != Some(claim_id) {
                    return ClaimMsg::ClaimRejected {
                        reason: "unknown claim".into(),
                    };
                }
                // Spawn the starter; when it finishes, free the machine.
                let me = self.clone();
                thread::Builder::new()
                    .name(format!("condor-starter-{}", details.job))
                    .spawn(move || {
                        let r = run_starter_tracked(&me.world, me.host, &details, &me.running_app);
                        if let Err(e) = r {
                            // Report upstream so the schedd can requeue
                            // the rank elsewhere (fault recovery).
                            if let Ok(conn) = me.world.net().connect(me.host, details.shadow) {
                                let _ = send_json(
                                    &conn,
                                    &crate::messages::ShadowMsg::RankFailed {
                                        job: details.job,
                                        rank: details.rank,
                                        error: format!("{} on {}: {e}", me.name, me.host),
                                    },
                                );
                            }
                        }
                        *me.claim.lock() = None;
                        me.busy.store(false, Ordering::SeqCst);
                        me.advertise(true);
                    })
                    .expect("spawn starter");
                ClaimMsg::Activated
            }
            ClaimMsg::ReleaseClaim { claim_id } => {
                let mut claim = self.claim.lock();
                if *claim == Some(claim_id) {
                    *claim = None;
                    self.busy.store(false, Ordering::SeqCst);
                    self.advertise(true);
                }
                ClaimMsg::Released
            }
            other => {
                let _ = other;
                ClaimMsg::ClaimRejected {
                    reason: "unexpected message".into(),
                }
            }
        }
    }

    fn advertise(&self, available: bool) {
        if let Ok(mut conn) = self.world.net().connect(self.host, self.mm) {
            let _ = send_json(
                &conn,
                &MmMsg::UpdateMachine {
                    name: self.name.clone(),
                    available,
                },
            );
            let _ = recv_json_timeout::<MmMsg>(&mut conn, Duration::from_secs(2));
        }
    }
}
