//! Submit-file parsing — the Figure 5B format, including the
//! `ToolDaemon*` extension directives Parador added.
//!
//! ```text
//! universe             = Vanilla
//! executable           = foo
//! input                = infile
//! output               = outfile
//! arguments            = 1 2 3
//! transfer_files       = always
//! +SuspendJobAtExec    = True
//! +ToolDaemonCmd       = "paradynd"
//! +ToolDaemonArgs      = "-zunix -l3 -mpinguino.cs.wisc.edu -p2090 -P2091 -a%pid"
//! +ToolDaemonOutput    = "daemon.out"
//! +ToolDaemonError     = "daemon.err"
//! transfer_input_files = paradynd
//! queue
//! ```

use crate::classad::ClassAd;
use serde::{Deserialize, Serialize};
use tdp_proto::attr::split_multi_value;
use tdp_proto::{TdpError, TdpResult};

/// Condor execution environment (§4.3: "Condor defines six different
/// execution environments, called universes"; the prototype covered
/// Vanilla and MPI, and we add Standard's remote-syscall file access).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Universe {
    #[default]
    Vanilla,
    Mpi,
    Standard,
}

impl Universe {
    pub fn parse(s: &str) -> Option<Universe> {
        match s.to_ascii_lowercase().as_str() {
            "vanilla" => Some(Universe::Vanilla),
            "mpi" => Some(Universe::Mpi),
            "standard" => Some(Universe::Standard),
            _ => None,
        }
    }
}

/// The tool-daemon block of a submit file (`+ToolDaemon*`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToolDaemonSpec {
    /// `+ToolDaemonCmd`: executable of the RT daemon.
    pub cmd: String,
    /// `+ToolDaemonArgs`, split like a command line (`%pid` is left
    /// untouched — the Parador marker for "fetch the pid over TDP").
    pub args: Vec<String>,
    /// `+ToolDaemonOutput` / `+ToolDaemonError`: where the daemon's
    /// stdio lands (on the submit host, staged back after the run).
    pub output: Option<String>,
    pub error: Option<String>,
}

/// A parsed submit description.
///
/// ```
/// use tdp_condor::{SubmitDescription, Universe};
/// let d = SubmitDescription::parse(
///     "universe = MPI\nexecutable = ring\nmachine_count = 4\n+SuspendJobAtExec = True\nqueue\n",
/// ).unwrap();
/// assert_eq!(d.universe, Universe::Mpi);
/// assert_eq!(d.machine_count, 4);
/// assert!(d.suspend_job_at_exec);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitDescription {
    pub universe: Universe,
    pub executable: String,
    pub arguments: Vec<String>,
    pub input: Option<String>,
    pub output: Option<String>,
    pub error: Option<String>,
    /// `transfer_files = always|never`.
    pub transfer_files: bool,
    /// `transfer_input_files`: extra files to ship (e.g. `paradynd`).
    pub transfer_input_files: Vec<String>,
    /// `+SuspendJobAtExec`: create the job stopped-at-exec.
    pub suspend_job_at_exec: bool,
    /// `+ToolDaemon*` block, if any.
    pub tool_daemon: Option<ToolDaemonSpec>,
    /// `+Checkpointing`: vacated jobs (killed with signal 15) are
    /// requeued and resume from the checkpoint file.
    pub checkpointing: bool,
    /// `checkpoint_file`: staged in before each (re)run and staged back
    /// after every termination.
    pub checkpoint_file: Option<String>,
    /// `machine_count` (MPI universe).
    pub machine_count: u32,
    /// `requirements = Memory >= 512 && Arch == X86_64`.
    pub requirements: Vec<String>,
    /// `rank = <machine attr>`.
    pub rank: Option<String>,
    /// How many instances `queue` asked for.
    pub count: u32,
}

impl Default for SubmitDescription {
    fn default() -> Self {
        SubmitDescription {
            universe: Universe::Vanilla,
            executable: String::new(),
            arguments: Vec::new(),
            input: None,
            output: None,
            error: None,
            transfer_files: false,
            transfer_input_files: Vec::new(),
            suspend_job_at_exec: false,
            tool_daemon: None,
            checkpointing: false,
            checkpoint_file: None,
            machine_count: 1,
            requirements: Vec::new(),
            rank: None,
            count: 1,
        }
    }
}

fn unquote(s: &str) -> String {
    let t = s.trim();
    if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
        t[1..t.len() - 1].to_string()
    } else {
        t.to_string()
    }
}

impl SubmitDescription {
    /// Parse the submit-file text. Errors carry line context.
    pub fn parse(text: &str) -> TdpResult<SubmitDescription> {
        let mut d = SubmitDescription::default();
        let mut tool_cmd: Option<String> = None;
        let mut tool_args: Vec<String> = Vec::new();
        let mut tool_out: Option<String> = None;
        let mut tool_err: Option<String> = None;
        let mut queued = false;

        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.eq_ignore_ascii_case("queue") {
                queued = true;
                d.count = 1;
                continue;
            }
            if let Some(n) = line.to_ascii_lowercase().strip_prefix("queue ") {
                queued = true;
                d.count = n.trim().parse().map_err(|_| {
                    TdpError::Substrate(format!("line {}: bad queue count {n:?}", ln + 1))
                })?;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(TdpError::Substrate(format!(
                    "line {}: expected key = value, got {line:?}",
                    ln + 1
                )));
            };
            let key = key.trim();
            let value = value.trim();
            match key.to_ascii_lowercase().as_str() {
                "universe" => {
                    d.universe = Universe::parse(value).ok_or_else(|| {
                        TdpError::Substrate(format!("line {}: unknown universe {value:?}", ln + 1))
                    })?;
                }
                "executable" => d.executable = unquote(value),
                "arguments" => d.arguments = split_multi_value(&unquote(value)),
                "input" => d.input = Some(unquote(value)),
                "output" => d.output = Some(unquote(value)),
                "error" => d.error = Some(unquote(value)),
                "transfer_files" => d.transfer_files = value.eq_ignore_ascii_case("always"),
                "transfer_input_files" | "tranfer_input_files" => {
                    // The paper's Figure 5B itself contains the typo
                    // "tranfer_input_files"; accept both spellings.
                    d.transfer_input_files = value.split(',').map(|s| unquote(s.trim())).collect();
                }
                "machine_count" => {
                    d.machine_count = value.parse().map_err(|_| {
                        TdpError::Substrate(format!("line {}: bad machine_count", ln + 1))
                    })?;
                }
                "requirements" => {
                    d.requirements = value.split("&&").map(|s| s.trim().to_string()).collect();
                }
                "rank" => d.rank = Some(unquote(value)),
                "+suspendjobatexec" => {
                    d.suspend_job_at_exec = value.eq_ignore_ascii_case("true");
                }
                "+checkpointing" => {
                    d.checkpointing = value.eq_ignore_ascii_case("true");
                }
                "checkpoint_file" => d.checkpoint_file = Some(unquote(value)),
                "+tooldaemoncmd" => tool_cmd = Some(unquote(value)),
                "+tooldaemonargs" | "+tooldaemonarguments" => {
                    tool_args = split_multi_value(&unquote(value));
                }
                "+tooldaemonoutput" => tool_out = Some(unquote(value)),
                "+tooldaemonerror" => tool_err = Some(unquote(value)),
                other => {
                    // Unknown +attributes are legal ClassAd extensions;
                    // unknown plain keys are errors.
                    if !other.starts_with('+') {
                        return Err(TdpError::Substrate(format!(
                            "line {}: unknown submit command {key:?}",
                            ln + 1
                        )));
                    }
                }
            }
        }
        if d.executable.is_empty() {
            return Err(TdpError::Substrate("submit file has no executable".into()));
        }
        if !queued {
            return Err(TdpError::Substrate(
                "submit file has no queue statement".into(),
            ));
        }
        if let Some(cmd) = tool_cmd {
            d.tool_daemon = Some(ToolDaemonSpec {
                cmd,
                args: tool_args,
                output: tool_out,
                error: tool_err,
            });
        }
        Ok(d)
    }

    /// The job's ClassAd, for matchmaking.
    pub fn job_ad(&self) -> ClassAd {
        let mut ad = ClassAd::new()
            .with_str("Cmd", self.executable.clone())
            .with_int("MachineCount", i64::from(self.machine_count));
        for r in &self.requirements {
            ad = ad.require(r);
        }
        if let Some(rank) = &self.rank {
            ad = ad.rank_by(rank.clone());
        }
        ad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact submit file of Figure 5B (hostname adapted to the
    /// simulated form).
    pub const FIG5B: &str = r#"
universe = Vanilla
executable = foo
input = infile
output = outfile
arguments = 1 2 3
transfer_files = always
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-zunix -l3 -m0 -p2090 -P2091 -a%pid"
+ToolDaemonOutput = "daemon.out"
+ToolDaemonError = "daemon.err"
tranfer_input_files = paradynd
queue
"#;

    #[test]
    fn parses_figure_5b() {
        let d = SubmitDescription::parse(FIG5B).unwrap();
        assert_eq!(d.universe, Universe::Vanilla);
        assert_eq!(d.executable, "foo");
        assert_eq!(d.input.as_deref(), Some("infile"));
        assert_eq!(d.output.as_deref(), Some("outfile"));
        assert_eq!(d.arguments, vec!["1", "2", "3"]);
        assert!(d.transfer_files);
        assert!(d.suspend_job_at_exec);
        let tool = d.tool_daemon.unwrap();
        assert_eq!(tool.cmd, "paradynd");
        assert_eq!(
            tool.args,
            vec!["-zunix", "-l3", "-m0", "-p2090", "-P2091", "-a%pid"]
        );
        assert_eq!(tool.output.as_deref(), Some("daemon.out"));
        assert_eq!(tool.error.as_deref(), Some("daemon.err"));
        assert_eq!(d.transfer_input_files, vec!["paradynd"]);
        assert_eq!(d.count, 1);
    }

    #[test]
    fn minimal_vanilla_job() {
        let d = SubmitDescription::parse("executable = /bin/x\nqueue\n").unwrap();
        assert_eq!(d.universe, Universe::Vanilla);
        assert!(d.tool_daemon.is_none());
        assert!(!d.suspend_job_at_exec);
    }

    #[test]
    fn mpi_universe_with_machine_count() {
        let d = SubmitDescription::parse(
            "universe = MPI\nexecutable = ring\nmachine_count = 4\nqueue\n",
        )
        .unwrap();
        assert_eq!(d.universe, Universe::Mpi);
        assert_eq!(d.machine_count, 4);
    }

    #[test]
    fn requirements_and_rank() {
        let d = SubmitDescription::parse(
            "executable = x\nrequirements = Memory >= 512 && HasTdp == true\nrank = Memory\nqueue\n",
        )
        .unwrap();
        assert_eq!(d.requirements.len(), 2);
        let ad = d.job_ad();
        assert_eq!(ad.requirements.len(), 2);
        assert_eq!(ad.rank_attr.as_deref(), Some("Memory"));
    }

    #[test]
    fn checkpointing_directives() {
        let d = SubmitDescription::parse(
            "executable = x\n+Checkpointing = True\ncheckpoint_file = ckpt\nqueue\n",
        )
        .unwrap();
        assert!(d.checkpointing);
        assert_eq!(d.checkpoint_file.as_deref(), Some("ckpt"));
    }

    #[test]
    fn queue_count() {
        let d = SubmitDescription::parse("executable = x\nqueue 5\n").unwrap();
        assert_eq!(d.count, 5);
    }

    #[test]
    fn errors_are_informative() {
        assert!(SubmitDescription::parse("queue\n").is_err()); // no executable
        assert!(SubmitDescription::parse("executable = x\n").is_err()); // no queue
        let e = SubmitDescription::parse("executable = x\nbogus_key = 1\nqueue\n").unwrap_err();
        assert!(e.to_string().contains("bogus_key"), "{e}");
        let e = SubmitDescription::parse("executable = x\nuniverse = Globus\nqueue\n").unwrap_err();
        assert!(e.to_string().contains("Globus"));
        assert!(SubmitDescription::parse("executable = x\nqueue abc\n").is_err());
    }

    #[test]
    fn unknown_plus_attrs_tolerated() {
        let d = SubmitDescription::parse("executable = x\n+MyCustomThing = 7\nqueue\n").unwrap();
        assert_eq!(d.executable, "x");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let d = SubmitDescription::parse("# job\n\nexecutable = x\n  # indented comment\nqueue\n")
            .unwrap();
        assert_eq!(d.executable, "x");
    }
}
