//! ClassAds: the attribute/requirement descriptions Condor uses for
//! both machines and jobs, with symmetric matchmaking.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdValue {
    Str(String),
    Int(i64),
    Bool(bool),
}

impl fmt::Display for AdValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdValue::Str(s) => write!(f, "{s}"),
            AdValue::Int(i) => write!(f, "{i}"),
            AdValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Comparison operator in a requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    Eq,
    Ne,
    Ge,
    Le,
    Gt,
    Lt,
}

/// One constraint the *other* ad must satisfy, e.g. `Memory >= 512`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Requirement {
    pub attr: String,
    pub op: Op,
    pub value: AdValue,
}

impl Requirement {
    /// Parse `Attr OP Value` (e.g. `Memory >= 512`, `Arch == "X86_64"`).
    pub fn parse(s: &str) -> Option<Requirement> {
        for (tok, op) in [
            ("==", Op::Eq),
            ("!=", Op::Ne),
            (">=", Op::Ge),
            ("<=", Op::Le),
            (">", Op::Gt),
            ("<", Op::Lt),
        ] {
            if let Some((lhs, rhs)) = s.split_once(tok) {
                let attr = lhs.trim().to_string();
                let raw = rhs.trim();
                if attr.is_empty() || raw.is_empty() {
                    return None;
                }
                let value = if let Ok(i) = raw.parse::<i64>() {
                    AdValue::Int(i)
                } else if raw.eq_ignore_ascii_case("true") {
                    AdValue::Bool(true)
                } else if raw.eq_ignore_ascii_case("false") {
                    AdValue::Bool(false)
                } else {
                    AdValue::Str(raw.trim_matches('"').to_string())
                };
                return Some(Requirement { attr, op, value });
            }
        }
        None
    }

    /// Does `ad` satisfy this requirement? Missing attributes never
    /// satisfy anything (undefined semantics).
    pub fn satisfied_by(&self, ad: &ClassAd) -> bool {
        let Some(actual) = ad.get(&self.attr) else {
            return false;
        };
        match (actual, &self.value) {
            (AdValue::Int(a), AdValue::Int(b)) => cmp_ord(self.op, a.cmp(b)),
            (AdValue::Str(a), AdValue::Str(b)) => cmp_ord(self.op, a.cmp(b)),
            (AdValue::Bool(a), AdValue::Bool(b)) => match self.op {
                Op::Eq => a == b,
                Op::Ne => a != b,
                _ => false,
            },
            _ => false, // type mismatch never matches
        }
    }
}

fn cmp_ord(op: Op, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    matches!(
        (op, ord),
        (Op::Eq, Equal)
            | (Op::Ne, Less)
            | (Op::Ne, Greater)
            | (Op::Ge, Equal)
            | (Op::Ge, Greater)
            | (Op::Le, Equal)
            | (Op::Le, Less)
            | (Op::Gt, Greater)
            | (Op::Lt, Less)
    )
}

/// An ad: attributes describing this entity plus requirements on (and a
/// rank over) the entity it is matched against.
///
/// ```
/// use tdp_condor::ClassAd;
/// let machine = ClassAd::new().with_int("Memory", 1024).with_str("Arch", "X86_64");
/// let job = ClassAd::new().require("Memory >= 512").rank_by("Memory");
/// assert!(job.matches(&machine));
/// assert_eq!(job.rank_of(&machine), 1024);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassAd {
    pub attrs: BTreeMap<String, AdValue>,
    /// Constraints the counterpart ad must satisfy.
    pub requirements: Vec<Requirement>,
    /// Attribute of the counterpart used as preference (higher wins).
    pub rank_attr: Option<String>,
}

impl ClassAd {
    pub fn new() -> ClassAd {
        ClassAd::default()
    }

    pub fn with(mut self, attr: impl Into<String>, value: AdValue) -> ClassAd {
        self.attrs.insert(attr.into(), value);
        self
    }

    pub fn with_int(self, attr: impl Into<String>, v: i64) -> ClassAd {
        self.with(attr, AdValue::Int(v))
    }

    pub fn with_str(self, attr: impl Into<String>, v: impl Into<String>) -> ClassAd {
        self.with(attr, AdValue::Str(v.into()))
    }

    pub fn with_bool(self, attr: impl Into<String>, v: bool) -> ClassAd {
        self.with(attr, AdValue::Bool(v))
    }

    pub fn require(mut self, req: &str) -> ClassAd {
        if let Some(r) = Requirement::parse(req) {
            self.requirements.push(r);
        }
        self
    }

    pub fn rank_by(mut self, attr: impl Into<String>) -> ClassAd {
        self.rank_attr = Some(attr.into());
        self
    }

    pub fn get(&self, attr: &str) -> Option<&AdValue> {
        self.attrs.get(attr)
    }

    pub fn get_int(&self, attr: &str) -> Option<i64> {
        match self.attrs.get(attr) {
            Some(AdValue::Int(i)) => Some(*i),
            _ => None,
        }
    }

    pub fn get_str(&self, attr: &str) -> Option<&str> {
        match self.attrs.get(attr) {
            Some(AdValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Symmetric match: every requirement of each side is satisfied by
    /// the other side's attributes — Condor's two-party matchmaking.
    pub fn matches(&self, other: &ClassAd) -> bool {
        self.requirements.iter().all(|r| r.satisfied_by(other))
            && other.requirements.iter().all(|r| r.satisfied_by(self))
    }

    /// Rank of `other` from this ad's point of view (missing/non-int
    /// rank attribute = 0).
    pub fn rank_of(&self, other: &ClassAd) -> i64 {
        self.rank_attr
            .as_deref()
            .and_then(|a| other.get_int(a))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(mem: i64, arch: &str) -> ClassAd {
        ClassAd::new()
            .with_int("Memory", mem)
            .with_str("Arch", arch)
            .with_bool("HasTdp", true)
    }

    #[test]
    fn parse_requirements() {
        let r = Requirement::parse("Memory >= 512").unwrap();
        assert_eq!(r.attr, "Memory");
        assert_eq!(r.op, Op::Ge);
        assert_eq!(r.value, AdValue::Int(512));
        let r = Requirement::parse("Arch == \"X86_64\"").unwrap();
        assert_eq!(r.value, AdValue::Str("X86_64".into()));
        let r = Requirement::parse("HasTdp == true").unwrap();
        assert_eq!(r.value, AdValue::Bool(true));
        assert!(Requirement::parse("nonsense").is_none());
        assert!(Requirement::parse(">= 5").is_none());
    }

    #[test]
    fn requirement_satisfaction() {
        let m = machine(1024, "X86_64");
        assert!(Requirement::parse("Memory >= 512")
            .unwrap()
            .satisfied_by(&m));
        assert!(Requirement::parse("Memory >= 1024")
            .unwrap()
            .satisfied_by(&m));
        assert!(!Requirement::parse("Memory > 1024")
            .unwrap()
            .satisfied_by(&m));
        assert!(Requirement::parse("Arch == X86_64")
            .unwrap()
            .satisfied_by(&m));
        assert!(Requirement::parse("Arch != SPARC")
            .unwrap()
            .satisfied_by(&m));
        assert!(Requirement::parse("HasTdp == true")
            .unwrap()
            .satisfied_by(&m));
        // Missing attribute never satisfies.
        assert!(!Requirement::parse("Disk >= 1").unwrap().satisfied_by(&m));
        // Type mismatch never satisfies.
        assert!(!Requirement::parse("Memory == big")
            .unwrap()
            .satisfied_by(&m));
    }

    #[test]
    fn symmetric_match() {
        let job = ClassAd::new()
            .with_int("ImageSize", 100)
            .require("Memory >= 512");
        let m_ok = machine(1024, "X86_64");
        let m_small = machine(256, "X86_64");
        assert!(job.matches(&m_ok));
        assert!(!job.matches(&m_small));
        // The machine can also constrain the job.
        let picky = machine(1024, "X86_64").require("ImageSize <= 50");
        assert!(!job.matches(&picky));
    }

    #[test]
    fn rank_prefers_bigger() {
        let job = ClassAd::new().rank_by("Memory");
        assert_eq!(job.rank_of(&machine(1024, "A")), 1024);
        assert_eq!(job.rank_of(&machine(64, "A")), 64);
        let unranked = ClassAd::new();
        assert_eq!(unranked.rank_of(&machine(1024, "A")), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let ad = machine(512, "X86_64")
            .require("ImageSize <= 50")
            .rank_by("Prio");
        let json = serde_json::to_string(&ad).unwrap();
        let back: ClassAd = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ad);
    }
}
