//! The Standard universe's remote-syscall library — our
//! `condor_syscall_lib`.
//!
//! §4.1: "Jobs that are linked for Condor's standard universe, which
//! perform remote system calls, do so via the condor_shadow. Any system
//! call performed on the remote execute machine is sent over the
//! network to the condor_shadow which actually performs the system call
//! (such as file I/O) on the submit machine, and the result is sent
//! back over the network to the remote job."
//!
//! An application "links" this library by calling
//! [`RemoteFs::from_env`] inside its program body: the starter exports
//! the shadow's address in the `CONDOR_SHADOW` environment variable for
//! Standard-universe jobs, and every [`RemoteFs::read`] /
//! [`RemoteFs::write`] is executed by the shadow against the submit
//! machine's filesystem — while the job runs, not as before/after
//! staging.

use crate::messages::{recv_json_timeout, send_json, ShadowMsg};
use std::time::Duration;
use tdp_netsim::{Conn, Network};
use tdp_proto::{Addr, JobId, TdpError, TdpResult};
use tdp_simos::ProcCtx;

/// Environment variable the starter sets for Standard-universe jobs.
pub const SHADOW_ENV: &str = "CONDOR_SHADOW";

/// A remote filesystem handle: every operation is a remote syscall
/// through the job's shadow.
pub struct RemoteFs {
    conn: Conn,
}

impl RemoteFs {
    /// "Link" the syscall library: read the shadow address from the
    /// process environment and connect. Errors when the job was not
    /// started in the Standard universe (no `CONDOR_SHADOW`).
    pub fn from_env(net: &Network, ctx: &ProcCtx) -> TdpResult<RemoteFs> {
        let addr = ctx.env(SHADOW_ENV).and_then(Addr::parse).ok_or_else(|| {
            TdpError::Substrate(format!(
                "no {SHADOW_ENV} in the environment: not a standard-universe job"
            ))
        })?;
        Ok(RemoteFs {
            conn: net.connect(ctx.host(), addr)?,
        })
    }

    /// Remote `read(2)`-ish: fetch a whole file from the submit machine.
    pub fn read(&mut self, path: &str) -> TdpResult<Vec<u8>> {
        send_json(
            &self.conn,
            &ShadowMsg::FetchFile {
                path: path.to_string(),
            },
        )?;
        match recv_json_timeout::<ShadowMsg>(&mut self.conn, Duration::from_secs(10))? {
            ShadowMsg::FileData { data, .. } => Ok(data),
            ShadowMsg::FileError { path, error } => {
                Err(TdpError::Substrate(format!("remote read {path}: {error}")))
            }
            other => Err(TdpError::Protocol(format!(
                "unexpected shadow reply {other:?}"
            ))),
        }
    }

    /// Remote `write(2)`-ish: write a whole file on the submit machine.
    pub fn write(&mut self, path: &str, data: &[u8]) -> TdpResult<()> {
        send_json(
            &self.conn,
            &ShadowMsg::StoreFile {
                path: path.to_string(),
                data: data.to_vec(),
            },
        )?;
        match recv_json_timeout::<ShadowMsg>(&mut self.conn, Duration::from_secs(10))? {
            ShadowMsg::StoreOk => Ok(()),
            other => Err(TdpError::Protocol(format!(
                "unexpected shadow reply {other:?}"
            ))),
        }
    }

    /// Report an application-level progress note through the shadow
    /// (shows up as the job's rank status detail).
    pub fn report(&mut self, job: JobId, status: &str) -> TdpResult<()> {
        send_json(
            &self.conn,
            &ShadowMsg::StatusUpdate {
                job,
                rank: 0,
                status: status.to_string(),
            },
        )?;
        match recv_json_timeout::<ShadowMsg>(&mut self.conn, Duration::from_secs(10))? {
            ShadowMsg::Ack => Ok(()),
            other => Err(TdpError::Protocol(format!(
                "unexpected shadow reply {other:?}"
            ))),
        }
    }
}
