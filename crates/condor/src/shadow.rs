//! `condor_shadow` — the submit-side per-job agent.
//!
//! "Any system call performed on the remote execute machine is sent
//! over the network to the condor_shadow which actually performs the
//! system call (such as file I/O) on the submit machine, and the result
//! is sent back over the network to the remote job." (§4.1)
//!
//! Our shadow serves file fetch/store against the submit host's
//! filesystem (used both by the standard universe's remote I/O and by
//! the starter's input/output staging) and records per-rank status
//! reports.

use crate::messages::{recv_json, send_json, ShadowMsg};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tdp_core::World;
use tdp_proto::{Addr, HostId, JobId, ProcStatus, TdpError, TdpResult};
use tdp_sync::{Condvar, Mutex};

#[derive(Default)]
struct ShadowState {
    /// Latest status per rank.
    status: HashMap<u32, ProcStatus>,
    /// Terminal status per rank.
    done: HashMap<u32, ProcStatus>,
    /// Starter-level failures pending requeue, per rank.
    failures: Vec<(u32, String)>,
}

/// A running shadow.
pub struct Shadow {
    job: JobId,
    addr: Addr,
    world: World,
    state: Arc<(Mutex<ShadowState>, Condvar)>,
}

impl Shadow {
    /// Start a shadow for `job` on the submit host.
    pub fn start(world: &World, submit_host: HostId, job: JobId) -> TdpResult<Shadow> {
        let listener = world.net().listen(submit_host, 0)?;
        let addr = listener.local_addr();
        let state: Arc<(Mutex<ShadowState>, Condvar)> = Arc::new(Default::default());
        let st = state.clone();
        let w = world.clone();
        thread::Builder::new()
            .name(format!("condor-shadow-{job}"))
            .spawn(move || {
                while let Ok(mut conn) = listener.accept() {
                    let st = st.clone();
                    let w = w.clone();
                    thread::Builder::new()
                        .name(format!("shadow-session-{job}"))
                        .spawn(move || {
                            // Replies are best-effort: a starter that has
                            // already disconnected still deserves to have
                            // its queued requests (the final JobDone!)
                            // processed, so only a recv EOF ends the
                            // session — never a failed reply.
                            while let Ok(msg) = recv_json::<ShadowMsg>(&mut conn) {
                                let reply = serve(&w, submit_host, &st, msg);
                                let _ = send_json(&conn, &reply);
                            }
                        })
                        .expect("spawn shadow session");
                }
            })
            .map_err(|e| TdpError::Substrate(format!("spawn shadow: {e}")))?;
        Ok(Shadow {
            job,
            addr,
            world: world.clone(),
            state,
        })
    }

    pub fn job(&self) -> JobId {
        self.job
    }

    /// Where starters contact this shadow.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Latest status of a rank, if any was reported.
    pub fn status_of(&self, rank: u32) -> Option<ProcStatus> {
        self.state.0.lock().status.get(&rank).copied()
    }

    /// Terminal status of a rank, if it has one — the schedd's
    /// host-death sweep uses this to tell "still running on a dead
    /// host" from "finished before the host died".
    pub fn done_of(&self, rank: u32) -> Option<ProcStatus> {
        self.state.0.lock().done.get(&rank).copied()
    }

    /// Block until `ranks` ranks have reported terminal status; returns
    /// rank → status.
    pub fn wait_done(&self, ranks: u32, timeout: Duration) -> TdpResult<HashMap<u32, ProcStatus>> {
        let deadline = Instant::now() + timeout;
        let (lock, cv) = &*self.state;
        let mut s = lock.lock();
        while (s.done.len() as u32) < ranks {
            if cv.wait_until(&mut s, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
        Ok(s.done.clone())
    }

    /// Forget a rank's terminal status so it can be re-run (checkpoint
    /// requeue after a vacate).
    pub fn clear_rank(&self, rank: u32) {
        let (lock, _) = &*self.state;
        let mut s = lock.lock();
        s.done.remove(&rank);
        s.status.remove(&rank);
    }

    /// Stop accepting new starter connections.
    pub fn shutdown(&self) {
        self.world.net().unbind(self.addr);
    }

    /// Block until either every rank is done (`Ok(map)`) or some rank's
    /// starter reports failure (`Err` with rank + reason) — the schedd's
    /// requeue hook.
    pub fn wait_outcome(
        &self,
        ranks: u32,
        timeout: Duration,
    ) -> TdpResult<Result<HashMap<u32, ProcStatus>, (u32, String)>> {
        let deadline = Instant::now() + timeout;
        let (lock, cv) = &*self.state;
        let mut s = lock.lock();
        loop {
            if let Some((rank, err)) = s.failures.pop() {
                return Ok(Err((rank, err)));
            }
            if (s.done.len() as u32) >= ranks {
                return Ok(Ok(s.done.clone()));
            }
            if cv.wait_until(&mut s, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
    }
}

fn serve(
    world: &World,
    submit_host: HostId,
    state: &Arc<(Mutex<ShadowState>, Condvar)>,
    msg: ShadowMsg,
) -> ShadowMsg {
    match msg {
        ShadowMsg::FetchFile { path } => match world.os().fs().read_file(submit_host, &path) {
            Ok(data) => ShadowMsg::FileData { path, data },
            Err(e) => ShadowMsg::FileError {
                path,
                error: e.to_string(),
            },
        },
        ShadowMsg::StoreFile { path, data } => {
            world.os().fs().write_file(submit_host, &path, &data);
            ShadowMsg::StoreOk
        }
        ShadowMsg::StatusUpdate { rank, status, .. } => {
            if let Some(st) = ProcStatus::parse(&status) {
                let (lock, cv) = &**state;
                lock.lock().status.insert(rank, st);
                cv.notify_all();
            }
            ShadowMsg::Ack
        }
        ShadowMsg::JobDone { rank, status, .. } => {
            if let Some(st) = ProcStatus::parse(&status) {
                let (lock, cv) = &**state;
                let mut s = lock.lock();
                s.status.insert(rank, st);
                s.done.insert(rank, st);
                drop(s);
                cv.notify_all();
            }
            ShadowMsg::Ack
        }
        ShadowMsg::RankFailed { rank, error, .. } => {
            let (lock, cv) = &**state;
            lock.lock().failures.push((rank, error));
            cv.notify_all();
            ShadowMsg::Ack
        }
        other => {
            let _ = other;
            ShadowMsg::Ack
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::recv_json_timeout;

    const T: Duration = Duration::from_secs(5);

    fn ask(world: &World, from: HostId, shadow: Addr, msg: ShadowMsg) -> ShadowMsg {
        let mut conn = world.net().connect(from, shadow).unwrap();
        send_json(&conn, &msg).unwrap();
        recv_json_timeout(&mut conn, T).unwrap()
    }

    #[test]
    fn fetch_and_store_remote_syscalls() {
        let world = World::new();
        let submit = world.add_host();
        let exec = world.add_host();
        world.os().fs().write_file(submit, "infile", b"input data");
        let shadow = Shadow::start(&world, submit, JobId(1)).unwrap();
        // Fetch.
        match ask(
            &world,
            exec,
            shadow.addr(),
            ShadowMsg::FetchFile {
                path: "infile".into(),
            },
        ) {
            ShadowMsg::FileData { data, .. } => assert_eq!(data, b"input data"),
            other => panic!("{other:?}"),
        }
        // Missing file.
        match ask(
            &world,
            exec,
            shadow.addr(),
            ShadowMsg::FetchFile {
                path: "ghost".into(),
            },
        ) {
            ShadowMsg::FileError { .. } => {}
            other => panic!("{other:?}"),
        }
        // Store lands on the submit host.
        ask(
            &world,
            exec,
            shadow.addr(),
            ShadowMsg::StoreFile {
                path: "outfile".into(),
                data: b"results".to_vec(),
            },
        );
        assert_eq!(
            world.os().fs().read_file(submit, "outfile").unwrap(),
            b"results"
        );
    }

    #[test]
    fn status_reports_and_wait_done() {
        let world = World::new();
        let submit = world.add_host();
        let exec = world.add_host();
        let shadow = Shadow::start(&world, submit, JobId(2)).unwrap();
        ask(
            &world,
            exec,
            shadow.addr(),
            ShadowMsg::StatusUpdate {
                job: JobId(2),
                rank: 0,
                status: "running".into(),
            },
        );
        assert_eq!(shadow.status_of(0), Some(ProcStatus::Running));
        assert_eq!(shadow.status_of(1), None);
        assert!(shadow.wait_done(1, Duration::from_millis(50)).is_err());
        ask(
            &world,
            exec,
            shadow.addr(),
            ShadowMsg::JobDone {
                job: JobId(2),
                rank: 0,
                status: "exited:0".into(),
            },
        );
        let done = shadow.wait_done(1, T).unwrap();
        assert_eq!(done[&0], ProcStatus::Exited(0));
    }
}
