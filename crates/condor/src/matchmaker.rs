//! The matchmaker (Condor's collector + negotiator): machines advertise
//! themselves; the schedd asks for a compatible machine per job; rank
//! breaks ties (Figure 4's `match_maker`).

use crate::classad::ClassAd;
use crate::messages::{recv_json, recv_json_timeout, send_json, MmMsg};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tdp_core::Supervisable;
use tdp_netsim::Network;
use tdp_proto::{Addr, HostId, TdpError, TdpResult};
use tdp_sync::{Condvar, Mutex};

/// The matchmaker's well-known port on the central-manager host.
pub const MATCHMAKER_PORT: u16 = 9618;

#[derive(Clone)]
struct MachineEntry {
    host: HostId,
    startd: Addr,
    ad: ClassAd,
    available: bool,
}

/// Machine table plus a condvar notified on every change, so waiters
/// (tests, the ops supervisor) can block instead of polling.
type Machines = Arc<(Mutex<BTreeMap<String, MachineEntry>>, Condvar)>;

/// The running matchmaker.
pub struct Matchmaker {
    addr: Addr,
    net: Network,
    machines: Machines,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl Matchmaker {
    /// Start on the central-manager host.
    pub fn start(net: &Network, host: HostId) -> TdpResult<Matchmaker> {
        let listener = net.listen(host, MATCHMAKER_PORT)?;
        let addr = listener.local_addr();
        let machines: Machines = Arc::new((Mutex::new(BTreeMap::new()), Condvar::new()));
        let m2 = machines.clone();
        let accept_thread = thread::Builder::new()
            .name("condor-matchmaker".into())
            .spawn(move || {
                while let Ok(mut conn) = listener.accept() {
                    let machines = m2.clone();
                    thread::Builder::new()
                        .name("matchmaker-session".into())
                        .spawn(move || {
                            while let Ok(msg) = recv_json::<MmMsg>(&mut conn) {
                                let reply = handle(&machines, msg);
                                if send_json(&conn, &reply).is_err() {
                                    break;
                                }
                            }
                        })
                        .expect("spawn matchmaker session");
                }
            })
            .map_err(|e| TdpError::Substrate(format!("spawn matchmaker: {e}")))?;
        Ok(Matchmaker {
            addr,
            net: net.clone(),
            machines,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Registered machine names with availability (tests/diagnostics).
    pub fn machines(&self) -> Vec<(String, bool)> {
        self.machines
            .0
            .lock()
            .iter()
            .map(|(n, e)| (n.clone(), e.available))
            .collect()
    }

    /// Block until the machine table satisfies `pred` (checked on every
    /// register/update/unregister); returns the satisfying snapshot.
    pub fn wait_machines(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&[(String, bool)]) -> bool,
    ) -> TdpResult<Vec<(String, bool)>> {
        let deadline = Instant::now() + timeout;
        let (lock, cv) = &*self.machines;
        let mut m = lock.lock();
        loop {
            let snap: Vec<(String, bool)> =
                m.iter().map(|(n, e)| (n.clone(), e.available)).collect();
            if pred(&snap) {
                return Ok(snap);
            }
            if cv.wait_until(&mut m, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
    }

    /// Stop accepting connections.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.net.unbind(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Matchmaker {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Supervisable for Matchmaker {
    fn ops_name(&self) -> String {
        format!("condor.matchmaker.{}", self.addr.host.0)
    }

    fn ops_probe(&self) -> TdpResult<()> {
        // Prove it still answers its protocol, not just accepts.
        let mut conn = self.net.connect(self.addr.host, self.addr)?;
        send_json(&conn, &MmMsg::QueryMachines)?;
        recv_json_timeout::<MmMsg>(&mut conn, Duration::from_secs(5))?;
        Ok(())
    }
}

/// The matchmaking algorithm: among available, mutually-matching
/// machines, pick the one the job ranks highest (ties: name order, for
/// determinism).
fn handle(machines: &(Mutex<BTreeMap<String, MachineEntry>>, Condvar), msg: MmMsg) -> MmMsg {
    match msg {
        MmMsg::RegisterMachine {
            name,
            host,
            startd,
            ad,
        } => {
            machines.0.lock().insert(
                name,
                MachineEntry {
                    host,
                    startd,
                    ad,
                    available: true,
                },
            );
            machines.1.notify_all();
            MmMsg::Ack
        }
        MmMsg::UpdateMachine { name, available } => {
            if let Some(e) = machines.0.lock().get_mut(&name) {
                e.available = available;
            }
            machines.1.notify_all();
            MmMsg::Ack
        }
        MmMsg::UnregisterMachine { name } => {
            machines.0.lock().remove(&name);
            machines.1.notify_all();
            MmMsg::Ack
        }
        MmMsg::Negotiate { job_ad, exclude } => {
            let machines = machines.0.lock();
            let best = machines
                .iter()
                .filter(|(name, e)| e.available && !exclude.contains(name) && job_ad.matches(&e.ad))
                .max_by_key(|(name, e)| {
                    (job_ad.rank_of(&e.ad), std::cmp::Reverse((*name).clone()))
                });
            match best {
                Some((name, e)) => MmMsg::MatchFound {
                    name: name.clone(),
                    host: e.host,
                    startd: e.startd,
                    ad: e.ad.clone(),
                },
                None => MmMsg::NoMatch,
            }
        }
        MmMsg::QueryMachines => MmMsg::Machines(
            machines
                .0
                .lock()
                .iter()
                .map(|(n, e)| (n.clone(), e.available))
                .collect(),
        ),
        other => {
            // Replies arriving as requests: protocol misuse; answer Ack
            // so the session stays alive for diagnostics.
            let _ = other;
            MmMsg::Ack
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::recv_json_timeout;
    use std::time::Duration;

    fn ask(net: &Network, from: HostId, mm: Addr, msg: MmMsg) -> MmMsg {
        let mut conn = net.connect(from, mm).unwrap();
        send_json(&conn, &msg).unwrap();
        recv_json_timeout(&mut conn, Duration::from_secs(5)).unwrap()
    }

    fn reg(name: &str, mem: i64) -> MmMsg {
        MmMsg::RegisterMachine {
            name: name.into(),
            host: HostId(1),
            startd: Addr::new(HostId(1), 9620),
            ad: ClassAd::new()
                .with_int("Memory", mem)
                .with_bool("HasTdp", true),
        }
    }

    #[test]
    fn register_and_negotiate() {
        let net = Network::new();
        let cm = net.add_host();
        let client = net.add_host();
        let mm = Matchmaker::start(&net, cm).unwrap();
        assert!(matches!(
            ask(&net, client, mm.addr(), reg("m1", 256)),
            MmMsg::Ack
        ));
        assert!(matches!(
            ask(&net, client, mm.addr(), reg("m2", 2048)),
            MmMsg::Ack
        ));
        // Job needing lots of memory matches only m2.
        let job = ClassAd::new().require("Memory >= 1024");
        match ask(
            &net,
            client,
            mm.addr(),
            MmMsg::Negotiate {
                job_ad: job,
                exclude: vec![],
            },
        ) {
            MmMsg::MatchFound { name, .. } => assert_eq!(name, "m2"),
            other => panic!("expected match, got {other:?}"),
        }
        // Impossible job: no match.
        let job = ClassAd::new().require("Memory >= 99999");
        assert!(matches!(
            ask(
                &net,
                client,
                mm.addr(),
                MmMsg::Negotiate {
                    job_ad: job,
                    exclude: vec![]
                }
            ),
            MmMsg::NoMatch
        ));
    }

    #[test]
    fn rank_prefers_best_machine() {
        let net = Network::new();
        let cm = net.add_host();
        let client = net.add_host();
        let mm = Matchmaker::start(&net, cm).unwrap();
        ask(&net, client, mm.addr(), reg("small", 128));
        ask(&net, client, mm.addr(), reg("big", 4096));
        let job = ClassAd::new().rank_by("Memory");
        match ask(
            &net,
            client,
            mm.addr(),
            MmMsg::Negotiate {
                job_ad: job,
                exclude: vec![],
            },
        ) {
            MmMsg::MatchFound { name, .. } => assert_eq!(name, "big"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exclusion_and_availability() {
        let net = Network::new();
        let cm = net.add_host();
        let client = net.add_host();
        let mm = Matchmaker::start(&net, cm).unwrap();
        ask(&net, client, mm.addr(), reg("m1", 512));
        ask(&net, client, mm.addr(), reg("m2", 512));
        let job = ClassAd::new();
        // Exclude m1 -> must pick m2.
        match ask(
            &net,
            client,
            mm.addr(),
            MmMsg::Negotiate {
                job_ad: job.clone(),
                exclude: vec!["m1".into()],
            },
        ) {
            MmMsg::MatchFound { name, .. } => assert_eq!(name, "m2"),
            other => panic!("{other:?}"),
        }
        // Mark both busy -> no match.
        ask(
            &net,
            client,
            mm.addr(),
            MmMsg::UpdateMachine {
                name: "m1".into(),
                available: false,
            },
        );
        ask(
            &net,
            client,
            mm.addr(),
            MmMsg::UpdateMachine {
                name: "m2".into(),
                available: false,
            },
        );
        assert!(matches!(
            ask(
                &net,
                client,
                mm.addr(),
                MmMsg::Negotiate {
                    job_ad: job,
                    exclude: vec![]
                }
            ),
            MmMsg::NoMatch
        ));
    }

    #[test]
    fn unregister_removes() {
        let net = Network::new();
        let cm = net.add_host();
        let client = net.add_host();
        let mm = Matchmaker::start(&net, cm).unwrap();
        ask(&net, client, mm.addr(), reg("m1", 512));
        assert_eq!(mm.machines().len(), 1);
        ask(
            &net,
            client,
            mm.addr(),
            MmMsg::UnregisterMachine { name: "m1".into() },
        );
        assert_eq!(mm.machines().len(), 0);
    }

    #[test]
    fn deterministic_tie_break() {
        let net = Network::new();
        let cm = net.add_host();
        let client = net.add_host();
        let mm = Matchmaker::start(&net, cm).unwrap();
        ask(&net, client, mm.addr(), reg("zeta", 512));
        ask(&net, client, mm.addr(), reg("alpha", 512));
        match ask(
            &net,
            client,
            mm.addr(),
            MmMsg::Negotiate {
                job_ad: ClassAd::new(),
                exclude: vec![],
            },
        ) {
            MmMsg::MatchFound { name, .. } => assert_eq!(name, "alpha"),
            other => panic!("{other:?}"),
        }
    }
}
