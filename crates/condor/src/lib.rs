//! # tdp-condor — the resource-manager substrate
//!
//! A Condor-shaped batch scheduling system (§4.1 of the paper, Figure
//! 4) with the TDP integration of §4.3 built into its starter:
//!
//! * **ClassAds** ([`classad`]) — attribute/requirement descriptions of
//!   machines and jobs, with two-sided matching and rank;
//! * **matchmaker** ([`matchmaker`]) — collects machine ads, answers
//!   negotiation requests from the schedd;
//! * **condor_schedd** ([`schedd`]) — the submit-side queue: holds jobs
//!   until a suitable resource is found, runs the claiming protocol,
//!   spawns a shadow per running job, and orchestrates the staged MPI-
//!   universe startup;
//! * **condor_shadow** ([`shadow`]) — the submit-side per-job agent:
//!   performs "remote system calls" (file fetch/store against the
//!   submit machine) on behalf of the remote job and records status;
//! * **condor_startd** ([`startd`]) — represents one execution machine:
//!   advertises it, accepts claims, spawns a starter per activation;
//! * **condor_starter** ([`starter`]) — sets up the execution
//!   environment and spawns the job. When the submit file carries
//!   `+ToolDaemonCmd` and `+SuspendJobAtExec` (Figure 5B), the starter
//!   speaks TDP: it creates the application **paused**, launches the
//!   tool daemon, and puts the pid into the Local Attribute Space —
//!   the four steps of Figure 6;
//! * **condor_master** ([`master`]) — keeps the other daemons alive,
//!   restarting them on failure;
//! * **submit files** ([`submit`]) — the Figure 5B syntax, including
//!   the `ToolDaemon*` extension directives;
//! * **`condor_syscall_lib`** ([`syscall_lib`]) — the Standard
//!   universe's remote file I/O, executed by the shadow on the submit
//!   machine while the job runs;
//! * **pool** ([`pool`]) — convenience assembly of a whole pool.

pub mod classad;
pub mod master;
pub mod matchmaker;
pub mod messages;
pub mod pool;
pub mod schedd;
pub mod shadow;
pub mod startd;
pub mod starter;
pub mod submit;
pub mod syscall_lib;

pub use classad::{AdValue, ClassAd, Requirement};
pub use matchmaker::Matchmaker;
pub use pool::CondorPool;
pub use schedd::{JobState, Schedd};
pub use submit::{SubmitDescription, ToolDaemonSpec, Universe};
