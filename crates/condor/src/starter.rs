//! `condor_starter` — spawns and supervises one (rank of a) job on an
//! execution machine, speaking TDP when the submit file asks for a tool
//! dæmon (§4.3, Figure 6).

use crate::messages::{recv_json_timeout, send_json, JobDetails, ShadowMsg};
use crate::submit::Universe;
use std::time::Duration;
use tdp_core::{Role, TdpCreate, TdpHandle, World};
use tdp_netsim::Conn;
use tdp_proto::{names, ContextId, HostId, ProcStatus, TdpError, TdpResult};
use tdp_simos::kernel::Role as WatchRole;
use tdp_simos::Sink;

/// TDP context used for one (job, rank) pairing: each RT gets its own
/// space (§3.2).
pub fn job_context(job: tdp_proto::JobId, rank: u32) -> ContextId {
    ContextId(job.0 * 1_000 + u64::from(rank))
}

/// The starter body: runs on its own thread, returns the job's terminal
/// status. `host` is the execution machine.
pub fn run_starter(world: &World, host: HostId, details: &JobDetails) -> TdpResult<ProcStatus> {
    run_starter_observed(world, host, details, |_| {})
}

/// Like [`run_starter`], also reporting the application pid to
/// `on_app_pid` as soon as it exists (the startd's vacate hook).
pub fn run_starter_observed(
    world: &World,
    host: HostId,
    details: &JobDetails,
    on_app_pid: impl FnOnce(tdp_proto::Pid),
) -> TdpResult<ProcStatus> {
    let mut shadow = world.net().connect(host, details.shadow)?;
    let submit = &details.submit;

    // ---- File staging -------------------------------------------------
    // The executable and extra input files. Executable images cannot
    // cross the byte-oriented shadow channel (they are program
    // factories, not bits — see DESIGN.md), so they stage via the
    // filesystem layer; plain data files take the faithful
    // remote-syscall path through the shadow.
    if submit.transfer_files && !world.os().fs().exists(host, &submit.executable) {
        world.os().fs().stage(
            details.submit_host,
            &submit.executable,
            host,
            &submit.executable,
        )?;
    }
    for f in &submit.transfer_input_files {
        if world.os().fs().exists(host, f) {
            continue;
        }
        // Prefer the executable-capable path; fall back to shadow I/O.
        if world
            .os()
            .fs()
            .stage(details.submit_host, f, host, f)
            .is_err()
        {
            let data = fetch_file(&mut shadow, f)?;
            world.os().fs().write_file(host, f, &data);
        }
    }
    let stdin_bytes = match &submit.input {
        Some(path) => fetch_file(&mut shadow, path)?,
        None => Vec::new(),
    };
    // Checkpoint restart: bring the latest checkpoint (if any) to the
    // execution host before the application is created, so a vacated
    // job resumes where it left off.
    if let Some(ck) = &submit.checkpoint_file {
        if let Ok(data) = fetch_file(&mut shadow, ck) {
            world.os().fs().write_file(host, ck, &data);
        }
    }

    // ---- TDP framework ------------------------------------------------
    let ctx = job_context(details.job, details.rank);
    // Step 1 (Fig 6): tdp_init creates the LASS through which starter
    // and tool daemon communicate.
    let mut tdp = TdpHandle::init(world, host, ctx, "starter", Role::ResourceManager)?;

    // Application argv: MPI ranks get their rank as argv[0] (the ch_p4
    // procgroup convention in our simulated runtime).
    let mut app_args: Vec<String> = Vec::new();
    if submit.universe == Universe::Mpi {
        app_args.push(details.rank.to_string());
    }
    app_args.extend(submit.arguments.iter().cloned());

    // Step 1 (cont.): create the application, paused at exec when
    // +SuspendJobAtExec was given.
    let mut app = TdpCreate::new(submit.executable.clone())
        .args(app_args)
        .stdin_bytes(stdin_bytes)
        .stdout(Sink::Capture)
        .stderr(Sink::Capture);
    if submit.universe == Universe::Standard {
        // Standard universe: the job links condor_syscall_lib and finds
        // its shadow through the environment (§4.1 remote syscalls).
        app = app.env_var(
            crate::syscall_lib::SHADOW_ENV,
            details.shadow.to_attr_value(),
        );
    }
    if submit.suspend_job_at_exec {
        app = app.paused();
    }
    let app_pid = tdp.create_process(app)?;
    on_app_pid(app_pid);
    // The staged input is the whole of stdin: deliver EOF after it, as
    // the real starter does at end of the input file.
    world.os().close_stdin(app_pid)?;
    let watch = world.os().watch(app_pid, WatchRole::Observer)?;
    report_status(&shadow, details, world.os().status(app_pid)?)?;

    // Step 2 (Fig 6): launch the tool daemon (not paused).
    let tool_pid = if let Some(tool) = &submit.tool_daemon {
        let mut args = tool.args.clone();
        args.push(format!("-c{}", ctx.0));
        if details.tool_auto_run {
            args.push("-A".to_string());
        }
        let pid = tdp.create_process(
            TdpCreate::new(tool.cmd.clone())
                .args(args)
                .stdout(Sink::Capture)
                .stderr(Sink::Capture),
        )?;
        // Step 3 (Fig 6): put the application pid into the LASS; the
        // daemon is blocked in tdp_get("pid") until this lands.
        tdp.put(names::PID, &app_pid.to_string())?;
        tdp.put(names::EXECUTABLE_NAME, &submit.executable)?;
        // Complete-TDP-framework dissemination (§4.3): tell the tool
        // where the global space lives so it can resolve its front-end
        // without hand-written port arguments.
        if let Some(cass) = world.cass_addr() {
            tdp.put(names::CASS_ADDR, &cass.to_attr_value())?;
        }
        Some(pid)
    } else {
        None
    };

    // ---- Supervision ---------------------------------------------------
    // Forward every status change to the shadow; stop at terminal. A
    // fast job may terminate before the watcher registered, so poll the
    // status on every timeout instead of trusting the event stream
    // alone.
    let terminal = loop {
        // §2.3: service any process-management request the tool filed
        // through the attribute space — the starter is the single point
        // of process control.
        tdp.service_proc_requests(app_pid)?;
        match watch.recv_timeout(Duration::from_millis(50)) {
            Ok(ev) => {
                report_status(&shadow, details, ev.status)?;
                tdp.publish_status(ev.status)?;
                if ev.status.is_terminal() {
                    break ev.status;
                }
            }
            Err(_) => {
                let st = world.os().status(app_pid)?;
                if st.is_terminal() {
                    report_status(&shadow, details, st)?;
                    break st;
                }
            }
        }
    };

    // ---- Output staging -------------------------------------------------
    // The checkpoint goes back first — whatever happened (normal exit,
    // vacate, crash), the latest saved state must survive the machine.
    if let Some(ck) = &submit.checkpoint_file {
        if let Ok(data) = world.os().fs().read_file(host, ck) {
            store_file(&mut shadow, ck, &data)?;
        }
    }
    if let Some(out) = &submit.output {
        let data = world.os().read_stdout(app_pid)?;
        store_file(&mut shadow, out, &data)?;
    }
    if let Some(err) = &submit.error {
        let data = world.os().read_stderr(app_pid)?;
        store_file(&mut shadow, err, &data)?;
    }
    if let (Some(tool), Some(tpid)) = (&submit.tool_daemon, tool_pid) {
        // Let the daemon finish its final flush, then stage its stdio
        // and trace files back (§2: trace files "must be transferred
        // from the execution nodes after the application completes").
        let _ = world.os().wait_terminal(tpid, Duration::from_secs(10));
        if let Some(out) = &tool.output {
            store_file(&mut shadow, out, &world.os().read_stdout(tpid)?)?;
        }
        if let Some(err) = &tool.error {
            store_file(&mut shadow, err, &world.os().read_stderr(tpid)?)?;
        }
        let trace_name = format!("paradynd{tpid}.trace");
        if let Ok(data) = world.os().fs().read_file(host, &trace_name) {
            store_file(&mut shadow, &trace_name, &data)?;
        }
    }

    send_json(
        &shadow,
        &ShadowMsg::JobDone {
            job: details.job,
            rank: details.rank,
            status: terminal.to_attr_value(),
        },
    )?;
    let _ = recv_json_timeout::<ShadowMsg>(&mut shadow, Duration::from_secs(5));
    tdp.exit()?;
    Ok(terminal)
}

fn report_status(conn: &Conn, details: &JobDetails, status: ProcStatus) -> TdpResult<()> {
    send_json(
        conn,
        &ShadowMsg::StatusUpdate {
            job: details.job,
            rank: details.rank,
            status: status.to_attr_value(),
        },
    )
}

fn fetch_file(shadow: &mut Conn, path: &str) -> TdpResult<Vec<u8>> {
    send_json(
        shadow,
        &ShadowMsg::FetchFile {
            path: path.to_string(),
        },
    )?;
    loop {
        match recv_json_timeout::<ShadowMsg>(shadow, Duration::from_secs(10))? {
            ShadowMsg::FileData { data, .. } => return Ok(data),
            ShadowMsg::FileError { path, error } => {
                return Err(TdpError::Substrate(format!("fetch {path}: {error}")))
            }
            ShadowMsg::Ack => continue, // stale status ack
            other => {
                return Err(TdpError::Protocol(format!(
                    "unexpected shadow reply {other:?}"
                )))
            }
        }
    }
}

fn store_file(shadow: &mut Conn, path: &str, data: &[u8]) -> TdpResult<()> {
    send_json(
        shadow,
        &ShadowMsg::StoreFile {
            path: path.to_string(),
            data: data.to_vec(),
        },
    )?;
    loop {
        match recv_json_timeout::<ShadowMsg>(shadow, Duration::from_secs(10))? {
            ShadowMsg::StoreOk => return Ok(()),
            ShadowMsg::Ack => continue,
            other => {
                return Err(TdpError::Protocol(format!(
                    "unexpected shadow reply {other:?}"
                )))
            }
        }
    }
}
