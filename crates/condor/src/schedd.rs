//! `condor_schedd` — the submit-side queue and claim orchestrator.
//!
//! "Any submit machine needs to have a condor_schedd running …
//! condor_schedd takes care of the job until a suitable and available
//! resource is found for the job. The condor_schedd spawns a
//! condor_shadow daemon to serve that particular request." (§4.1)
//!
//! For the MPI universe the schedd also implements the staged startup
//! of §4.3: claim all machines first, activate rank 0 (whose tool waits
//! for the user's run command), and only once rank 0 is running
//! activate the remaining ranks with auto-running tool daemons.

use crate::messages::{recv_json_timeout, send_json, ClaimMsg, JobDetails, MmMsg};
use crate::shadow::Shadow;
use crate::submit::{SubmitDescription, Universe};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tdp_core::World;
use tdp_proto::{Addr, HostId, JobId, ProcStatus, TdpError, TdpResult};
use tdp_sync::{Condvar, Mutex};

/// Queue state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting for resources.
    Idle,
    /// All claims held; starters activated.
    Running,
    /// Every rank reported terminal status (rank → status).
    Completed(HashMap<u32, ProcStatus>),
    /// Could not be scheduled or run.
    Failed(String),
}

struct JobRecord {
    state: JobState,
    shadow: Option<Arc<Shadow>>,
}

struct ScheddInner {
    world: World,
    submit_host: HostId,
    mm: Addr,
    jobs: Mutex<HashMap<JobId, JobRecord>>,
    cv: Condvar,
    next_job: AtomicU64,
    /// How long to keep renegotiating before failing a job.
    negotiation_timeout: Mutex<Duration>,
}

impl ScheddInner {
    fn negotiation_timeout(&self) -> Duration {
        *self.negotiation_timeout.lock()
    }
}

/// The running schedd. One per submit machine.
#[derive(Clone)]
pub struct Schedd {
    inner: Arc<ScheddInner>,
}

impl Schedd {
    pub fn start(world: &World, submit_host: HostId, mm: Addr) -> Schedd {
        Schedd {
            inner: Arc::new(ScheddInner {
                world: world.clone(),
                submit_host,
                mm,
                jobs: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
                next_job: AtomicU64::new(1),
                negotiation_timeout: Mutex::new(Duration::from_secs(10)),
            }),
        }
    }

    /// Submit host (diagnostics).
    pub fn submit_host(&self) -> HostId {
        self.inner.submit_host
    }

    /// How long a job keeps renegotiating before failing. Raise this
    /// when machines may be transiently unreachable (network faults)
    /// rather than permanently unmatchable.
    pub fn set_negotiation_timeout(&self, timeout: Duration) {
        *self.inner.negotiation_timeout.lock() = timeout;
    }

    /// Jobs not yet in a terminal state (a queue-depth gauge for the
    /// ops KPI loop).
    pub fn queue_depth(&self) -> usize {
        self.inner
            .jobs
            .lock()
            .values()
            .filter(|r| matches!(r.state, JobState::Idle | JobState::Running))
            .count()
    }

    /// Submit a parsed description; returns the job id immediately. A
    /// per-job scheduling thread negotiates, claims and activates.
    pub fn submit(&self, submit: SubmitDescription) -> JobId {
        let job = JobId(self.inner.next_job.fetch_add(1, Ordering::SeqCst));
        self.inner.jobs.lock().insert(
            job,
            JobRecord {
                state: JobState::Idle,
                shadow: None,
            },
        );
        let inner = self.inner.clone();
        thread::Builder::new()
            .name(format!("condor-schedd-{job}"))
            .spawn(move || {
                if let Err(e) = schedule_job(&inner, job, submit) {
                    let mut jobs = inner.jobs.lock();
                    if let Some(rec) = jobs.get_mut(&job) {
                        if !matches!(rec.state, JobState::Completed(_)) {
                            rec.state = JobState::Failed(e.to_string());
                        }
                    }
                    drop(jobs);
                    inner.cv.notify_all();
                }
            })
            .expect("spawn schedd job thread");
        job
    }

    /// Parse and submit a submit-file text.
    pub fn submit_str(&self, text: &str) -> TdpResult<JobId> {
        Ok(self.submit(SubmitDescription::parse(text)?))
    }

    /// Current state of a job.
    pub fn job_state(&self, job: JobId) -> Option<JobState> {
        self.inner.jobs.lock().get(&job).map(|r| r.state.clone())
    }

    /// `condor_q`: every job in the queue with its state, ordered by id.
    pub fn condor_q(&self) -> Vec<(JobId, JobState)> {
        let mut v: Vec<(JobId, JobState)> = self
            .inner
            .jobs
            .lock()
            .iter()
            .map(|(j, r)| (*j, r.state.clone()))
            .collect();
        v.sort_by_key(|(j, _)| *j);
        v
    }

    /// The job's shadow (present once scheduling started).
    pub fn shadow_of(&self, job: JobId) -> Option<Arc<Shadow>> {
        self.inner
            .jobs
            .lock()
            .get(&job)
            .and_then(|r| r.shadow.clone())
    }

    /// Block until the job completes or fails.
    pub fn wait_job(&self, job: JobId, timeout: Duration) -> TdpResult<JobState> {
        let deadline = Instant::now() + timeout;
        let mut jobs = self.inner.jobs.lock();
        loop {
            match jobs.get(&job) {
                None => return Err(TdpError::Substrate(format!("unknown job {job}"))),
                Some(rec) => match &rec.state {
                    JobState::Completed(_) | JobState::Failed(_) => return Ok(rec.state.clone()),
                    _ => {}
                },
            }
            if self.inner.cv.wait_until(&mut jobs, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
    }
}

struct Claim {
    machine: String,
    host: HostId,
    conn: tdp_netsim::Conn,
    claim_id: u64,
}

/// Negotiate-and-claim one machine, retrying until `deadline`.
fn claim_one(
    inner: &ScheddInner,
    job: JobId,
    submit: &SubmitDescription,
    exclude: &[String],
    deadline: Instant,
) -> TdpResult<Option<Claim>> {
    loop {
        if Instant::now() > deadline {
            return Ok(None);
        }
        match negotiate(inner, submit, exclude.to_vec())? {
            Some((name, host, startd)) => match try_claim(inner, job, startd) {
                Ok((conn, claim_id)) => {
                    return Ok(Some(Claim {
                        machine: name,
                        host,
                        conn,
                        claim_id,
                    }))
                }
                Err(_) => thread::sleep(Duration::from_millis(10)),
            },
            None => thread::sleep(Duration::from_millis(15)),
        }
    }
}

/// Re-run one rank on a fresh machine after `error` (a starter-reported
/// failure or a dead execution host): spend one unit of the requeue
/// budget, avoid the machine it failed on, claim a replacement and
/// activate there with an auto-running tool (re-runs never wait for
/// another front-end run command).
struct Requeue<'a> {
    claims: &'a mut Vec<Claim>,
    active: &'a mut HashMap<u32, (String, HostId)>,
    avoid: &'a mut Vec<String>,
    retries: &'a mut u32,
}

impl Requeue<'_> {
    fn requeue(
        &mut self,
        inner: &ScheddInner,
        job: JobId,
        submit: &SubmitDescription,
        rank: u32,
        error: &str,
        mut details: JobDetails,
    ) -> TdpResult<()> {
        *self.retries += 1;
        if *self.retries > MAX_REQUEUES {
            return Err(TdpError::Substrate(format!(
                "{job} rank {rank} failed after {MAX_REQUEUES} requeues: {error}"
            )));
        }
        // Avoid the machine the rank just failed on.
        if let Some(name) = error.split(' ').next() {
            self.avoid.push(name.to_string());
        }
        let deadline = Instant::now() + inner.negotiation_timeout();
        let claim = claim_one(inner, job, submit, self.avoid, deadline)?.ok_or_else(|| {
            TdpError::Substrate(format!(
                "{job} rank {rank}: no replacement machine ({error})"
            ))
        })?;
        self.active
            .insert(rank, (claim.machine.clone(), claim.host));
        self.claims.push(claim);
        let idx = self.claims.len() - 1;
        details.tool_auto_run = true;
        activate(&mut self.claims[idx], details)
    }
}

/// Granularity of the schedd's wait on the shadow: between slices it
/// sweeps its active ranks for dead execution hosts, the one failure a
/// starter cannot report (§4.1's "the RM must be able to detect these
/// failures").
const WAIT_SLICE: Duration = Duration::from_millis(250);

/// Overall wall-clock budget for a job once activated.
const JOB_DEADLINE: Duration = Duration::from_secs(600);

/// The per-job scheduling flow.
fn schedule_job(inner: &Arc<ScheddInner>, job: JobId, submit: SubmitDescription) -> TdpResult<()> {
    let n_ranks = match submit.universe {
        Universe::Mpi => submit.machine_count.max(1),
        _ => 1,
    };

    // Negotiate + claim until we hold machine_count machines. "The
    // application does not start until a suitable number of machines
    // are allocated by Condor." (§4.3)
    let mut claims: Vec<Claim> = Vec::new();
    let deadline = Instant::now() + inner.negotiation_timeout();
    while (claims.len() as u32) < n_ranks {
        let exclude: Vec<String> = claims.iter().map(|c| c.machine.clone()).collect();
        // Claiming protocol: "either party may decide not to complete
        // the allocation" — the startd may reject; keep negotiating.
        match claim_one(inner, job, &submit, &exclude, deadline)? {
            Some(claim) => claims.push(claim),
            None => {
                let held = claims.len();
                release_claims(&mut claims);
                return Err(TdpError::Substrate(format!(
                    "no match for {job}: got {held}/{n_ranks} machines"
                )));
            }
        }
    }

    // All machines held: create the shadow and activate.
    let shadow = Arc::new(Shadow::start(&inner.world, inner.submit_host, job)?);
    {
        let mut jobs = inner.jobs.lock();
        if let Some(rec) = jobs.get_mut(&job) {
            rec.shadow = Some(shadow.clone());
            rec.state = JobState::Running;
        }
    }
    inner.cv.notify_all();

    let details = |rank: u32, auto: bool| JobDetails {
        job,
        submit: submit.clone(),
        shadow: shadow.addr(),
        submit_host: inner.submit_host,
        rank,
        tool_auto_run: auto,
    };

    // Which machine each not-yet-done rank is running on, for the
    // host-death sweep below.
    let mut active: HashMap<u32, (String, HostId)> = HashMap::new();
    // One budget covers activation retries and requeues alike.
    let mut retries = 0u32;
    let mut avoid: Vec<String> = Vec::new();

    match submit.universe {
        Universe::Mpi if n_ranks > 1 => {
            // Rank 0 (the "master process") first.
            activate(&mut claims[0], details(0, false))?;
            active.insert(0, (claims[0].machine.clone(), claims[0].host));
            // Wait until rank 0 actually runs (the user issued the run
            // command through the tool front-end, or no tool is
            // involved and it started straight away).
            let run_deadline = Instant::now() + Duration::from_secs(30);
            loop {
                match shadow.status_of(0) {
                    Some(ProcStatus::Running) => break,
                    Some(st) if st.is_terminal() => break, // crashed before others started
                    _ => {
                        if Instant::now() > run_deadline {
                            release_claims(&mut claims);
                            return Err(TdpError::Substrate(format!(
                                "{job}: rank 0 never started"
                            )));
                        }
                        thread::sleep(Duration::from_millis(5));
                    }
                }
            }
            // Remaining ranks: tools auto-run (§4.3: "they immediately
            // issue a run command").
            for rank in 1..n_ranks {
                let d = details(rank, true);
                activate(&mut claims[rank as usize], d)?;
                let c = &claims[rank as usize];
                active.insert(rank, (c.machine.clone(), c.host));
            }
        }
        _ => loop {
            // A startd can die between claim and activation; claim a
            // fresh machine and try again rather than failing the job.
            let idx = claims.len() - 1;
            match activate(&mut claims[idx], details(0, false)) {
                Ok(()) => {
                    let c = &claims[idx];
                    active.insert(0, (c.machine.clone(), c.host));
                    break;
                }
                Err(_) if retries < MAX_REQUEUES => {
                    retries += 1;
                    avoid.push(claims[idx].machine.clone());
                    let deadline = Instant::now() + inner.negotiation_timeout();
                    match claim_one(inner, job, &submit, &avoid, deadline)? {
                        Some(c) => claims.push(c),
                        None => {
                            return Err(TdpError::Substrate(format!(
                                "{job}: no machine after failed activation"
                            )))
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        },
    }

    // Wait for every rank to finish, requeueing ranks whose starter
    // failed outright (fault recovery: "the RM must be able to detect
    // these failures [and] respond to them"). The wait is sliced so the
    // schedd also notices *silent* failures — an execution host that
    // dies takes its starter, and any failure report, with it.
    let job_deadline = Instant::now() + JOB_DEADLINE;
    let done = loop {
        let outcome = match shadow.wait_outcome(n_ranks, WAIT_SLICE) {
            Ok(o) => o,
            Err(TdpError::Timeout) => {
                if Instant::now() > job_deadline {
                    return Err(TdpError::Timeout);
                }
                // Host-death sweep: an active rank on a dead host will
                // never report; requeue it like a starter failure.
                let mut lost: Vec<(u32, String)> = Vec::new();
                for (rank, (machine, host)) in &active {
                    if shadow.done_of(*rank).is_none() && !inner.world.net().host_alive(*host) {
                        lost.push((*rank, format!("{machine} on {host}: host failed")));
                    }
                }
                for (rank, error) in lost {
                    shadow.clear_rank(rank);
                    Requeue {
                        claims: &mut claims,
                        active: &mut active,
                        avoid: &mut avoid,
                        retries: &mut retries,
                    }
                    .requeue(
                        inner,
                        job,
                        &submit,
                        rank,
                        &error,
                        details(rank, true),
                    )?;
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        match outcome {
            Ok(done) => {
                // Checkpointing jobs: a vacate (killed:15) is not a
                // terminal outcome — requeue the rank; it resumes from
                // the checkpoint the starter staged back.
                if submit.checkpointing {
                    let vacated: Vec<u32> = done
                        .iter()
                        .filter(|(_, st)| **st == ProcStatus::Killed(15))
                        .map(|(r, _)| *r)
                        .collect();
                    if !vacated.is_empty() {
                        retries += vacated.len() as u32;
                        if retries > MAX_REQUEUES {
                            return Err(TdpError::Substrate(format!(
                                "{job}: vacated more than {MAX_REQUEUES} times"
                            )));
                        }
                        for rank in vacated {
                            shadow.clear_rank(rank);
                            let deadline = Instant::now() + inner.negotiation_timeout();
                            let claim = claim_one(inner, job, &submit, &avoid, deadline)?
                                .ok_or_else(|| {
                                    TdpError::Substrate(format!(
                                        "{job} rank {rank}: no machine after vacate"
                                    ))
                                })?;
                            active.insert(rank, (claim.machine.clone(), claim.host));
                            claims.push(claim);
                            let idx = claims.len() - 1;
                            let mut d = details(rank, true);
                            d.tool_auto_run = true;
                            activate(&mut claims[idx], d)?;
                        }
                        continue;
                    }
                }
                break done;
            }
            Err((rank, error)) => {
                Requeue {
                    claims: &mut claims,
                    active: &mut active,
                    avoid: &mut avoid,
                    retries: &mut retries,
                }
                .requeue(inner, job, &submit, rank, &error, details(rank, true))?;
            }
        }
    };
    {
        let mut jobs = inner.jobs.lock();
        if let Some(rec) = jobs.get_mut(&job) {
            rec.state = JobState::Completed(done);
        }
    }
    inner.cv.notify_all();
    shadow.shutdown();
    Ok(())
}

/// How many starter-level failures a job may absorb before giving up.
const MAX_REQUEUES: u32 = 3;

fn negotiate(
    inner: &ScheddInner,
    submit: &SubmitDescription,
    exclude: Vec<String>,
) -> TdpResult<Option<(String, HostId, Addr)>> {
    let mut conn = inner.world.net().connect(inner.submit_host, inner.mm)?;
    send_json(
        &conn,
        &MmMsg::Negotiate {
            job_ad: submit.job_ad(),
            exclude,
        },
    )?;
    match recv_json_timeout::<MmMsg>(&mut conn, Duration::from_secs(5))? {
        MmMsg::MatchFound {
            name, host, startd, ..
        } => Ok(Some((name, host, startd))),
        MmMsg::NoMatch => Ok(None),
        other => Err(TdpError::Protocol(format!(
            "bad negotiation reply {other:?}"
        ))),
    }
}

fn try_claim(inner: &ScheddInner, job: JobId, startd: Addr) -> TdpResult<(tdp_netsim::Conn, u64)> {
    let mut conn = inner.world.net().connect(inner.submit_host, startd)?;
    send_json(&conn, &ClaimMsg::RequestClaim { job })?;
    match recv_json_timeout::<ClaimMsg>(&mut conn, Duration::from_secs(5))? {
        ClaimMsg::ClaimAccepted { claim_id } => Ok((conn, claim_id)),
        ClaimMsg::ClaimRejected { reason } => Err(TdpError::Substrate(reason)),
        other => Err(TdpError::Protocol(format!("bad claim reply {other:?}"))),
    }
}

fn activate(claim: &mut Claim, details: JobDetails) -> TdpResult<()> {
    send_json(
        &claim.conn,
        &ClaimMsg::ActivateClaim {
            claim_id: claim.claim_id,
            details: Box::new(details),
        },
    )?;
    match recv_json_timeout::<ClaimMsg>(&mut claim.conn, Duration::from_secs(5))? {
        ClaimMsg::Activated => Ok(()),
        ClaimMsg::ClaimRejected { reason } => Err(TdpError::Substrate(reason)),
        other => Err(TdpError::Protocol(format!("bad activate reply {other:?}"))),
    }
}

fn release_claims(claims: &mut Vec<Claim>) {
    for c in claims.drain(..) {
        let _ = send_json(
            &c.conn,
            &ClaimMsg::ReleaseClaim {
                claim_id: c.claim_id,
            },
        );
    }
}
