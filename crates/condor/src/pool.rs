//! Pool assembly: one call to stand up a whole Condor pool (central
//! manager + schedd + startds) inside a [`World`].

use crate::classad::ClassAd;
use crate::matchmaker::Matchmaker;
use crate::schedd::{JobState, Schedd};
use crate::startd::Startd;
use crate::submit::SubmitDescription;
use std::time::Duration;
use tdp_core::World;
use tdp_proto::{HostId, JobId, TdpResult};
use tdp_simos::ExecImage;

/// A running pool.
pub struct CondorPool {
    world: World,
    cm_host: HostId,
    submit_host: HostId,
    exec_hosts: Vec<HostId>,
    matchmaker: Matchmaker,
    schedd: Schedd,
    startds: Vec<Startd>,
}

impl CondorPool {
    /// Build a pool: a central manager and a submit machine on the
    /// public network plus `n_exec` execution machines (each with a
    /// default machine ad: 1 GiB memory, `HasTdp = true`).
    pub fn build(world: &World, n_exec: usize) -> TdpResult<CondorPool> {
        let cm_host = world.add_host();
        let submit_host = world.add_host();
        let exec_hosts: Vec<HostId> = (0..n_exec).map(|_| world.add_host()).collect();
        Self::assemble(world, cm_host, submit_host, exec_hosts)
    }

    /// Build with caller-provided hosts (e.g. execution hosts inside a
    /// firewalled private zone).
    pub fn assemble(
        world: &World,
        cm_host: HostId,
        submit_host: HostId,
        exec_hosts: Vec<HostId>,
    ) -> TdpResult<CondorPool> {
        let matchmaker = Matchmaker::start(world.net(), cm_host)?;
        // Startds must reach the matchmaker and the schedd's shadows;
        // in firewalled setups the caller authorizes routes.
        let mut startds = Vec::new();
        for (i, h) in exec_hosts.iter().enumerate() {
            let ad = ClassAd::new()
                .with_int("Memory", 1024)
                .with_int("Cpus", 1)
                .with_int("MachineId", i as i64)
                .with_bool("HasTdp", true)
                .with_str("Arch", "X86_64");
            startds.push(Startd::start(world, *h, ad, matchmaker.addr())?);
        }
        let schedd = Schedd::start(world, submit_host, matchmaker.addr());
        Ok(CondorPool {
            world: world.clone(),
            cm_host,
            submit_host,
            exec_hosts,
            matchmaker,
            schedd,
            startds,
        })
    }

    pub fn world(&self) -> &World {
        &self.world
    }

    pub fn central_manager(&self) -> HostId {
        self.cm_host
    }

    pub fn submit_host(&self) -> HostId {
        self.submit_host
    }

    pub fn exec_hosts(&self) -> &[HostId] {
        &self.exec_hosts
    }

    pub fn matchmaker(&self) -> &Matchmaker {
        &self.matchmaker
    }

    pub fn schedd(&self) -> &Schedd {
        &self.schedd
    }

    pub fn startds(&self) -> &[Startd] {
        &self.startds
    }

    /// Install an executable image on every execution host (how tests
    /// and examples provision application binaries; jobs with
    /// `transfer_files = always` instead stage from the submit host).
    pub fn install_everywhere(&self, path: &str, image: ExecImage) {
        for h in &self.exec_hosts {
            self.world.os().fs().install_exec(*h, path, image.clone());
        }
    }

    /// Parse and submit a submit file.
    pub fn submit_str(&self, text: &str) -> TdpResult<JobId> {
        self.schedd.submit_str(text)
    }

    /// Submit a parsed description.
    pub fn submit(&self, d: SubmitDescription) -> JobId {
        self.schedd.submit(d)
    }

    /// Wait for a job's terminal state.
    pub fn wait_job(&self, job: JobId, timeout: Duration) -> TdpResult<JobState> {
        self.schedd.wait_job(job, timeout)
    }
}
