//! Property tests: submit-file parsing and ClassAd matchmaking.

use proptest::prelude::*;
use tdp_condor::classad::{ClassAd, Requirement};
use tdp_condor::{SubmitDescription, Universe};

fn arb_word() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_./-]{1,12}"
}

proptest! {
    /// Any generated description renders to a submit file that parses
    /// back to the same description (the parser round-trips its own
    /// surface syntax).
    #[test]
    fn submit_roundtrip(
        exe in arb_word(),
        args in proptest::collection::vec(arb_word(), 0..4),
        universe in prop_oneof![Just(Universe::Vanilla), Just(Universe::Mpi), Just(Universe::Standard)],
        machine_count in 1u32..8,
        suspend in any::<bool>(),
        tool in proptest::option::of((arb_word(), proptest::collection::vec(arb_word(), 0..3))),
        count in 1u32..4,
    ) {
        let mut text = String::new();
        let uni = match universe {
            Universe::Vanilla => "Vanilla",
            Universe::Mpi => "MPI",
            Universe::Standard => "Standard",
        };
        text.push_str(&format!("universe = {uni}\n"));
        text.push_str(&format!("executable = {exe}\n"));
        if !args.is_empty() {
            text.push_str(&format!("arguments = {}\n", args.join(" ")));
        }
        text.push_str(&format!("machine_count = {machine_count}\n"));
        if suspend {
            text.push_str("+SuspendJobAtExec = True\n");
        }
        if let Some((cmd, targs)) = &tool {
            text.push_str(&format!("+ToolDaemonCmd = \"{cmd}\"\n"));
            if !targs.is_empty() {
                text.push_str(&format!("+ToolDaemonArgs = \"{}\"\n", targs.join(" ")));
            }
        }
        text.push_str(&format!("queue {count}\n"));

        let d = SubmitDescription::parse(&text).unwrap();
        prop_assert_eq!(d.universe, universe);
        prop_assert_eq!(&d.executable, &exe);
        prop_assert_eq!(&d.arguments, &args);
        prop_assert_eq!(d.machine_count, machine_count);
        prop_assert_eq!(d.suspend_job_at_exec, suspend);
        prop_assert_eq!(d.count, count);
        match (&d.tool_daemon, &tool) {
            (Some(td), Some((cmd, targs))) => {
                prop_assert_eq!(&td.cmd, cmd);
                prop_assert_eq!(&td.args, targs);
            }
            (None, None) => {}
            other => prop_assert!(false, "tool mismatch: {other:?}"),
        }
    }

    /// Parsing never panics on arbitrary text.
    #[test]
    fn submit_parse_never_panics(text in ".{0,400}") {
        let _ = SubmitDescription::parse(&text);
    }

    /// Matchmaking invariants: matches() is symmetric, an ad with no
    /// requirements matches anything that doesn't constrain it, and
    /// tightening a numeric requirement never *adds* matches.
    #[test]
    fn classad_matching_invariants(
        mem in 0i64..4096,
        need_a in 0i64..4096,
        need_b in 0i64..4096,
    ) {
        let machine = ClassAd::new().with_int("Memory", mem);
        let (lo, hi) = if need_a <= need_b { (need_a, need_b) } else { (need_b, need_a) };
        let loose = ClassAd::new().require(&format!("Memory >= {lo}"));
        let tight = ClassAd::new().require(&format!("Memory >= {hi}"));
        // Symmetry.
        prop_assert_eq!(loose.matches(&machine), machine.matches(&loose));
        // Monotonicity: if the tight ad matches, the loose one must.
        if tight.matches(&machine) {
            prop_assert!(loose.matches(&machine));
        }
        // Unconstrained ads always match unconstrained counterparts.
        prop_assert!(ClassAd::new().matches(&machine));
    }

    /// Requirement parse accepts exactly what it produces.
    #[test]
    fn requirement_parse_consistency(attr in "[A-Za-z]{1,8}", v in -1000i64..1000) {
        for op in ["==", "!=", ">=", "<=", ">", "<"] {
            let s = format!("{attr} {op} {v}");
            let r = Requirement::parse(&s);
            prop_assert!(r.is_some(), "failed to parse {s:?}");
        }
    }
}
