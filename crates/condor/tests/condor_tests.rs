//! Integration tests of the Condor substrate and the Parador
//! combination (§4.3): vanilla and MPI universes, with and without the
//! tool daemon, claiming, staging and master-based recovery.

use std::sync::Arc;
use std::time::Duration;
use tdp_condor::classad::ClassAd;
use tdp_condor::master::Master;
use tdp_condor::startd::{Startd, STARTD_PORT};
use tdp_condor::{CondorPool, JobState};
use tdp_core::World;
use tdp_mpi::{apps, MpiComm};
use tdp_paradyn::{paradynd_image, ParadynFrontend, PerformanceConsultant};
use tdp_proto::ProcStatus;
use tdp_simos::{fn_program, ExecImage};

const T: Duration = Duration::from_secs(30);

fn app_image() -> ExecImage {
    ExecImage::new(
        ["main", "hot_loop", "io_wait"],
        Arc::new(|args| {
            let reps: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(10);
            fn_program(move |ctx| {
                ctx.call("main", |ctx| {
                    let mut echoed = Vec::new();
                    if let Ok(Some(data)) = ctx.read_stdin() {
                        echoed = data;
                    }
                    for _ in 0..reps {
                        ctx.call("hot_loop", |ctx| ctx.compute(90));
                        ctx.call("io_wait", |ctx| ctx.compute(10));
                    }
                    ctx.write_stdout(b"processed: ");
                    ctx.write_stdout(&echoed);
                });
                0
            })
        }),
    )
}

#[test]
fn vanilla_job_without_tool() {
    let world = World::new();
    let pool = CondorPool::build(&world, 2).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    world
        .os()
        .fs()
        .write_file(pool.submit_host(), "infile", b"hello condor");
    let job = pool
        .submit_str(
            "universe = Vanilla\nexecutable = /bin/app\narguments = 3\ninput = infile\noutput = outfile\nqueue\n",
        )
        .unwrap();
    let state = pool.wait_job(job, T).unwrap();
    match state {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("job not completed: {other:?}"),
    }
    // Output staged back to the submit machine by the shadow.
    let out = world
        .os()
        .fs()
        .read_file(pool.submit_host(), "outfile")
        .unwrap();
    assert_eq!(out, b"processed: hello condor");
}

#[test]
fn executable_staged_from_submit_host() {
    // transfer_files = always: the binary lives only on the submit
    // machine before the run.
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    world
        .os()
        .fs()
        .install_exec(pool.submit_host(), "foo", app_image());
    assert!(!world.os().fs().exists(pool.exec_hosts()[0], "foo"));
    let job = pool
        .submit_str("executable = foo\narguments = 1\ntransfer_files = always\nqueue\n")
        .unwrap();
    assert!(matches!(
        pool.wait_job(job, T).unwrap(),
        JobState::Completed(_)
    ));
    assert!(world.os().fs().exists(pool.exec_hosts()[0], "foo"));
}

#[test]
fn impossible_requirements_fail_job() {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    let job = pool
        .submit_str("executable = /bin/app\nrequirements = Memory >= 999999\nqueue\n")
        .unwrap();
    // Shorten the wait by using the schedd's negotiation timeout.
    match pool.wait_job(job, T).unwrap() {
        JobState::Failed(e) => assert!(e.contains("no match"), "{e}"),
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn two_jobs_one_machine_run_sequentially() {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    let j1 = pool
        .submit_str("executable = /bin/app\narguments = 5\nqueue\n")
        .unwrap();
    let j2 = pool
        .submit_str("executable = /bin/app\narguments = 5\nqueue\n")
        .unwrap();
    assert!(matches!(
        pool.wait_job(j1, T).unwrap(),
        JobState::Completed(_)
    ));
    assert!(matches!(
        pool.wait_job(j2, T).unwrap(),
        JobState::Completed(_)
    ));
}

#[test]
fn jobs_spread_over_machines_by_rank() {
    // rank = MachineId prefers the highest machine id.
    let world = World::new();
    let pool = CondorPool::build(&world, 3).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    let job = pool
        .submit_str("executable = /bin/app\nrank = MachineId\nqueue\n")
        .unwrap();
    assert!(matches!(
        pool.wait_job(job, T).unwrap(),
        JobState::Completed(_)
    ));
    // All machines available again afterwards.
    std::thread::sleep(Duration::from_millis(100));
    let machines = pool.matchmaker().machines();
    assert_eq!(machines.len(), 3);
    assert!(machines.iter().all(|(_, avail)| *avail));
}

/// Full Parador, vanilla universe: the Figure 5B submit file, the
/// Figure 6 call sequence, outputs and tool files staged back.
#[test]
fn parador_vanilla_universe() {
    let world = World::new();
    let pool = CondorPool::build(&world, 2).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    world
        .os()
        .fs()
        .write_file(pool.submit_host(), "infile", b"tool run");
    // The Paradyn front-end is started first and its ports are written
    // into the submit file, exactly as in §4.3.
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let submit = format!(
        r#"
universe = Vanilla
executable = /bin/app
input = infile
output = outfile
arguments = 20
transfer_files = never
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-zunix -l3 -m{fe_host} -p{p} -P{pp} -a%pid"
+ToolDaemonOutput = "daemon.out"
+ToolDaemonError = "daemon.err"
queue
"#,
        fe_host = fe.host().0,
        p = fe.control_addr().port.0,
        pp = fe.data_addr().port.0,
    );
    let job = pool.submit_str(&submit).unwrap();

    // The daemon reports READY once the starter has put the pid.
    let daemons = fe.wait_for_daemons(1, T).unwrap();
    assert_eq!(daemons[0].symbols, vec!["main", "hot_loop", "io_wait"]);
    // The application is still suspended until the user hits run.
    assert_eq!(
        world.os().status(daemons[0].pid).unwrap(),
        ProcStatus::Created
    );
    fe.run_all().unwrap();

    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }

    // Profiling data reached the front-end; the Consultant finds the
    // hotspot.
    let b = PerformanceConsultant::default()
        .search(&fe.samples())
        .unwrap();
    assert_eq!(b.symbol, "hot_loop");

    // Figure 6 ordering, captured by the TDP trace.
    let tr = world.trace();
    tr.assert_order(
        (Some("starter"), "tdp_init"),
        (Some("starter"), "tdp_create_process(/bin/app, paused)"),
    );
    tr.assert_order(
        (Some("starter"), "tdp_create_process(/bin/app, paused)"),
        (Some("starter"), "tdp_create_process(paradynd, run)"),
    );
    tr.assert_order(
        (Some("starter"), "tdp_create_process(paradynd, run)"),
        (Some("starter"), "tdp_put(pid)"),
    );
    tr.assert_order((None, "tdp_get(pid)"), (None, "tdp_attach"));
    tr.assert_order((None, "tdp_attach"), (None, "tdp_continue_process"));

    // Staged artifacts on the submit machine: job output, daemon output
    // files and the daemon's trace file.
    assert_eq!(
        world
            .os()
            .fs()
            .read_file(pool.submit_host(), "outfile")
            .unwrap(),
        b"processed: tool run"
    );
    assert!(world.os().fs().exists(pool.submit_host(), "daemon.out"));
    assert!(world.os().fs().exists(pool.submit_host(), "daemon.err"));
    let traces = world.os().fs().list(pool.submit_host(), "paradynd");
    assert_eq!(traces.len(), 1, "daemon trace staged back: {traces:?}");
    let trace_data = world
        .os()
        .fs()
        .read_file(pool.submit_host(), &traces[0])
        .unwrap();
    assert!(String::from_utf8(trace_data)
        .unwrap()
        .contains("hot_loop count=20"));
}

/// Parador, MPI universe: rank 0 first, paradynd per rank, staged
/// startup (§4.3).
#[test]
fn parador_mpi_universe() {
    let world = World::new();
    let pool = CondorPool::build(&world, 3).unwrap();
    let comm = MpiComm::new(3);
    pool.install_everywhere("ring", apps::ring(comm, 2, 25));
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(world.clone()));
    }
    let fe = ParadynFrontend::start(world.net(), pool.submit_host(), 2090, 2091).unwrap();
    let submit = format!(
        r#"
universe = MPI
executable = ring
machine_count = 3
+SuspendJobAtExec = True
+ToolDaemonCmd = "paradynd"
+ToolDaemonArgs = "-m{fe_host} -p{p} -P{pp} -a%pid"
queue
"#,
        fe_host = fe.host().0,
        p = fe.control_addr().port.0,
        pp = fe.data_addr().port.0,
    );
    let job = pool.submit_str(&submit).unwrap();

    // Only the master process (rank 0) and its daemon exist initially.
    let daemons = fe.wait_for_daemons(1, T).unwrap();
    assert_eq!(daemons.len(), 1);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        fe.daemons().len(),
        1,
        "other ranks must wait for the run command"
    );

    // The user issues run: remaining ranks are created, each with its
    // own auto-running paradynd.
    fe.run_all().unwrap();
    let daemons = fe.wait_for_daemons(3, T).unwrap();
    assert_eq!(daemons.len(), 3);

    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => {
            assert_eq!(done.len(), 3);
            assert!(
                done.values().all(|st| *st == ProcStatus::Exited(0)),
                "{done:?}"
            );
        }
        other => panic!("{other:?}"),
    }
    // Each rank produced samples (wait for every daemon's final flush —
    // the shadow path can complete before the FE data path drains).
    fe.wait_done(3, T).unwrap();
    let samples = fe.samples();
    let daemons_with_compute: std::collections::HashSet<&str> = samples
        .iter()
        .filter(|s| s.symbol == "compute")
        .map(|s| s.daemon.as_str())
        .collect();
    assert_eq!(daemons_with_compute.len(), 3, "{samples:?}");
}

/// MPI universe without a tool: plain gang scheduling still works.
#[test]
fn mpi_universe_without_tool() {
    let world = World::new();
    let pool = CondorPool::build(&world, 2).unwrap();
    let comm = MpiComm::new(2);
    pool.install_everywhere("ring", apps::ring(comm, 1, 5));
    let job = pool
        .submit_str("universe = MPI\nexecutable = ring\nmachine_count = 2\nqueue\n")
        .unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => {
            assert_eq!(done.len(), 2);
            assert!(done.values().all(|st| *st == ProcStatus::Exited(0)));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn mpi_job_needing_more_machines_than_pool_fails() {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    let comm = MpiComm::new(4);
    pool.install_everywhere("ring", apps::ring(comm, 1, 5));
    let job = pool
        .submit_str("universe = MPI\nexecutable = ring\nmachine_count = 4\nqueue\n")
        .unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Failed(e) => assert!(e.contains("1/4"), "{e}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn master_restarts_crashed_startd() {
    let world = World::new();
    let cm = world.add_host();
    let exec = world.add_host();
    let mm = tdp_condor::Matchmaker::start(world.net(), cm).unwrap();
    let ad = ClassAd::new().with_int("Memory", 512);
    let startd = Startd::start(&world, exec, ad.clone(), mm.addr()).unwrap();
    let addr = startd.addr();
    assert_eq!(addr.port.0, STARTD_PORT);

    let w2 = world.clone();
    let mm_addr = mm.addr();
    let ad2 = ad.clone();
    let master = Master::supervise(&world, exec, addr, Duration::from_millis(25), move || {
        let s = Startd::start(&w2, exec, ad2.clone(), mm_addr)?;
        let a = s.addr();
        // Leak the replacement so it outlives the closure (the master
        // owns its lifecycle in this simplified model).
        std::mem::forget(s);
        Ok(a)
    });

    assert_eq!(master.restart_count(), 0);
    startd.simulate_crash();
    master
        .wait_restarts(1, T)
        .expect("master never restarted the startd");
    // The replacement re-registered with the matchmaker.
    mm.wait_machines(T, |machines| {
        machines
            .iter()
            .any(|(name, _)| name.contains(&format!("host{}", exec.0)))
    })
    .expect("machine never re-registered");
    master.shutdown();
}

#[test]
fn condor_q_lists_queue_states() {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    let j1 = pool
        .submit_str("executable = /bin/app\narguments = 1\nqueue\n")
        .unwrap();
    let j2 = pool
        .submit_str("executable = /bin/app\nrequirements = Memory >= 999999\nqueue\n")
        .unwrap();
    pool.wait_job(j1, T).unwrap();
    pool.wait_job(j2, T).unwrap();
    let q = pool.schedd().condor_q();
    assert_eq!(q.len(), 2);
    assert_eq!(q[0].0, j1);
    assert!(matches!(q[0].1, JobState::Completed(_)));
    assert!(matches!(q[1].1, JobState::Failed(_)));
}
