//! Integration tests for the extra tools: the debugger end-to-end, and
//! all tools running under the Condor RM — widening the m × n matrix.

use std::sync::Arc;
use std::time::Duration;
use tdp_condor::{CondorPool, JobState};
use tdp_core::{Role, TdpCreate, TdpHandle, World};
use tdp_proto::{names, ContextId, HostId, ProcStatus};
use tdp_simos::{fn_program, ExecImage};
use tdp_tools::{tracey_image, vamp_image, Tdb, TdbEvent};

const T: Duration = Duration::from_secs(15);

fn app_image() -> ExecImage {
    ExecImage::new(
        ["main", "load", "solve", "report"],
        Arc::new(|_| {
            fn_program(|ctx| {
                ctx.call("main", |ctx| {
                    ctx.call("load", |ctx| ctx.compute(10));
                    for _ in 0..3 {
                        ctx.call("solve", |ctx| ctx.compute(50));
                    }
                    ctx.call("report", |ctx| ctx.write_stdout(b"answer=42\n"));
                });
                0
            })
        }),
    )
}

fn desktop() -> (World, HostId) {
    let world = World::new();
    let host = world.add_host();
    world.os().fs().install_exec(host, "/bin/app", app_image());
    (world, host)
}

#[test]
fn tdb_breakpoint_session() {
    let (world, host) = desktop();
    let mut dbg = Tdb::launch(&world, host, ContextId(1), "/bin/app", &[]).unwrap();
    assert_eq!(
        dbg.symbols().unwrap(),
        vec!["main", "load", "solve", "report"]
    );
    dbg.breakpoint("solve").unwrap();
    dbg.watch_calls("solve").unwrap();
    dbg.run().unwrap();

    // Three stops at solve; backtrace shows main above it.
    for i in 0..3 {
        match dbg.wait_stop(T).unwrap() {
            TdbEvent::Breakpoint(sym) => assert_eq!(sym, "solve", "stop {i}"),
            other => panic!("stop {i}: {other:?}"),
        }
        assert_eq!(dbg.backtrace().unwrap(), vec!["main"]);
        assert_eq!(dbg.where_stopped().unwrap().as_deref(), Some("solve"));
        assert_eq!(
            dbg.info()
                .unwrap()
                .counts
                .get("solve")
                .copied()
                .unwrap_or(0),
            i
        );
        dbg.run().unwrap();
    }
    match dbg.wait_stop(T).unwrap() {
        TdbEvent::Terminated(st) => assert_eq!(st, ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    assert_eq!(dbg.info().unwrap().counts["solve"], 3);
}

#[test]
fn tdb_step_walks_symbol_entries() {
    let (world, host) = desktop();
    let mut dbg = Tdb::launch(&world, host, ContextId(2), "/bin/app", &[]).unwrap();
    // Stepping from paused-at-exec enters main, then load, then solve.
    let mut visited = Vec::new();
    for _ in 0..3 {
        match dbg.step(T).unwrap() {
            TdbEvent::Breakpoint(sym) => visited.push(sym),
            TdbEvent::Terminated(_) => break,
        }
    }
    assert_eq!(visited, vec!["main", "load", "solve"]);
    // Let it finish unencumbered.
    dbg.run().unwrap();
    assert_eq!(dbg.wait_exit(T).unwrap(), ProcStatus::Exited(0));
}

#[test]
fn tdb_detach_leaves_program_running() {
    let (world, host) = desktop();
    world.os().fs().install_exec(
        host,
        "/bin/slow",
        ExecImage::new(
            ["main", "tick"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for _ in 0..200 {
                            ctx.call("tick", |ctx| ctx.sleep(Duration::from_millis(2)));
                        }
                    });
                    0
                })
            }),
        ),
    );
    let mut dbg = Tdb::launch(&world, host, ContextId(3), "/bin/slow", &[]).unwrap();
    dbg.breakpoint("tick").unwrap();
    dbg.run().unwrap();
    assert!(matches!(dbg.wait_stop(T).unwrap(), TdbEvent::Breakpoint(_)));
    dbg.clear("tick").unwrap();
    let pid = dbg.pid();
    dbg.detach().unwrap();
    // Detach resumed it; it runs to completion on its own.
    assert_eq!(
        world.os().wait_terminal(pid, T).unwrap(),
        ProcStatus::Exited(0)
    );
}

#[test]
fn tdb_under_tdp_framework() {
    // The debugger as the RT of Figure 3A: pid arrives via the space.
    let (world, host) = desktop();
    let ctx = ContextId(4);
    let mut rm = TdpHandle::init(&world, host, ctx, "rm", Role::ResourceManager).unwrap();
    let app = rm
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    rm.put(names::PID, &app.to_string()).unwrap();
    let mut dbg = Tdb::from_tdp(&world, host, ctx).unwrap();
    assert_eq!(dbg.pid(), app);
    assert_eq!(rm.get(names::TOOL_READY).unwrap(), "1");
    dbg.breakpoint("report").unwrap();
    dbg.run().unwrap();
    assert!(matches!(dbg.wait_stop(T).unwrap(), TdbEvent::Breakpoint(s) if s == "report"));
    dbg.clear("report").unwrap();
    dbg.run().unwrap();
    assert_eq!(dbg.wait_exit(T).unwrap(), ProcStatus::Exited(0));
}

/// Each extra tool under Condor — three more cells of the m × n matrix,
/// with zero pairwise code.
fn condor_with_tool(
    tool_name: &str,
    image_for: impl Fn(World) -> ExecImage,
) -> (World, CondorPool) {
    let world = World::new();
    let pool = CondorPool::build(&world, 1).unwrap();
    pool.install_everywhere("/bin/app", app_image());
    for h in pool.exec_hosts() {
        world
            .os()
            .fs()
            .install_exec(*h, tool_name, image_for(world.clone()));
    }
    (world, pool)
}

#[test]
fn condor_runs_tracey_from_tools_crate() {
    let (world, pool) = condor_with_tool("tracey", tracey_image);
    let job = pool
        .submit_str(
            "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"tracey\"\nqueue\n",
        )
        .unwrap();
    assert!(matches!(
        pool.wait_job(job, T).unwrap(),
        JobState::Completed(_)
    ));
    let reports: Vec<String> = world
        .os()
        .fs()
        .list(pool.exec_hosts()[0], "tracey")
        .into_iter()
        .filter(|f| f.ends_with(".coverage"))
        .collect();
    assert_eq!(reports.len(), 1);
    let text = String::from_utf8(
        world
            .os()
            .fs()
            .read_file(pool.exec_hosts()[0], &reports[0])
            .unwrap(),
    )
    .unwrap();
    assert!(text.contains("solve 3"), "{text}");
}

#[test]
fn condor_runs_vamp_from_tools_crate() {
    let (world, pool) = condor_with_tool("vamp", vamp_image);
    let job = pool
        .submit_str(
            "executable = /bin/app\n+SuspendJobAtExec = True\n+ToolDaemonCmd = \"vamp\"\n+ToolDaemonArgs = \"-i2\"\nqueue\n",
        )
        .unwrap();
    assert!(matches!(
        pool.wait_job(job, T).unwrap(),
        JobState::Completed(_)
    ));
    let traces: Vec<String> = world
        .os()
        .fs()
        .list(pool.exec_hosts()[0], "vamp")
        .into_iter()
        .filter(|f| f.ends_with(".vamp"))
        .collect();
    assert_eq!(traces.len(), 1, "{traces:?}");
    let text = String::from_utf8(
        world
            .os()
            .fs()
            .read_file(pool.exec_hosts()[0], &traces[0])
            .unwrap(),
    )
    .unwrap();
    assert!(text.contains("END exited:0"), "{text}");
}

#[test]
fn vamp_requires_suspend_at_exec_under_condor() {
    // Without +SuspendJobAtExec the app is already running when vamp
    // attaches — vamp refuses (its Vampir-faithful limitation), the job
    // itself still completes.
    let (world, pool) = condor_with_tool("vamp", vamp_image);
    let job = pool
        .submit_str("executable = /bin/app\n+ToolDaemonCmd = \"vamp\"\nqueue\n")
        .unwrap();
    match pool.wait_job(job, T).unwrap() {
        JobState::Completed(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    let traces: Vec<String> = world
        .os()
        .fs()
        .list(pool.exec_hosts()[0], "vamp")
        .into_iter()
        .filter(|f| f.ends_with(".vamp"))
        .collect();
    assert!(traces.is_empty(), "vamp must not have traced: {traces:?}");
}
