//! `tracey` — a coverage tool daemon.
//!
//! The simplest useful RT: attach (under the TDP framework, getting the
//! pid from the Local Attribute Space), instrument every symbol, run the
//! application to completion, and write a `<daemon>.coverage` report of
//! call counts on its execution host. It has no front-end at all: the
//! report file is its output, staged back by the RM like any other tool
//! data file (§2).

use tdp_core::{Role, TdpHandle, World};
use tdp_proto::{names, ContextId, Pid, TdpError, TdpResult};
use tdp_simos::{fn_program, ExecImage, ProcCtx};

/// Build the tracey executable image.
///
/// argv: `-c<ctx>` selects the TDP context (default 0); everything else
/// is ignored. The pid always comes from the attribute space — tracey
/// only supports the TDP framework mode.
pub fn tracey_image(world: World) -> ExecImage {
    ExecImage::from_fn(move |argv| {
        let world = world.clone();
        let ctx = argv
            .iter()
            .find_map(|a| a.strip_prefix("-c").and_then(|v| v.parse().ok()))
            .map(ContextId)
            .unwrap_or(ContextId::DEFAULT);
        fn_program(move |pctx| match tracey_main(&world, pctx, ctx) {
            Ok(()) => 0,
            Err(e) => {
                pctx.write_stderr(format!("tracey: {e}\n").as_bytes());
                1
            }
        })
    })
}

fn tracey_main(world: &World, pctx: &mut ProcCtx, ctx: ContextId) -> TdpResult<()> {
    let name = format!("tracey{}", pctx.pid());
    let mut tdp = TdpHandle::init(world, pctx.host(), ctx, &name, Role::Tool)?;
    let pid = Pid::parse(&tdp.get(names::PID)?)
        .ok_or_else(|| TdpError::Protocol("bad pid attribute".into()))?;
    tdp.attach(pid)?;
    for sym in tdp.symbols(pid)? {
        tdp.arm_probe(pid, &sym)?;
    }
    tdp.put(names::TOOL_READY, "1")?;
    tdp.continue_process(pid)?;
    let status = tdp.wait_terminal(pid, std::time::Duration::from_secs(600))?;
    let snap = tdp.read_probes(pid)?;
    let mut lines: Vec<String> = snap
        .counts
        .iter()
        .map(|(sym, count)| format!("{sym} {count}"))
        .collect();
    lines.sort();
    lines.push(format!("# exit {}", status.to_attr_value()));
    world.os().fs().write_file(
        pctx.host(),
        &format!("{name}.coverage"),
        (lines.join("\n") + "\n").as_bytes(),
    );
    tdp.publish_status(status)?;
    tdp.exit()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use tdp_core::TdpCreate;
    use tdp_proto::ProcStatus;

    #[test]
    fn coverage_report_written() {
        let world = World::new();
        let host = world.add_host();
        world.os().fs().install_exec(
            host,
            "/bin/app",
            ExecImage::new(
                ["main", "alpha", "beta"],
                Arc::new(|_| {
                    fn_program(|ctx| {
                        ctx.call("main", |ctx| {
                            for _ in 0..3 {
                                ctx.call("alpha", |ctx| ctx.compute(1));
                            }
                            ctx.call("beta", |ctx| ctx.compute(1));
                        });
                        0
                    })
                }),
            ),
        );
        world
            .os()
            .fs()
            .install_exec(host, "tracey", tracey_image(world.clone()));
        let mut rm =
            TdpHandle::init(&world, host, ContextId(3), "rm", Role::ResourceManager).unwrap();
        let app = rm
            .create_process(TdpCreate::new("/bin/app").paused())
            .unwrap();
        let tool = rm
            .create_process(TdpCreate::new("tracey").args(["-c3"]))
            .unwrap();
        rm.put(names::PID, &app.to_string()).unwrap();
        assert_eq!(
            world
                .os()
                .wait_terminal(tool, Duration::from_secs(10))
                .unwrap(),
            ProcStatus::Exited(0)
        );
        let report = world
            .os()
            .fs()
            .read_file(host, &format!("tracey{tool}.coverage"))
            .map(|d| String::from_utf8(d).unwrap())
            .unwrap();
        assert!(report.contains("alpha 3"), "{report}");
        assert!(report.contains("beta 1"), "{report}");
        assert!(report.contains("main 1"), "{report}");
        assert!(report.contains("# exit exited:0"), "{report}");
    }

    #[test]
    fn missing_pid_blocks_until_put_never_guesses() {
        let world = World::new();
        let host = world.add_host();
        world
            .os()
            .fs()
            .install_exec(host, "tracey", tracey_image(world.clone()));
        let mut rm = TdpHandle::init(
            &world,
            host,
            ContextId::DEFAULT,
            "rm",
            Role::ResourceManager,
        )
        .unwrap();
        let tool = rm.create_process(TdpCreate::new("tracey")).unwrap();
        // Without a pid put, tracey stays blocked in tdp_get.
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(world.os().status(tool).unwrap(), ProcStatus::Running);
        world.os().kill(tool, 9).unwrap();
    }
}
