//! `vamp` — a Vampir-style event tracer.
//!
//! §2.2's scheme-1 tool: "Create the application process and start it
//! running … tools such as Vampir and PCL use this technique", and
//! crucially "the Vampir trace tool requires the tracing to be started
//! before the application starts execution" — it cannot attach to a
//! running process.
//!
//! Our vamp therefore *requires* the application to still be in the
//! `Created` (paused-at-exec) state when it attaches; handed a running
//! pid, it refuses, exactly like the real tool's limitation (§2.2's
//! note that "not all tools have the ability to use this attach
//! technique"). It samples all probes on a fixed cadence and writes a
//! time-ordered event log `<daemon>.vamp` of per-interval call deltas.

use std::time::Duration;
use tdp_core::{Role, TdpHandle, World};
use tdp_proto::{names, ContextId, Pid, ProcStatus, TdpError, TdpResult};
use tdp_simos::{fn_program, ExecImage, ProcCtx};

/// Build the vamp executable image.
///
/// argv: `-c<ctx>` TDP context; `-i<ms>` sampling interval
/// (default 5 ms).
pub fn vamp_image(world: World) -> ExecImage {
    ExecImage::from_fn(move |argv| {
        let world = world.clone();
        let ctx = argv
            .iter()
            .find_map(|a| a.strip_prefix("-c").and_then(|v| v.parse().ok()))
            .map(ContextId)
            .unwrap_or(ContextId::DEFAULT);
        let interval = argv
            .iter()
            .find_map(|a| a.strip_prefix("-i").and_then(|v| v.parse().ok()))
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(5));
        fn_program(move |pctx| match vamp_main(&world, pctx, ctx, interval) {
            Ok(()) => 0,
            Err(e) => {
                pctx.write_stderr(format!("vamp: {e}\n").as_bytes());
                1
            }
        })
    })
}

fn vamp_main(
    world: &World,
    pctx: &mut ProcCtx,
    ctx: ContextId,
    interval: Duration,
) -> TdpResult<()> {
    let name = format!("vamp{}", pctx.pid());
    let mut tdp = TdpHandle::init(world, pctx.host(), ctx, &name, Role::Tool)?;
    let pid = Pid::parse(&tdp.get(names::PID)?)
        .ok_or_else(|| TdpError::Protocol("bad pid attribute".into()))?;

    // The Vampir limitation: tracing must begin before execution.
    let status = world.os().status(pid)?;
    if status != ProcStatus::Created {
        return Err(TdpError::WrongProcessState {
            pid,
            state: format!("{status:?}"),
            wanted: "Created (vamp cannot attach to a started process)".to_string(),
        });
    }

    tdp.attach(pid)?;
    for sym in tdp.symbols(pid)? {
        tdp.arm_probe(pid, &sym)?;
    }
    tdp.put(names::TOOL_READY, "1")?;
    tdp.continue_process(pid)?;

    // The trace: one line per interval per symbol with activity.
    let mut log = String::new();
    let mut tick: u64 = 0;
    let mut last: std::collections::HashMap<String, u64> = Default::default();
    loop {
        pctx.sleep(interval);
        tick += 1;
        let snap = tdp.read_probes(pid)?;
        let mut syms: Vec<&String> = snap.counts.keys().collect();
        syms.sort();
        for sym in syms {
            let count = snap.counts[sym];
            let prev = last.get(sym.as_str()).copied().unwrap_or(0);
            if count > prev {
                log.push_str(&format!("t={tick} {sym} +{}\n", count - prev));
                last.insert(sym.clone(), count);
            }
        }
        let st = world.os().status(pid)?;
        if st.is_terminal() {
            log.push_str(&format!("t={tick} END {}\n", st.to_attr_value()));
            break;
        }
    }
    world
        .os()
        .fs()
        .write_file(pctx.host(), &format!("{name}.vamp"), log.as_bytes());
    tdp.exit()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tdp_core::TdpCreate;

    fn slow_app() -> ExecImage {
        ExecImage::new(
            ["main", "tick"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for _ in 0..10 {
                            ctx.call("tick", |ctx| {
                                ctx.compute(1);
                                ctx.sleep(Duration::from_millis(8));
                            });
                        }
                    });
                    0
                })
            }),
        )
    }

    #[test]
    fn traces_created_process_over_time() {
        let world = World::new();
        let host = world.add_host();
        world.os().fs().install_exec(host, "/bin/app", slow_app());
        world
            .os()
            .fs()
            .install_exec(host, "vamp", vamp_image(world.clone()));
        let mut rm =
            TdpHandle::init(&world, host, ContextId(1), "rm", Role::ResourceManager).unwrap();
        let app = rm
            .create_process(TdpCreate::new("/bin/app").paused())
            .unwrap();
        let tool = rm
            .create_process(TdpCreate::new("vamp").args(["-c1", "-i4"]))
            .unwrap();
        rm.put(names::PID, &app.to_string()).unwrap();
        assert_eq!(
            world
                .os()
                .wait_terminal(tool, Duration::from_secs(10))
                .unwrap(),
            ProcStatus::Exited(0)
        );
        let trace = String::from_utf8(
            world
                .os()
                .fs()
                .read_file(host, &format!("vamp{tool}.vamp"))
                .unwrap(),
        )
        .unwrap();
        // Time-ordered tick deltas, ending with the exit marker.
        assert!(trace.contains("tick +"), "{trace}");
        assert!(trace.trim_end().ends_with("END exited:0"), "{trace}");
        // Activity spread over more than one interval (a real
        // time-series, not one final dump).
        let ticks: std::collections::HashSet<&str> = trace
            .lines()
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert!(
            ticks.len() > 2,
            "expected multiple sample intervals: {trace}"
        );
    }

    #[test]
    fn refuses_running_process() {
        // The scheme-1 limitation: vamp must see the app before it runs.
        let world = World::new();
        let host = world.add_host();
        world.os().fs().install_exec(host, "/bin/app", slow_app());
        world
            .os()
            .fs()
            .install_exec(host, "vamp", vamp_image(world.clone()));
        let mut rm =
            TdpHandle::init(&world, host, ContextId(1), "rm", Role::ResourceManager).unwrap();
        let app = rm.create_process(TdpCreate::new("/bin/app")).unwrap(); // running!
        let tool = rm
            .create_process(TdpCreate::new("vamp").args(["-c1"]))
            .unwrap();
        rm.put(names::PID, &app.to_string()).unwrap();
        assert_eq!(
            world
                .os()
                .wait_terminal(tool, Duration::from_secs(10))
                .unwrap(),
            ProcStatus::Exited(1),
            "vamp must refuse an already-running application"
        );
        let err = String::from_utf8(world.os().read_stderr(tool).unwrap()).unwrap();
        assert!(err.contains("vamp cannot attach"), "{err}");
        rm.kill_process(app, 9).unwrap();
    }
}
