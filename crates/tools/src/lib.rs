//! # tdp-tools — more run-time tools for the m + n matrix
//!
//! §1 of the paper: "for m tools and n environments, the problem becomes
//! an m × n effort, rather than the hoped-for m + n effort." TDP's
//! answer is a common protocol; this crate is the *m* side of the
//! demonstration — three additional tools, each a different point in the
//! paper's §2.2 taxonomy, all speaking only TDP and therefore running
//! unmodified under every TDP resource manager in the workspace (the
//! Condor pool, the LSF-style cluster, or a bare `minirm`):
//!
//! * [`tracey`] — a **coverage tool** (create-paused/attach scheme):
//!   counts every symbol's calls and writes a coverage report;
//! * [`tdb`] — an interactive **debugger** front-end: breakpoints,
//!   stack inspection, stepping between symbols, probe reads — the gdb
//!   of the taxonomy;
//! * [`vamp`] — a Vampir-style **event tracer**: "requires the tracing
//!   to be started before the application starts execution" (§2.2),
//!   so it refuses attach-mode targets and emits a time-ordered event
//!   log.

pub mod tdb;
pub mod tracey;
pub mod vamp;

pub use tdb::{Tdb, TdbEvent};
pub use tracey::tracey_image;
pub use vamp::vamp_image;
