//! `tdb` — a symbolic debugger over TDP.
//!
//! The gdb of §2.2's taxonomy ("create the application, initialize it,
//! and then start it running … tools such as gdb, Totalview, and
//! Paradyn use this technique"): it can launch a program stopped before
//! `main`, or pick up a pid from the TDP attribute space, and then set
//! breakpoints, inspect the call stack, step between symbol entries and
//! read instrumentation counters.

use crossbeam::channel::Receiver;
use std::time::{Duration, Instant};
use tdp_core::{Role, TdpCreate, TdpHandle, World};
use tdp_proto::{names, ContextId, HostId, Pid, ProcStatus, TdpError, TdpResult};

/// What `wait_stop` observed.
#[derive(Debug, Clone, PartialEq)]
pub enum TdbEvent {
    /// Stopped at a breakpoint on this symbol.
    Breakpoint(String),
    /// The debuggee terminated.
    Terminated(ProcStatus),
}

/// An interactive debugger session bound to one process.
pub struct Tdb {
    tdp: TdpHandle,
    pid: Pid,
    hits: Receiver<String>,
}

impl Tdb {
    /// Launch `exe` under the debugger: created **paused at exec**, so
    /// breakpoints set now fire from the very first instruction on.
    /// The debugger acts as its own resource manager (desktop use).
    pub fn launch(
        world: &World,
        host: HostId,
        ctx: ContextId,
        exe: &str,
        args: &[&str],
    ) -> TdpResult<Tdb> {
        let mut tdp = TdpHandle::init(world, host, ctx, "tdb", Role::ResourceManager)?;
        let pid = tdp.create_process(
            TdpCreate::new(exe)
                .args(args.iter().map(|s| s.to_string()))
                .paused(),
        )?;
        Self::finish_setup(tdp, pid)
    }

    /// Join a TDP framework: the RM has created the application paused
    /// and will put its pid into the context's space.
    pub fn from_tdp(world: &World, host: HostId, ctx: ContextId) -> TdpResult<Tdb> {
        let mut tdp = TdpHandle::init(world, host, ctx, "tdb", Role::Tool)?;
        let pid = Pid::parse(&tdp.get(names::PID)?)
            .ok_or_else(|| TdpError::Protocol("bad pid attribute".into()))?;
        Self::finish_setup(tdp, pid)
    }

    fn finish_setup(mut tdp: TdpHandle, pid: Pid) -> TdpResult<Tdb> {
        tdp.attach(pid)?;
        tdp.set_stack_tracking(pid, true)?;
        let hits = tdp.breakpoint_events(pid)?;
        let _ = tdp.put(names::TOOL_READY, "1");
        Ok(Tdb { tdp, pid, hits })
    }

    /// The debuggee's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The debuggee's symbol table.
    pub fn symbols(&self) -> TdpResult<Vec<String>> {
        self.tdp.symbols(self.pid)
    }

    /// Set a breakpoint (gdb `break sym`).
    pub fn breakpoint(&mut self, sym: &str) -> TdpResult<()> {
        self.tdp.arm_breakpoint(self.pid, sym)
    }

    /// Clear a breakpoint (gdb `delete`).
    pub fn clear(&mut self, sym: &str) -> TdpResult<()> {
        self.tdp.disarm_breakpoint(self.pid, sym)
    }

    /// Continue execution (gdb `run` / `continue`).
    pub fn run(&mut self) -> TdpResult<()> {
        self.tdp.continue_process(self.pid)
    }

    /// Wait for the next stop: a breakpoint hit or termination.
    pub fn wait_stop(&mut self, timeout: Duration) -> TdpResult<TdbEvent> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Ok(sym) = self.hits.recv_timeout(Duration::from_millis(10)) {
                return Ok(TdbEvent::Breakpoint(sym));
            }
            let st = self.tdp.process_status(self.pid)?;
            if st.is_terminal() {
                return Ok(TdbEvent::Terminated(st));
            }
            if Instant::now() > deadline {
                return Err(TdpError::Timeout);
            }
        }
    }

    /// Step to the next *symbol entry* (gdb `step`, at our symbol
    /// granularity): breakpoints are temporarily armed on every symbol.
    pub fn step(&mut self, timeout: Duration) -> TdpResult<TdbEvent> {
        let symbols = self.symbols()?;
        for sym in &symbols {
            self.tdp.arm_breakpoint(self.pid, sym)?;
        }
        self.run()?;
        let ev = self.wait_stop(timeout);
        for sym in &symbols {
            let _ = self.tdp.disarm_breakpoint(self.pid, sym);
        }
        ev
    }

    /// The call stack at the current stop (gdb `backtrace`), outermost
    /// first.
    pub fn backtrace(&self) -> TdpResult<Vec<String>> {
        self.tdp.read_stack(self.pid)
    }

    /// The symbol of the most recent breakpoint stop.
    pub fn where_stopped(&self) -> TdpResult<Option<String>> {
        self.tdp.last_breakpoint(self.pid)
    }

    /// Instrument a symbol with a counting probe (gdb has no analog —
    /// this is the Dyninst-flavoured part).
    pub fn watch_calls(&mut self, sym: &str) -> TdpResult<()> {
        self.tdp.arm_probe(self.pid, sym)
    }

    /// Read probe counters (`info` for watched symbols).
    pub fn info(&self) -> TdpResult<tdp_simos::ProbeSnapshot> {
        self.tdp.read_probes(self.pid)
    }

    /// Kill the debuggee (gdb `kill`).
    pub fn kill(&mut self) -> TdpResult<()> {
        self.tdp.kill_process(self.pid, 9)
    }

    /// Wait for natural termination.
    pub fn wait_exit(&mut self, timeout: Duration) -> TdpResult<ProcStatus> {
        self.tdp.wait_terminal(self.pid, timeout)
    }

    /// Detach and end the session, leaving the debuggee as-is (resumed
    /// if it was stopped, like gdb `detach`).
    pub fn detach(mut self) -> TdpResult<()> {
        self.tdp.detach(self.pid)?;
        self.tdp.exit()
    }
}
