//! `paradynd` — the tool daemon, as an executable image the resource
//! manager launches with `tdp_create_process`.

use crate::msg::{parse_line, render_line, LineBuf, ToolMsg};
use std::time::Duration;
use tdp_core::{Role, TdpCreate, TdpHandle, World};
use tdp_netsim::Conn;
use tdp_proto::{names, Addr, ContextId, HostId, Pid, TdpError, TdpResult};
use tdp_simos::{fn_program, ExecImage, ProcCtx};

/// Conventional path the RM installs the daemon binary at after staging
/// (`transfer_input_files = paradynd`, Figure 5B).
pub const PARADYND_EXE: &str = "paradynd";

/// How the daemon finds its application process (§4.2's two modes plus
/// the TDP framework mode of §4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaemonMode {
    /// `-a<pid>`: attach to an already-running process.
    Attach(Pid),
    /// `-r<exe>`: create mode — paradynd launches the application
    /// itself (standalone use, no batch system).
    Create { exe: String, app_args: Vec<String> },
    /// `-a%pid` left unsubstituted (or no process reference at all):
    /// "paradynd assumes then that it is working under a TDP framework"
    /// and gets the pid from the Local Attribute Space.
    Tdp,
}

/// Parsed paradynd argv (Figure 5B syntax).
#[derive(Debug, Clone)]
struct DaemonArgs {
    mode: DaemonMode,
    /// Front-end host from `-m`, ports from `-p` (control) / `-P`
    /// (data). When absent the daemon resolves the front-end through
    /// the attribute space instead ("in a complete TDP framework, port
    /// arguments should be published … as attribute values", §4.3).
    fe_host: Option<u32>,
    fe_control: Option<u16>,
    fe_data: Option<u16>,
    /// `-c<ctx>`: TDP context (defaults to 0).
    ctx: ContextId,
    /// `-A`: auto-run — continue the application without waiting for
    /// the front-end's run command (non-master MPI ranks, §4.3).
    auto_run: bool,
    /// `-S`: strict single-point process control (§2.3) — the daemon
    /// never touches the process itself; every pause/continue/kill is
    /// filed as a `proc_request` attribute for the RM to service.
    strict_control: bool,
    log_level: u32,
}

fn parse_args(args: &[String]) -> DaemonArgs {
    let mut out = DaemonArgs {
        mode: DaemonMode::Tdp,
        fe_host: None,
        fe_control: None,
        fe_data: None,
        ctx: ContextId::DEFAULT,
        auto_run: false,
        strict_control: false,
        log_level: 0,
    };
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        if let Some(v) = a.strip_prefix("-a") {
            if let Some(pid) = Pid::parse(v) {
                out.mode = DaemonMode::Attach(pid);
            }
            // `-a%pid` (or garbage) leaves Tdp mode — the Parador hack.
        } else if let Some(v) = a.strip_prefix("-r") {
            let exe = v.to_string();
            let app_args: Vec<String> = iter.by_ref().cloned().collect();
            out.mode = DaemonMode::Create { exe, app_args };
        } else if let Some(v) = a.strip_prefix("-m") {
            out.fe_host = v.parse().ok();
        } else if let Some(v) = a.strip_prefix("-P") {
            out.fe_data = v.parse().ok();
        } else if let Some(v) = a.strip_prefix("-p") {
            out.fe_control = v.parse().ok();
        } else if let Some(v) = a.strip_prefix("-c") {
            out.ctx = ContextId(v.parse().unwrap_or(0));
        } else if let Some(v) = a.strip_prefix("-l") {
            out.log_level = v.parse().unwrap_or(0);
        } else if a == "-A" {
            out.auto_run = true;
        } else if a == "-S" {
            out.strict_control = true;
        }
        // -z<flavor> and unknown flags are accepted and ignored, like
        // the real daemon's platform flags.
    }
    out
}

/// Resolve the front-end's control and data addresses, in order of
/// preference: argv (Figure 5B's manual ports), the local attribute
/// space, and finally the **CASS** — the complete-TDP-framework path of
/// §4.3 where "port arguments should be published by Paradyn front-end
/// and disseminated to remote sites as attribute values".
fn resolve_frontend(tdp: &mut TdpHandle, args: &DaemonArgs) -> TdpResult<(Addr, Addr)> {
    if let (Some(h), Some(p), Some(dp)) = (args.fe_host, args.fe_control, args.fe_data) {
        return Ok((Addr::new(HostId(h), p), Addr::new(HostId(h), dp)));
    }
    // Local space (put there by the RM, if it chose to).
    if let (Ok(c), Ok(d)) = (
        tdp.try_get(names::TOOL_FRONTEND_ADDR),
        tdp.try_get(names::TOOL_FRONTEND_ADDR2),
    ) {
        if let (Some(control), Some(data)) = (Addr::parse(&c), Addr::parse(&d)) {
            return Ok((control, data));
        }
    }
    // Global space: the RM published where the CASS lives; the
    // front-end published its ports there.
    let cass = Addr::parse(&tdp.get(names::CASS_ADDR)?)
        .ok_or_else(|| TdpError::Protocol("bad cass_addr".into()))?;
    tdp.connect_cass(cass)?;
    let control = Addr::parse(&tdp.get_global(names::TOOL_FRONTEND_ADDR)?)
        .ok_or_else(|| TdpError::Protocol("bad central tool_frontend_addr".into()))?;
    let data = Addr::parse(&tdp.get_global(names::TOOL_FRONTEND_ADDR2)?)
        .ok_or_else(|| TdpError::Protocol("bad central tool_frontend_addr2".into()))?;
    Ok((control, data))
}

/// Connect to a front-end address, falling back to the RM proxy when a
/// firewall blocks the direct path (§2.4).
fn connect_fe(tdp: &mut TdpHandle, world: &World, from: HostId, addr: Addr) -> TdpResult<Conn> {
    match world.net().connect(from, addr) {
        Ok(c) => Ok(c),
        Err(TdpError::BlockedByFirewall { .. }) => {
            let proxy = Addr::parse(&tdp.get(names::PROXY_ADDR)?)
                .ok_or_else(|| TdpError::Protocol("bad proxy_addr".into()))?;
            tdp_netsim::proxy::connect_via(world.net(), from, proxy, addr)
        }
        Err(e) => Err(e),
    }
}

/// Issue a process-management operation, honouring §2.3's single-point
/// control when `-S` was given: "When the RT needs to perform a process
/// management operation, it contacts the RM."
fn proc_op(
    tdp: &mut TdpHandle,
    strict: bool,
    pid: tdp_proto::Pid,
    op: tdp_proto::ProcRequest,
) -> TdpResult<()> {
    if strict {
        tdp.request_proc_op(op)
    } else {
        match op {
            tdp_proto::ProcRequest::Continue => tdp.continue_process(pid),
            tdp_proto::ProcRequest::Pause => tdp.pause_process(pid),
            tdp_proto::ProcRequest::Kill(sig) => tdp.kill_process(pid, sig),
        }
    }
}

/// Which symbols to instrument: the staged configuration file if
/// present (one symbol per line, `#` comments), else every symbol.
fn select_probes(world: &World, host: HostId, symbols: &[String]) -> Vec<String> {
    match world.os().fs().read_file(host, "paradyn.conf") {
        Ok(data) => {
            let wanted: Vec<String> = String::from_utf8_lossy(&data)
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect();
            symbols
                .iter()
                .filter(|s| wanted.iter().any(|w| w == *s))
                .cloned()
                .collect()
        }
        Err(_) => symbols.to_vec(),
    }
}

/// Build the paradynd executable image. Install it in a host's
/// filesystem (or stage it there) and launch it with Figure 5B-style
/// argv.
pub fn paradynd_image(world: World) -> ExecImage {
    ExecImage::from_fn(move |argv| {
        let world = world.clone();
        let args = parse_args(argv);
        fn_program(move |ctx| match daemon_main(&world, ctx, &args) {
            Ok(()) => 0,
            Err(e) => {
                ctx.write_stderr(format!("paradynd: {e}\n").as_bytes());
                1
            }
        })
    })
}

fn daemon_main(world: &World, ctx: &mut ProcCtx, args: &DaemonArgs) -> TdpResult<()> {
    let host = ctx.host();
    let name = format!("paradynd{}", ctx.pid());
    // In create mode the daemon is its own resource manager (it must
    // own the LASS); under a batch system the RM has already started it.
    let role = match args.mode {
        DaemonMode::Create { .. } => Role::ResourceManager,
        _ => Role::Tool,
    };
    let mut tdp = TdpHandle::init(world, host, args.ctx, &name, role)?;

    // Step 3 of Figure 6 / the three §2.2 schemes.
    let pid = match &args.mode {
        DaemonMode::Attach(pid) => *pid,
        DaemonMode::Create { exe, app_args } => {
            tdp.create_process(TdpCreate::new(exe.clone()).args(app_args.clone()).paused())?
        }
        DaemonMode::Tdp => {
            // Blocks until the starter puts the pid into the LASS.
            Pid::parse(&tdp.get(names::PID)?)
                .ok_or_else(|| TdpError::Protocol("bad pid attribute".into()))?
        }
    };
    tdp.attach(pid)?;

    // Initialization: parse the executable, choose and insert probes.
    let symbols = tdp.symbols(pid)?;
    for sym in select_probes(world, host, &symbols) {
        tdp.arm_probe(pid, &sym)?;
    }

    // Contact the front-end (control + data channels).
    let (control_addr, data_addr) = resolve_frontend(&mut tdp, args)?;
    let mut control = connect_fe(&mut tdp, world, host, control_addr)?;
    let data = connect_fe(&mut tdp, world, host, data_addr)?;
    control.send(
        format!(
            "{}\n",
            render_line(&ToolMsg::Ready {
                daemon: name.clone(),
                pid,
                symbols
            })
        )
        .as_bytes(),
    )?;

    // Tell the RM the tool is ready (create-mode handshake, §2.2).
    tdp.put(names::TOOL_READY, "1")?;

    // Wait for the front-end's run command — unless auto-running (the
    // non-master MPI ranks "immediately issue a run command", §4.3).
    let mut run_lines = LineBuf::default();
    if args.auto_run {
        proc_op(
            &mut tdp,
            args.strict_control,
            pid,
            tdp_proto::ProcRequest::Continue,
        )?;
    } else {
        'wait_run: loop {
            ctx.checkpoint();
            match control.recv_timeout(Duration::from_millis(20)) {
                Ok(chunk) => {
                    run_lines.push(&chunk);
                    while let Some(line) = run_lines.next_line() {
                        if parse_line(&line) == Some(ToolMsg::Run) {
                            proc_op(
                                &mut tdp,
                                args.strict_control,
                                pid,
                                tdp_proto::ProcRequest::Continue,
                            )?;
                            break 'wait_run;
                        }
                    }
                }
                Err(TdpError::Timeout) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    // Monitoring loop: sample probes, relay control commands, watch for
    // termination.
    let mut control_lines = LineBuf::default();
    let mut last_sent: std::collections::HashMap<String, (u64, u64, u64)> = Default::default();
    loop {
        ctx.sleep(Duration::from_millis(5));
        // Forward any front-end steering commands.
        while let Some(Ok(chunk)) = control.try_recv() {
            control_lines.push(&chunk);
        }
        while let Some(line) = control_lines.next_line() {
            match parse_line(&line) {
                Some(ToolMsg::Pause) => proc_op(
                    &mut tdp,
                    args.strict_control,
                    pid,
                    tdp_proto::ProcRequest::Pause,
                )?,
                Some(ToolMsg::Run) => proc_op(
                    &mut tdp,
                    args.strict_control,
                    pid,
                    tdp_proto::ProcRequest::Continue,
                )?,
                Some(ToolMsg::Kill) => proc_op(
                    &mut tdp,
                    args.strict_control,
                    pid,
                    tdp_proto::ProcRequest::Kill(9),
                )?,
                _ => {}
            }
        }
        // Stream changed samples.
        let snap = tdp.read_probes(pid)?;
        for (sym, &count) in &snap.counts {
            let time = snap.time.get(sym).copied().unwrap_or(0);
            let self_time = snap.self_time.get(sym).copied().unwrap_or(0);
            if last_sent.get(sym) != Some(&(count, time, self_time)) {
                last_sent.insert(sym.clone(), (count, time, self_time));
                let msg = ToolMsg::Sample {
                    daemon: name.clone(),
                    pid,
                    symbol: sym.clone(),
                    count,
                    time,
                    self_time,
                    total_cpu: snap.total_cpu,
                };
                data.send(format!("{}\n", render_line(&msg)).as_bytes())?;
            }
        }
        let status = tdp.process_status(pid)?;
        if status.is_terminal() {
            // Final flush: one last sample per instrumented symbol, the
            // summary trace file for off-line staging (§2), then DONE.
            let snap = tdp.read_probes(pid)?;
            let mut trace = String::new();
            for (sym, &count) in &snap.counts {
                let time = snap.time.get(sym).copied().unwrap_or(0);
                let self_time = snap.self_time.get(sym).copied().unwrap_or(0);
                trace.push_str(&format!(
                    "{sym} count={count} time={time} self={self_time}\n"
                ));
                let msg = ToolMsg::Sample {
                    daemon: name.clone(),
                    pid,
                    symbol: sym.clone(),
                    count,
                    time,
                    self_time,
                    total_cpu: snap.total_cpu,
                };
                data.send(format!("{}\n", render_line(&msg)).as_bytes())?;
            }
            world
                .os()
                .fs()
                .write_file(host, &format!("{name}.trace"), trace.as_bytes());
            tdp.publish_status(status)?;
            data.send(
                format!(
                    "{}\n",
                    render_line(&ToolMsg::Done {
                        daemon: name.clone(),
                        pid,
                        status
                    })
                )
                .as_bytes(),
            )?;
            tdp.exit()?;
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_figure_5b_argv() {
        // "-zunix -l3 -mpinguino.cs.wisc.edu -p2090 -P2091 -a%pid" with
        // the hostname in our simulated form.
        let a = parse_args(&sv(&["-zunix", "-l3", "-m0", "-p2090", "-P2091", "-a%pid"]));
        assert_eq!(
            a.mode,
            DaemonMode::Tdp,
            "%pid unsubstituted means TDP framework mode"
        );
        assert_eq!(a.fe_host, Some(0));
        assert_eq!(a.fe_control, Some(2090));
        assert_eq!(a.fe_data, Some(2091));
        assert_eq!(a.log_level, 3);
    }

    #[test]
    fn parses_attach_mode() {
        let a = parse_args(&sv(&["-a412"]));
        assert_eq!(a.mode, DaemonMode::Attach(Pid(412)));
    }

    #[test]
    fn parses_create_mode_with_app_args() {
        let a = parse_args(&sv(&["-r/bin/app", "x", "y"]));
        assert_eq!(
            a.mode,
            DaemonMode::Create {
                exe: "/bin/app".into(),
                app_args: sv(&["x", "y"])
            }
        );
    }

    #[test]
    fn parses_context_and_autorun() {
        let a = parse_args(&sv(&["-c7", "-A"]));
        assert_eq!(a.ctx, ContextId(7));
        assert!(a.auto_run);
    }

    #[test]
    fn no_args_means_tdp_mode() {
        assert_eq!(parse_args(&[]).mode, DaemonMode::Tdp);
    }
}
