//! `paradyn` — the tool front-end on the user's machine.
//!
//! Listens on two ports (control and data — the `-p2090 -P2091` pair of
//! Figure 5B), registers daemons as they report READY, lets the user
//! steer the application (run / pause / kill), aggregates metric
//! samples, and feeds the Performance Consultant.

use crate::msg::{parse_line, render_line, LineBuf, ToolMsg};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tdp_attrspace::AttrClient;
use tdp_netsim::{ConnTx, Network};
use tdp_proto::{names, ContextId};
use tdp_proto::{Addr, HostId, Pid, ProcStatus, TdpError, TdpResult};
use tdp_sync::{Condvar, Mutex};

/// A daemon registered with the front-end.
#[derive(Debug, Clone)]
pub struct DaemonInfo {
    pub daemon: String,
    pub pid: Pid,
    pub symbols: Vec<String>,
}

/// One metric sample received on the data channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    pub daemon: String,
    pub pid: Pid,
    pub symbol: String,
    pub count: u64,
    /// Inclusive CPU units.
    pub time: u64,
    /// Exclusive (self) CPU units.
    pub self_time: u64,
    pub total_cpu: u64,
}

#[derive(Default)]
struct FeState {
    daemons: Vec<DaemonInfo>,
    controls: HashMap<String, Arc<ConnTx>>,
    /// Latest sample per (daemon, symbol).
    samples: HashMap<(String, String), Sample>,
    done: HashMap<String, ProcStatus>,
}

/// The running front-end. Background threads accept daemon connections
/// and ingest samples; the struct's methods are the "user interface".
pub struct ParadynFrontend {
    host: HostId,
    control_addr: Addr,
    data_addr: Addr,
    state: Arc<(Mutex<FeState>, Condvar)>,
    /// Held open so the CASS context (and our published ports) survive.
    cass_session: Mutex<Option<AttrClient>>,
}

impl ParadynFrontend {
    /// Start the front-end on `host`, listening on `control_port` and
    /// `data_port` (0 = ephemeral).
    pub fn start(
        net: &Network,
        host: HostId,
        control_port: u16,
        data_port: u16,
    ) -> TdpResult<ParadynFrontend> {
        let control_listener = net.listen(host, control_port)?;
        let data_listener = net.listen(host, data_port)?;
        let control_addr = control_listener.local_addr();
        let data_addr = data_listener.local_addr();
        let state: Arc<(Mutex<FeState>, Condvar)> = Arc::new(Default::default());

        let st = state.clone();
        thread::Builder::new()
            .name("paradyn-fe-control".into())
            .spawn(move || {
                while let Ok(conn) = control_listener.accept() {
                    let st = st.clone();
                    thread::Builder::new()
                        .name("paradyn-fe-control-session".into())
                        .spawn(move || {
                            let (tx, mut rx) = conn.split();
                            let tx = Arc::new(tx);
                            let mut lines = LineBuf::default();
                            while let Ok(chunk) = rx.recv() {
                                lines.push(&chunk);
                                while let Some(line) = lines.next_line() {
                                    if let Some(ToolMsg::Ready {
                                        daemon,
                                        pid,
                                        symbols,
                                    }) = parse_line(&line)
                                    {
                                        let (lock, cv) = &*st;
                                        let mut s = lock.lock();
                                        s.controls.insert(daemon.clone(), tx.clone());
                                        s.daemons.push(DaemonInfo {
                                            daemon,
                                            pid,
                                            symbols,
                                        });
                                        drop(s);
                                        cv.notify_all();
                                    }
                                }
                            }
                        })
                        .expect("spawn control session");
                }
            })
            .map_err(|e| TdpError::Substrate(format!("spawn fe control: {e}")))?;

        let st = state.clone();
        thread::Builder::new()
            .name("paradyn-fe-data".into())
            .spawn(move || {
                while let Ok(conn) = data_listener.accept() {
                    let st = st.clone();
                    thread::Builder::new()
                        .name("paradyn-fe-data-session".into())
                        .spawn(move || {
                            let (_tx, mut rx) = conn.split();
                            let mut lines = LineBuf::default();
                            while let Ok(chunk) = rx.recv() {
                                lines.push(&chunk);
                                while let Some(line) = lines.next_line() {
                                    match parse_line(&line) {
                                        Some(ToolMsg::Sample {
                                            daemon,
                                            pid,
                                            symbol,
                                            count,
                                            time,
                                            self_time,
                                            total_cpu,
                                        }) => {
                                            let (lock, cv) = &*st;
                                            lock.lock().samples.insert(
                                                (daemon.clone(), symbol.clone()),
                                                Sample {
                                                    daemon,
                                                    pid,
                                                    symbol,
                                                    count,
                                                    time,
                                                    self_time,
                                                    total_cpu,
                                                },
                                            );
                                            cv.notify_all();
                                        }
                                        Some(ToolMsg::Done { daemon, status, .. }) => {
                                            let (lock, cv) = &*st;
                                            lock.lock().done.insert(daemon, status);
                                            cv.notify_all();
                                        }
                                        _ => {}
                                    }
                                }
                            }
                        })
                        .expect("spawn data session");
                }
            })
            .map_err(|e| TdpError::Substrate(format!("spawn fe data: {e}")))?;

        Ok(ParadynFrontend {
            host,
            control_addr,
            data_addr,
            state,
            cass_session: Mutex::new(None),
        })
    }

    /// Host the front-end runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Control-channel address (the `-p` port).
    pub fn control_addr(&self) -> Addr {
        self.control_addr
    }

    /// Data-channel address (the `-P` port).
    pub fn data_addr(&self) -> Addr {
        self.data_addr
    }

    /// Publish the two listener ports into the **Central Attribute
    /// Space** — the "complete TDP framework" of §4.3: "port arguments
    /// should be published by Paradyn front-end and disseminated to
    /// remote sites as attribute values". Daemons whose argv carries no
    /// `-m/-p/-P` resolve the front-end through the CASS instead.
    ///
    /// The CASS is started on this front-end's host if not yet running.
    pub fn advertise_via_cass(&self, world: &tdp_core::World) -> TdpResult<()> {
        let cass = world.ensure_cass(self.host)?;
        let mut client = world.attr_connect(self.host, cass)?;
        client.join(ContextId::DEFAULT)?;
        client.put(
            ContextId::DEFAULT,
            names::TOOL_FRONTEND_ADDR,
            &self.control_addr.to_attr_value(),
        )?;
        client.put(
            ContextId::DEFAULT,
            names::TOOL_FRONTEND_ADDR2,
            &self.data_addr.to_attr_value(),
        )?;
        *self.cass_session.lock() = Some(client);
        Ok(())
    }

    /// Block until `n` daemons have reported READY.
    pub fn wait_for_daemons(&self, n: usize, timeout: Duration) -> TdpResult<Vec<DaemonInfo>> {
        let deadline = Instant::now() + timeout;
        let (lock, cv) = &*self.state;
        let mut s = lock.lock();
        while s.daemons.len() < n {
            if cv.wait_until(&mut s, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
        Ok(s.daemons.clone())
    }

    /// Daemons currently registered.
    pub fn daemons(&self) -> Vec<DaemonInfo> {
        self.state.0.lock().daemons.clone()
    }

    fn send_all(&self, msg: &ToolMsg) -> TdpResult<usize> {
        let line = format!("{}\n", render_line(msg));
        // Snapshot the control channels and release the state lock
        // before writing: a daemon exercising netsim latency must not
        // block sample ingestion or `wait_done` wakeups.
        let txs: Vec<_> = {
            let s = self.state.0.lock();
            s.controls.values().cloned().collect()
        };
        let mut sent = 0;
        for tx in &txs {
            if tx.send(line.as_bytes()).is_ok() {
                sent += 1;
            }
        }
        Ok(sent)
    }

    /// The user's *run* command: start every registered application.
    pub fn run_all(&self) -> TdpResult<usize> {
        self.send_all(&ToolMsg::Run)
    }

    /// Pause every application.
    pub fn pause_all(&self) -> TdpResult<usize> {
        self.send_all(&ToolMsg::Pause)
    }

    /// Kill every application.
    pub fn kill_all(&self) -> TdpResult<usize> {
        self.send_all(&ToolMsg::Kill)
    }

    /// Send a command to one daemon.
    pub fn send_to(&self, daemon: &str, msg: &ToolMsg) -> TdpResult<()> {
        let line = format!("{}\n", render_line(msg));
        let tx = self
            .state
            .0
            .lock()
            .controls
            .get(daemon)
            .cloned()
            .ok_or_else(|| TdpError::Substrate(format!("unknown daemon {daemon}")))?;
        tx.send(line.as_bytes())
    }

    /// Latest samples, one per (daemon, symbol).
    pub fn samples(&self) -> Vec<Sample> {
        let mut v: Vec<Sample> = self.state.0.lock().samples.values().cloned().collect();
        v.sort_by(|a, b| (&a.daemon, &a.symbol).cmp(&(&b.daemon, &b.symbol)));
        v
    }

    /// Wait until `n` daemons reported DONE; returns daemon → status.
    pub fn wait_done(&self, n: usize, timeout: Duration) -> TdpResult<HashMap<String, ProcStatus>> {
        let deadline = Instant::now() + timeout;
        let (lock, cv) = &*self.state;
        let mut s = lock.lock();
        while s.done.len() < n {
            if cv.wait_until(&mut s, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
        Ok(s.done.clone())
    }
}
