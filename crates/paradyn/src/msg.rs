//! The paradyn↔paradynd wire protocol: newline-delimited text messages
//! with `key=value` fields, as a 2003-era tool would speak.

use tdp_proto::{Pid, ProcStatus};

/// Messages on the control and data channels.
#[derive(Debug, Clone, PartialEq)]
pub enum ToolMsg {
    /// daemon → FE (control): attached and initialized; the application
    /// is stopped at (or before) `main`.
    Ready {
        daemon: String,
        pid: Pid,
        symbols: Vec<String>,
    },
    /// FE → daemon (control): start/resume the application.
    Run,
    /// FE → daemon (control): pause the application.
    Pause,
    /// FE → daemon (control): kill the application.
    Kill,
    /// daemon → FE (data): one metric sample for one symbol
    /// (`time` inclusive, `self_time` exclusive CPU units).
    Sample {
        daemon: String,
        pid: Pid,
        symbol: String,
        count: u64,
        time: u64,
        self_time: u64,
        total_cpu: u64,
    },
    /// daemon → FE (data): the application terminated.
    Done {
        daemon: String,
        pid: Pid,
        status: ProcStatus,
    },
}

/// Render as one line (no trailing newline).
pub fn render_line(msg: &ToolMsg) -> String {
    match msg {
        ToolMsg::Ready { daemon, pid, symbols } => {
            format!("READY daemon={daemon} pid={pid} symbols={}", symbols.join(","))
        }
        ToolMsg::Run => "RUN".to_string(),
        ToolMsg::Pause => "PAUSE".to_string(),
        ToolMsg::Kill => "KILL".to_string(),
        ToolMsg::Sample { daemon, pid, symbol, count, time, self_time, total_cpu } => format!(
            "SAMPLE daemon={daemon} pid={pid} symbol={symbol} count={count} time={time} self={self_time} total={total_cpu}"
        ),
        ToolMsg::Done { daemon, pid, status } => {
            format!("DONE daemon={daemon} pid={pid} status={}", status.to_attr_value())
        }
    }
}

fn field<'a>(parts: &'a [&str], key: &str) -> Option<&'a str> {
    parts
        .iter()
        .find_map(|p| p.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

/// Parse one line. `None` for malformed input (a robust daemon skips
/// junk rather than dying).
pub fn parse_line(line: &str) -> Option<ToolMsg> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    match parts.first().copied()? {
        "READY" => Some(ToolMsg::Ready {
            daemon: field(&parts, "daemon")?.to_string(),
            pid: Pid::parse(field(&parts, "pid")?)?,
            symbols: {
                let s = field(&parts, "symbols").unwrap_or("");
                if s.is_empty() {
                    Vec::new()
                } else {
                    s.split(',').map(str::to_string).collect()
                }
            },
        }),
        "RUN" => Some(ToolMsg::Run),
        "PAUSE" => Some(ToolMsg::Pause),
        "KILL" => Some(ToolMsg::Kill),
        "SAMPLE" => Some(ToolMsg::Sample {
            daemon: field(&parts, "daemon")?.to_string(),
            pid: Pid::parse(field(&parts, "pid")?)?,
            symbol: field(&parts, "symbol")?.to_string(),
            count: field(&parts, "count")?.parse().ok()?,
            time: field(&parts, "time")?.parse().ok()?,
            self_time: field(&parts, "self").unwrap_or("0").parse().ok()?,
            total_cpu: field(&parts, "total")?.parse().ok()?,
        }),
        "DONE" => Some(ToolMsg::Done {
            daemon: field(&parts, "daemon")?.to_string(),
            pid: Pid::parse(field(&parts, "pid")?)?,
            status: ProcStatus::parse(field(&parts, "status")?)?,
        }),
        _ => None,
    }
}

/// Incremental line splitter over a byte stream.
#[derive(Default)]
pub struct LineBuf {
    buf: Vec<u8>,
}

impl LineBuf {
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Take the next complete line, if any.
    pub fn next_line(&mut self) -> Option<String> {
        let pos = self.buf.iter().position(|&b| b == b'\n')?;
        let line: Vec<u8> = self.buf.drain(..=pos).collect();
        Some(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_messages() {
        let msgs = vec![
            ToolMsg::Ready {
                daemon: "paradynd7".into(),
                pid: Pid(7),
                symbols: vec!["main".into(), "work".into()],
            },
            ToolMsg::Ready {
                daemon: "d".into(),
                pid: Pid(1),
                symbols: Vec::new(),
            },
            ToolMsg::Run,
            ToolMsg::Pause,
            ToolMsg::Kill,
            ToolMsg::Sample {
                daemon: "d".into(),
                pid: Pid(9),
                symbol: "compute".into(),
                count: 10,
                time: 500,
                self_time: 450,
                total_cpu: 700,
            },
            ToolMsg::Done {
                daemon: "d".into(),
                pid: Pid(9),
                status: ProcStatus::Exited(0),
            },
        ];
        for m in msgs {
            assert_eq!(parse_line(&render_line(&m)), Some(m));
        }
    }

    #[test]
    fn junk_is_none() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("HELLO world"), None);
        assert_eq!(parse_line("SAMPLE daemon=d"), None);
        assert_eq!(parse_line("READY pid=x daemon=d symbols="), None);
    }

    #[test]
    fn linebuf_reassembles() {
        let mut lb = LineBuf::default();
        lb.push(b"RU");
        assert_eq!(lb.next_line(), None);
        lb.push(b"N\nPAUSE\nKI");
        assert_eq!(lb.next_line(), Some("RUN".into()));
        assert_eq!(lb.next_line(), Some("PAUSE".into()));
        assert_eq!(lb.next_line(), None);
        lb.push(b"LL\n");
        assert_eq!(lb.next_line(), Some("KILL".into()));
    }
}
