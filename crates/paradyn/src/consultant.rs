//! The Performance Consultant — Paradyn's automated bottleneck search
//! (§4.2: "the ability to automatically search for performance
//! bottlenecks"), in miniature.
//!
//! The real Consultant refines hypotheses down a resource hierarchy;
//! ours searches the aggregated sample table for the symbol with the
//! largest **exclusive (self) CPU** share and classifies the
//! application:
//!
//! * **CpuBound** — one symbol holds more than the threshold share of
//!   measured CPU in its own frames;
//! * **SyncBound** — no symbol dominates the CPU, but one symbol is
//!   called very frequently with near-zero self CPU per call — the
//!   shape of ranks spinning in communication/waiting;
//! * **Balanced** — neither pattern.

use crate::frontend::Sample;
use std::collections::HashMap;

/// Search verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Hypothesis {
    CpuBound,
    SyncBound,
    Balanced,
}

/// The dominant symbol found by the search.
#[derive(Debug, Clone, PartialEq)]
pub struct Bottleneck {
    pub symbol: String,
    /// Share of total measured CPU in the symbol's own frames (0..=1).
    pub fraction: f64,
    pub hypothesis: Hypothesis,
    /// Total calls across daemons.
    pub calls: u64,
    /// Exclusive CPU units across daemons.
    pub cpu: u64,
}

/// Configuration of the search.
#[derive(Debug, Clone, Copy)]
pub struct PerformanceConsultant {
    /// Minimum self-CPU share to declare a CPU bottleneck (default 0.5,
    /// like Paradyn's default hypothesis thresholds).
    pub threshold: f64,
    /// Calls-per-CPU-unit ratio above which a hot-called, CPU-light
    /// symbol is reported as synchronization waiting.
    pub sync_calls_per_cpu: f64,
}

impl Default for PerformanceConsultant {
    fn default() -> Self {
        PerformanceConsultant {
            threshold: 0.5,
            sync_calls_per_cpu: 10.0,
        }
    }
}

impl PerformanceConsultant {
    /// Run the search over the front-end's aggregated samples.
    pub fn search(&self, samples: &[Sample]) -> Option<Bottleneck> {
        if samples.is_empty() {
            return None;
        }
        // Aggregate across daemons: sym -> (calls, self_cpu).
        let mut per_symbol: HashMap<&str, (u64, u64)> = HashMap::new();
        for s in samples {
            let e = per_symbol.entry(&s.symbol).or_insert((0, 0));
            e.0 += s.count;
            e.1 += s.self_time;
        }
        // Total measured CPU: each daemon's final total, summed.
        let mut per_daemon_total: HashMap<&str, u64> = HashMap::new();
        for s in samples {
            let e = per_daemon_total.entry(&s.daemon).or_insert(0);
            *e = (*e).max(s.total_cpu);
        }
        let measured_total: u64 = per_daemon_total.values().sum::<u64>().max(1);

        // Largest self-CPU holder (ties: name order, deterministic).
        let mut by_cpu: Vec<(&str, u64, u64)> = per_symbol
            .iter()
            .map(|(sym, &(calls, cpu))| (*sym, calls, cpu))
            .collect();
        by_cpu.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        let (symbol, calls, cpu) = by_cpu.first().copied()?;
        let fraction = cpu as f64 / measured_total as f64;
        if fraction >= self.threshold {
            return Some(Bottleneck {
                symbol: symbol.to_string(),
                fraction,
                hypothesis: Hypothesis::CpuBound,
                calls,
                cpu,
            });
        }

        // No CPU dominator: look for the spin-wait shape — the most
        // *called* symbol, if its calls dwarf its self CPU.
        let mut by_calls: Vec<(&str, u64, u64)> = per_symbol
            .iter()
            .map(|(sym, &(calls, cpu))| (*sym, calls, cpu))
            .collect();
        by_calls.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        if let Some(&(sync_sym, sync_calls, sync_cpu)) = by_calls.first() {
            if sync_calls > 0
                && (sync_calls as f64) >= self.sync_calls_per_cpu * (sync_cpu.max(1) as f64)
            {
                return Some(Bottleneck {
                    symbol: sync_sym.to_string(),
                    fraction: sync_cpu as f64 / measured_total as f64,
                    hypothesis: Hypothesis::SyncBound,
                    calls: sync_calls,
                    cpu: sync_cpu,
                });
            }
        }

        Some(Bottleneck {
            symbol: symbol.to_string(),
            fraction,
            hypothesis: Hypothesis::Balanced,
            calls,
            cpu,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_proto::Pid;

    fn sample(daemon: &str, sym: &str, count: u64, self_time: u64, total: u64) -> Sample {
        Sample {
            daemon: daemon.into(),
            pid: Pid(1),
            symbol: sym.into(),
            count,
            time: self_time, // inclusive ≥ self; equal is fine for tests
            self_time,
            total_cpu: total,
        }
    }

    #[test]
    fn finds_cpu_bound_symbol() {
        let samples = vec![
            sample("d1", "main", 1, 0, 1000),
            sample("d1", "compute", 10, 900, 1000),
            sample("d1", "exchange", 10, 50, 1000),
        ];
        let b = PerformanceConsultant::default().search(&samples).unwrap();
        assert_eq!(b.symbol, "compute");
        assert!(b.fraction > 0.8);
        assert_eq!(b.hypothesis, Hypothesis::CpuBound);
    }

    #[test]
    fn aggregates_across_daemons() {
        let samples = vec![
            sample("d1", "compute", 5, 450, 500),
            sample("d2", "compute", 5, 450, 500),
            sample("d1", "io", 5, 30, 500),
            sample("d2", "io", 5, 30, 500),
        ];
        let b = PerformanceConsultant::default().search(&samples).unwrap();
        assert_eq!(b.symbol, "compute");
        assert_eq!(b.cpu, 900);
        assert_eq!(b.calls, 10);
    }

    #[test]
    fn root_symbol_with_no_self_time_never_wins() {
        // "main" wraps everything (inclusive ≈ 100%) but owns no work.
        let samples = vec![
            Sample {
                daemon: "d1".into(),
                pid: Pid(1),
                symbol: "main".into(),
                count: 1,
                time: 1000,
                self_time: 5,
                total_cpu: 1000,
            },
            sample("d1", "phase_a", 3, 600, 1000),
            sample("d1", "phase_b", 3, 395, 1000),
        ];
        let b = PerformanceConsultant::default().search(&samples).unwrap();
        assert_eq!(b.symbol, "phase_a");
        assert_eq!(b.hypothesis, Hypothesis::CpuBound);
    }

    #[test]
    fn sync_bound_spin_wait_shape() {
        // Thousands of calls burning nothing: waiting in communication.
        let samples = vec![
            sample("d1", "mpi_recv_wait", 5000, 10, 1000),
            sample("d1", "compute", 5, 300, 1000),
        ];
        let b = PerformanceConsultant::default().search(&samples).unwrap();
        assert_eq!(b.symbol, "mpi_recv_wait");
        assert_eq!(b.hypothesis, Hypothesis::SyncBound);
    }

    #[test]
    fn balanced_when_nothing_dominates() {
        let samples = vec![
            sample("d1", "a", 2, 300, 1000),
            sample("d1", "b", 2, 300, 1000),
            sample("d1", "c", 2, 300, 1000),
        ];
        let b = PerformanceConsultant::default().search(&samples).unwrap();
        assert_eq!(b.hypothesis, Hypothesis::Balanced);
    }

    #[test]
    fn empty_samples_no_verdict() {
        assert_eq!(PerformanceConsultant::default().search(&[]), None);
    }

    #[test]
    fn deterministic_tie_break_by_name() {
        let samples = vec![
            sample("d1", "zeta", 1, 600, 1200),
            sample("d1", "alpha", 1, 600, 1200),
        ];
        let b = PerformanceConsultant::default().search(&samples).unwrap();
        assert_eq!(b.symbol, "alpha");
    }
}
