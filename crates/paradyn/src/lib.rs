//! # tdp-paradyn — the run-time tool substrate
//!
//! A Paradyn-shaped profiling tool (§4.2 of the paper): a **front-end**
//! (`paradyn`) on the user's machine and per-host **daemons**
//! (`paradynd`) that attach to application processes, parse their
//! symbol tables, insert dynamic instrumentation, and stream metric
//! samples back to the front-end — which aggregates them and runs a
//! Performance-Consultant-style bottleneck search.
//!
//! Faithful to the paper's structure:
//!
//! * the front-end publishes **two listener ports** (the `-p2090
//!   -P2091` of Figure 5B): control and data;
//! * `paradynd` is an executable image launched *by the resource
//!   manager* (`tdp_create_process`) whose argv follows Figure 5B
//!   (`-zunix -l3 -m<host> -p<port> -P<port> -a%pid`);
//! * when its argv carries no usable process reference (`-a%pid`
//!   unsubstituted), paradynd "assumes it is working under a TDP
//!   framework" (§4.3 Step 2) and obtains the pid with a blocking
//!   `tdp_get("pid")`, attaches, initializes, and continues the
//!   application — exactly the Figure 6 sequence;
//! * in **create mode** (standalone use, no batch system) paradynd
//!   launches the application itself; in **attach mode** it attaches to
//!   a running pid from its argv.

pub mod consultant;
pub mod daemon;
pub mod frontend;
pub mod msg;

pub use consultant::{Bottleneck, Hypothesis, PerformanceConsultant};
pub use daemon::{paradynd_image, DaemonMode, PARADYND_EXE};
pub use frontend::{DaemonInfo, ParadynFrontend, Sample};
pub use msg::{parse_line, render_line, ToolMsg};
