//! End-to-end tests of the Paradyn-like tool: create mode, attach mode,
//! TDP framework mode, steering, config files and the Consultant.

use std::sync::Arc;
use std::time::Duration;
use tdp_core::{Role, TdpCreate, TdpHandle, World};
use tdp_paradyn::{paradynd_image, Hypothesis, ParadynFrontend, PerformanceConsultant};
use tdp_proto::{names, ContextId, HostId, ProcStatus};
use tdp_simos::{fn_program, ExecImage, Sink};

const T: Duration = Duration::from_secs(10);
const CTX: ContextId = ContextId::DEFAULT;

/// A CPU-skewed application: `hot_loop` burns 90% of the cycles.
fn app_image() -> ExecImage {
    ExecImage::new(
        ["main", "hot_loop", "io_wait"],
        Arc::new(|_| {
            fn_program(|ctx| {
                ctx.call("main", |ctx| {
                    for _ in 0..20 {
                        ctx.call("hot_loop", |ctx| ctx.compute(90));
                        ctx.call("io_wait", |ctx| ctx.compute(10));
                    }
                });
                0
            })
        }),
    )
}

struct Setup {
    world: World,
    exec_host: HostId,
    fe: ParadynFrontend,
}

/// World with a front-end host and one execution host; paradynd and the
/// app installed on the execution host.
fn setup() -> Setup {
    let world = World::new();
    let fe_host = world.add_host();
    let exec_host = world.add_host();
    world
        .os()
        .fs()
        .install_exec(exec_host, "paradynd", paradynd_image(world.clone()));
    world
        .os()
        .fs()
        .install_exec(exec_host, "/bin/app", app_image());
    let fe = ParadynFrontend::start(world.net(), fe_host, 2090, 2091).unwrap();
    Setup {
        world,
        exec_host,
        fe,
    }
}

/// argv addressing the front-end the Figure-5B way.
fn fe_args(fe: &ParadynFrontend, extra: &[&str]) -> Vec<String> {
    let mut v = vec![
        "-zunix".to_string(),
        "-l3".to_string(),
        format!("-m{}", fe.host().0),
        format!("-p{}", fe.control_addr().port.0),
        format!("-P{}", fe.data_addr().port.0),
    ];
    v.extend(extra.iter().map(|s| s.to_string()));
    v
}

#[test]
fn create_mode_end_to_end() {
    // Standalone Paradyn: paradynd launches the app itself, FE steers.
    let s = setup();
    let mut launcher = TdpHandle::init(
        &s.world,
        s.exec_host,
        CTX,
        "launcher",
        Role::ResourceManager,
    )
    .unwrap();
    let args = fe_args(&s.fe, &["-r/bin/app"]);
    let dpid = launcher
        .create_process(TdpCreate::new("paradynd").args(args).stderr(Sink::Capture))
        .unwrap();

    let daemons = s.fe.wait_for_daemons(1, T).unwrap();
    assert_eq!(daemons.len(), 1);
    assert_eq!(daemons[0].symbols, vec!["main", "hot_loop", "io_wait"]);
    // App is paused until the user hits run.
    let app_pid = daemons[0].pid;
    assert_eq!(s.world.os().status(app_pid).unwrap(), ProcStatus::Created);
    s.fe.run_all().unwrap();
    let done = s.fe.wait_done(1, T).unwrap();
    assert_eq!(done.values().next().unwrap(), &ProcStatus::Exited(0));
    // Daemon exits cleanly too.
    assert_eq!(
        s.world.os().wait_terminal(dpid, T).unwrap(),
        ProcStatus::Exited(0)
    );

    // Metrics arrived and identify the bottleneck.
    let samples = s.fe.samples();
    assert!(samples
        .iter()
        .any(|x| x.symbol == "hot_loop" && x.count == 20));
    let b = PerformanceConsultant::default().search(&samples).unwrap();
    assert_eq!(b.symbol, "hot_loop");
    assert_eq!(b.hypothesis, Hypothesis::CpuBound);
}

#[test]
fn attach_mode_on_running_process() {
    let s = setup();
    let mut rm = TdpHandle::init(&s.world, s.exec_host, CTX, "rm", Role::ResourceManager).unwrap();
    // A long-running app, already started.
    s.world.os().fs().install_exec(
        s.exec_host,
        "/bin/server",
        ExecImage::new(
            ["main", "serve"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for _ in 0..2000 {
                            ctx.call("serve", |ctx| {
                                ctx.compute(1);
                                ctx.sleep(Duration::from_millis(1));
                            });
                        }
                    });
                    0
                })
            }),
        ),
    );
    let app_pid = rm.create_process(TdpCreate::new("/bin/server")).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    // Launch paradynd in attach mode (-a<pid>).
    let args = fe_args(&s.fe, &[&format!("-a{app_pid}")]);
    rm.create_process(TdpCreate::new("paradynd").args(args))
        .unwrap();
    let daemons = s.fe.wait_for_daemons(1, T).unwrap();
    assert_eq!(daemons[0].pid, app_pid);
    s.fe.run_all().unwrap();
    // Wait for some samples to flow.
    let deadline = std::time::Instant::now() + T;
    loop {
        let samples = s.fe.samples();
        if samples.iter().any(|x| x.symbol == "serve" && x.count > 0) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no serve samples arrived"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Cleanup: kill the app through the tool.
    s.fe.kill_all().unwrap();
    let done = s.fe.wait_done(1, T).unwrap();
    assert_eq!(done.values().next().unwrap(), &ProcStatus::Killed(9));
}

#[test]
fn tdp_mode_gets_pid_from_attribute_space() {
    // The Figure 6 flow with a hand-rolled starter: create app paused,
    // create paradynd with -a%pid, put pid, watch it attach + continue.
    let s = setup();
    let mut starter =
        TdpHandle::init(&s.world, s.exec_host, CTX, "starter", Role::ResourceManager).unwrap();
    let app_pid = starter
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    let args = fe_args(&s.fe, &["-a%pid"]);
    starter
        .create_process(TdpCreate::new("paradynd").args(args))
        .unwrap();
    // paradynd is now blocked in tdp_get("pid").
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        s.fe.daemons().len(),
        0,
        "daemon cannot be ready before the pid is put"
    );
    starter.put(names::PID, &app_pid.to_string()).unwrap();
    let daemons = s.fe.wait_for_daemons(1, T).unwrap();
    assert_eq!(daemons[0].pid, app_pid);
    // TOOL_READY handshake happened.
    assert_eq!(starter.get(names::TOOL_READY).unwrap(), "1");
    s.fe.run_all().unwrap();
    let done = s.fe.wait_done(1, T).unwrap();
    assert_eq!(done.values().next().unwrap(), &ProcStatus::Exited(0));

    // The trace reproduces the Figure 6 ordering.
    let trace = s.world.trace();
    trace.assert_order(
        (Some("starter"), "tdp_init"),
        (Some("starter"), "tdp_create_process(/bin/app, paused)"),
    );
    trace.assert_order(
        (Some("starter"), "tdp_create_process(/bin/app, paused)"),
        (Some("starter"), "tdp_put(pid)"),
    );
    trace.assert_order((None, "tdp_get(pid)"), (None, "tdp_attach"));
    trace.assert_order((None, "tdp_attach"), (None, "tdp_continue_process"));
}

#[test]
fn pause_and_resume_via_frontend() {
    let s = setup();
    let mut launcher = TdpHandle::init(
        &s.world,
        s.exec_host,
        CTX,
        "launcher",
        Role::ResourceManager,
    )
    .unwrap();
    s.world.os().fs().install_exec(
        s.exec_host,
        "/bin/slow",
        ExecImage::new(
            ["main", "tick"],
            Arc::new(|_| {
                fn_program(|ctx| {
                    ctx.call("main", |ctx| {
                        for _ in 0..300 {
                            ctx.call("tick", |ctx| ctx.sleep(Duration::from_millis(2)));
                        }
                    });
                    0
                })
            }),
        ),
    );
    let args = fe_args(&s.fe, &["-r/bin/slow"]);
    launcher
        .create_process(TdpCreate::new("paradynd").args(args))
        .unwrap();
    let daemons = s.fe.wait_for_daemons(1, T).unwrap();
    let app_pid = daemons[0].pid;
    s.fe.run_all().unwrap();
    std::thread::sleep(Duration::from_millis(40));
    s.fe.pause_all().unwrap();
    // Wait for the pause to land (daemon polls its control channel).
    let deadline = std::time::Instant::now() + T;
    while s.world.os().status(app_pid).unwrap() != ProcStatus::Stopped {
        assert!(std::time::Instant::now() < deadline, "pause never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    s.fe.run_all().unwrap();
    let done = s.fe.wait_done(1, T).unwrap();
    assert_eq!(done.values().next().unwrap(), &ProcStatus::Exited(0));
}

#[test]
fn config_file_restricts_instrumentation() {
    let s = setup();
    // Stage a config that only instruments io_wait.
    s.world
        .os()
        .fs()
        .write_file(s.exec_host, "paradyn.conf", b"# probes\nio_wait\n");
    let mut launcher = TdpHandle::init(
        &s.world,
        s.exec_host,
        CTX,
        "launcher",
        Role::ResourceManager,
    )
    .unwrap();
    let args = fe_args(&s.fe, &["-r/bin/app"]);
    launcher
        .create_process(TdpCreate::new("paradynd").args(args))
        .unwrap();
    s.fe.wait_for_daemons(1, T).unwrap();
    s.fe.run_all().unwrap();
    s.fe.wait_done(1, T).unwrap();
    let samples = s.fe.samples();
    assert!(samples.iter().any(|x| x.symbol == "io_wait"));
    assert!(
        !samples.iter().any(|x| x.symbol == "hot_loop"),
        "hot_loop must not be instrumented: {samples:?}"
    );
}

#[test]
fn daemon_writes_trace_file_for_staging() {
    let s = setup();
    let mut launcher = TdpHandle::init(
        &s.world,
        s.exec_host,
        CTX,
        "launcher",
        Role::ResourceManager,
    )
    .unwrap();
    let args = fe_args(&s.fe, &["-r/bin/app"]);
    let dpid = launcher
        .create_process(TdpCreate::new("paradynd").args(args))
        .unwrap();
    s.fe.wait_for_daemons(1, T).unwrap();
    s.fe.run_all().unwrap();
    s.fe.wait_done(1, T).unwrap();
    s.world.os().wait_terminal(dpid, T).unwrap();
    let trace_path = format!("paradynd{dpid}.trace");
    let data = s
        .world
        .os()
        .fs()
        .read_file(s.exec_host, &trace_path)
        .unwrap();
    let text = String::from_utf8(data).unwrap();
    assert!(
        text.contains("hot_loop count=20"),
        "trace file content: {text}"
    );
    // And it can be staged back to the submit host (§2).
    launcher
        .stage_file(s.exec_host, &trace_path, s.fe.host(), "results/trace")
        .unwrap();
    assert!(s.world.os().fs().exists(s.fe.host(), "results/trace"));
}

#[test]
fn two_daemons_two_apps_isolated_contexts() {
    let s = setup();
    let mut rm1 = TdpHandle::init(
        &s.world,
        s.exec_host,
        ContextId(1),
        "rm1",
        Role::ResourceManager,
    )
    .unwrap();
    let mut rm2 = TdpHandle::init(
        &s.world,
        s.exec_host,
        ContextId(2),
        "rm2",
        Role::ResourceManager,
    )
    .unwrap();
    let app1 = rm1
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    let app2 = rm2
        .create_process(TdpCreate::new("/bin/app").paused())
        .unwrap();
    rm1.create_process(TdpCreate::new("paradynd").args(fe_args(&s.fe, &["-c1", "-a%pid"])))
        .unwrap();
    rm2.create_process(TdpCreate::new("paradynd").args(fe_args(&s.fe, &["-c2", "-a%pid"])))
        .unwrap();
    rm1.put(names::PID, &app1.to_string()).unwrap();
    rm2.put(names::PID, &app2.to_string()).unwrap();
    let daemons = s.fe.wait_for_daemons(2, T).unwrap();
    let pids: Vec<_> = daemons.iter().map(|d| d.pid).collect();
    assert!(pids.contains(&app1) && pids.contains(&app2));
    s.fe.run_all().unwrap();
    let done = s.fe.wait_done(2, T).unwrap();
    assert!(done.values().all(|st| *st == ProcStatus::Exited(0)));
}
