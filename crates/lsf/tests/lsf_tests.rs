//! Tests of the LSF-style scheduler, including every workspace tool
//! running under it — the other half of the m + n matrix.

use std::sync::Arc;
use std::time::Duration;
use tdp_core::World;
use tdp_lsf::{LsfCluster, LsfJobState, LsfRequest};
use tdp_paradyn::{paradynd_image, ParadynFrontend};
use tdp_proto::{HostId, ProcStatus};
use tdp_simos::{fn_program, ExecImage};
use tdp_tools::{tracey_image, vamp_image};

const T: Duration = Duration::from_secs(30);

fn app_image() -> ExecImage {
    ExecImage::new(
        ["main", "crunch"],
        Arc::new(|args| {
            let reps: u64 = args.last().and_then(|a| a.parse().ok()).unwrap_or(5);
            fn_program(move |ctx| {
                let mut stdin = Vec::new();
                while let Ok(Some(chunk)) = ctx.read_stdin() {
                    stdin.extend_from_slice(&chunk);
                }
                ctx.call("main", |ctx| {
                    for _ in 0..reps {
                        ctx.call("crunch", |ctx| ctx.compute(10));
                    }
                });
                ctx.write_stdout(b"crunched ");
                ctx.write_stdout(&stdin);
                0
            })
        }),
    )
}

struct Rig {
    world: World,
    master: HostId,
    exec: Vec<HostId>,
    cluster: LsfCluster,
    _sbds: Vec<tdp_lsf::sbatchd::Sbatchd>,
}

fn rig(n_hosts: usize, slots: u32) -> Rig {
    let world = World::new();
    let master = world.add_host();
    let exec: Vec<HostId> = (0..n_hosts).map(|_| world.add_host()).collect();
    let cluster = LsfCluster::start(&world, master).unwrap();
    let mut sbds = Vec::new();
    for h in &exec {
        world.os().fs().install_exec(*h, "/bin/app", app_image());
        sbds.push(cluster.add_host(*h, slots).unwrap());
    }
    // Wait for registrations.
    let deadline = std::time::Instant::now() + T;
    while cluster.bhosts().len() < n_hosts {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }
    Rig {
        world,
        master,
        exec,
        cluster,
        _sbds: sbds,
    }
}

#[test]
fn single_task_job_with_io() {
    let r = rig(1, 1);
    r.world.os().fs().write_file(r.master, "in.txt", b"numbers");
    let job = r
        .cluster
        .bsub(
            LsfRequest::new("/bin/app")
                .args(["3"])
                .input("in.txt")
                .output("out.txt"),
        )
        .unwrap();
    match r.cluster.wait_job(job, T).unwrap() {
        LsfJobState::Done(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    assert_eq!(
        r.world.os().fs().read_file(r.master, "out.txt").unwrap(),
        b"crunched numbers"
    );
}

#[test]
fn fifo_queueing_over_limited_slots() {
    let r = rig(1, 2);
    let jobs: Vec<_> = (0..5)
        .map(|_| {
            r.cluster
                .bsub(LsfRequest::new("/bin/app").args(["2"]))
                .unwrap()
        })
        .collect();
    for j in jobs {
        assert!(matches!(
            r.cluster.wait_job(j, T).unwrap(),
            LsfJobState::Done(_)
        ));
    }
    // All slots freed at the end.
    let deadline = std::time::Instant::now() + T;
    loop {
        let hosts = r.cluster.bhosts();
        if hosts.iter().all(|(_, _, used)| *used == 0) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "{hosts:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn multi_task_job_spreads_over_hosts() {
    let r = rig(3, 1);
    let job = r
        .cluster
        .bsub(LsfRequest::new("/bin/app").ntasks(3).output("res"))
        .unwrap();
    match r.cluster.wait_job(job, T).unwrap() {
        LsfJobState::Done(done) => {
            assert_eq!(done.len(), 3);
            assert!(done.values().all(|s| *s == ProcStatus::Exited(0)));
        }
        other => panic!("{other:?}"),
    }
    // Per-task outputs staged to the master: res, res.1, res.2.
    assert!(r.world.os().fs().exists(r.master, "res"));
    assert!(r.world.os().fs().exists(r.master, "res.1"));
    assert!(r.world.os().fs().exists(r.master, "res.2"));
}

#[test]
fn job_pends_until_host_registers() {
    let world = World::new();
    let master = world.add_host();
    let cluster = LsfCluster::start(&world, master).unwrap();
    let job = cluster.bsub(LsfRequest::new("/bin/app")).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(cluster.bjobs(job), Some(LsfJobState::Pending));
    // A host arrives; the queue drains.
    let exec = world.add_host();
    world.os().fs().install_exec(exec, "/bin/app", app_image());
    let _sbd = cluster.add_host(exec, 1).unwrap();
    assert!(matches!(
        cluster.wait_job(job, T).unwrap(),
        LsfJobState::Done(_)
    ));
}

#[test]
fn missing_executable_fails_job() {
    let r = rig(1, 1);
    let job = r.cluster.bsub(LsfRequest::new("/bin/ghost")).unwrap();
    match r.cluster.wait_job(job, T).unwrap() {
        LsfJobState::Failed(e) => assert!(e.contains("no such file"), "{e}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn lsf_runs_tracey() {
    let r = rig(1, 1);
    for h in &r.exec {
        r.world
            .os()
            .fs()
            .install_exec(*h, "tracey", tracey_image(r.world.clone()));
    }
    let job = r
        .cluster
        .bsub(
            LsfRequest::new("/bin/app")
                .args(["4"])
                .suspended()
                .tool("tracey", vec![]),
        )
        .unwrap();
    match r.cluster.wait_job(job, T).unwrap() {
        LsfJobState::Done(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
        other => panic!("{other:?}"),
    }
    // The coverage report was staged back to the master host inline.
    let reports: Vec<String> = r
        .world
        .os()
        .fs()
        .list(r.master, "tracey")
        .into_iter()
        .filter(|f| f.ends_with(".coverage"))
        .collect();
    assert_eq!(reports.len(), 1, "{reports:?}");
    let text =
        String::from_utf8(r.world.os().fs().read_file(r.master, &reports[0]).unwrap()).unwrap();
    assert!(text.contains("crunch 4"), "{text}");
}

#[test]
fn lsf_runs_vamp() {
    let r = rig(1, 1);
    for h in &r.exec {
        r.world
            .os()
            .fs()
            .install_exec(*h, "vamp", vamp_image(r.world.clone()));
    }
    let job = r
        .cluster
        .bsub(
            LsfRequest::new("/bin/app")
                .args(["6"])
                .suspended()
                .tool("vamp", vec!["-i2".into()]),
        )
        .unwrap();
    assert!(matches!(
        r.cluster.wait_job(job, T).unwrap(),
        LsfJobState::Done(_)
    ));
    let traces: Vec<String> = r
        .world
        .os()
        .fs()
        .list(r.master, "vamp")
        .into_iter()
        .filter(|f| f.ends_with(".vamp"))
        .collect();
    assert_eq!(traces.len(), 1, "{traces:?}");
}

#[test]
fn lsf_runs_paradynd() {
    // The headline pairing of the paper, under a scheduler the paper's
    // prototype never touched — pure m + n.
    let r = rig(1, 1);
    for h in &r.exec {
        r.world
            .os()
            .fs()
            .install_exec(*h, "paradynd", paradynd_image(r.world.clone()));
    }
    let fe = ParadynFrontend::start(r.world.net(), r.master, 2090, 2091).unwrap();
    let args = vec![
        format!("-m{}", r.master.0),
        format!("-p{}", fe.control_addr().port.0),
        format!("-P{}", fe.data_addr().port.0),
        "-a%pid".to_string(),
        "-A".to_string(), // no interactive run command in batch LSF use
    ];
    let job = r
        .cluster
        .bsub(
            LsfRequest::new("/bin/app")
                .args(["8"])
                .suspended()
                .tool("paradynd", args),
        )
        .unwrap();
    assert!(matches!(
        r.cluster.wait_job(job, T).unwrap(),
        LsfJobState::Done(_)
    ));
    fe.wait_done(1, T).unwrap();
    assert!(fe
        .samples()
        .iter()
        .any(|s| s.symbol == "crunch" && s.count == 8));
}

#[test]
fn lsf_multi_task_with_tools_per_task() {
    let r = rig(2, 1);
    for h in &r.exec {
        r.world
            .os()
            .fs()
            .install_exec(*h, "tracey", tracey_image(r.world.clone()));
    }
    let job = r
        .cluster
        .bsub(
            LsfRequest::new("/bin/app")
                .ntasks(2)
                .suspended()
                .tool("tracey", vec![]),
        )
        .unwrap();
    match r.cluster.wait_job(job, T).unwrap() {
        LsfJobState::Done(done) => assert_eq!(done.len(), 2),
        other => panic!("{other:?}"),
    }
    let reports: Vec<String> = r
        .world
        .os()
        .fs()
        .list(r.master, "tracey")
        .into_iter()
        .filter(|f| f.ends_with(".coverage"))
        .collect();
    assert_eq!(
        reports.len(),
        2,
        "one coverage report per task: {reports:?}"
    );
}

#[test]
fn bkill_terminates_running_job() {
    let r = rig(1, 1);
    // A long-running job (many crunch reps of sleepy work).
    r.world.os().fs().install_exec(
        r.exec[0],
        "/bin/slow",
        ExecImage::from_fn(|_| {
            fn_program(|ctx| {
                ctx.sleep(Duration::from_secs(60));
                0
            })
        }),
    );
    let job = r.cluster.bsub(LsfRequest::new("/bin/slow")).unwrap();
    // Wait until it is actually running.
    let deadline = std::time::Instant::now() + T;
    while r.cluster.bhosts().iter().all(|(_, _, used)| *used == 0) {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(30));
    r.cluster.bkill(job).unwrap();
    match r.cluster.wait_job(job, T).unwrap() {
        LsfJobState::Done(done) => assert_eq!(done[&0], ProcStatus::Killed(9)),
        other => panic!("{other:?}"),
    }
}

#[test]
fn bkill_of_pending_job_cancels_it() {
    // No hosts: everything pends; bkill cancels before dispatch.
    let world = World::new();
    let master = world.add_host();
    let cluster = LsfCluster::start(&world, master).unwrap();
    let job = cluster.bsub(LsfRequest::new("/bin/app")).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    cluster.bkill(job).unwrap();
    match cluster.wait_job(job, T).unwrap() {
        LsfJobState::Failed(e) => assert!(e.contains("bkill"), "{e}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn priorities_jump_the_queue() {
    // One slot; fill it, then queue a low- and a high-priority job.
    // Each job appends its tag to a start-order file the moment it
    // begins executing — the high-priority one must start first.
    let r = rig(1, 1);
    r.world.os().fs().install_exec(
        r.exec[0],
        "/bin/tagger",
        ExecImage::from_fn(|args| {
            let tag = args.first().cloned().unwrap_or_default();
            fn_program(move |ctx| {
                ctx.fs()
                    .append("/start_order", format!("{tag}\n").as_bytes());
                ctx.sleep(Duration::from_millis(30));
                0
            })
        }),
    );
    let blocker = r
        .cluster
        .bsub(LsfRequest::new("/bin/tagger").args(["blocker"]))
        .unwrap();
    // Give the blocker the slot before queueing the contenders.
    let deadline = std::time::Instant::now() + T;
    while !r.world.os().fs().exists(r.exec[0], "/start_order") {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(2));
    }
    let low = r
        .cluster
        .bsub(LsfRequest::new("/bin/tagger").args(["low"]).priority(0))
        .unwrap();
    let high = r
        .cluster
        .bsub(LsfRequest::new("/bin/tagger").args(["high"]).priority(10))
        .unwrap();
    for j in [blocker, low, high] {
        assert!(matches!(
            r.cluster.wait_job(j, T).unwrap(),
            LsfJobState::Done(_)
        ));
    }
    let order = String::from_utf8(
        r.world
            .os()
            .fs()
            .read_file(r.exec[0], "/start_order")
            .unwrap(),
    )
    .unwrap();
    assert_eq!(
        order.lines().collect::<Vec<_>>(),
        vec!["blocker", "high", "low"],
        "high priority must dispatch before low"
    );
}

#[test]
fn dead_sbatchd_host_does_not_wedge_the_cluster() {
    // Kill an execution host: its sbatchd connection drops and mbatchd
    // zeroes its slots; a surviving host still serves new jobs.
    let r = rig(2, 1);
    r.world.net().kill_host(r.exec[0]);
    std::thread::sleep(Duration::from_millis(50));
    // Submit a couple of jobs; they must all land on the survivor.
    for _ in 0..2 {
        let job = r
            .cluster
            .bsub(LsfRequest::new("/bin/app").args(["2"]))
            .unwrap();
        match r.cluster.wait_job(job, T).unwrap() {
            LsfJobState::Done(done) => assert_eq!(done[&0], ProcStatus::Exited(0)),
            other => panic!("{other:?}"),
        }
    }
    // The dead host advertises zero capacity.
    let hosts = r.cluster.bhosts();
    let dead = hosts
        .iter()
        .find(|(n, _, _)| n.contains(&format!("host{}", r.exec[0].0)));
    assert_eq!(dead.map(|(_, slots, _)| *slots), Some(0), "{hosts:?}");
}
