//! `mbatchd` — the master batch daemon: queue, FIFO dispatcher, result
//! collection — plus the user-facing [`LsfCluster`] API (`bsub`,
//! `bjobs`, `wait_job`).

use crate::messages::{Dispatch, MbdMsg, SbdMsg, ToolSpecWire};
use crate::sbatchd::{self, Sbatchd};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use tdp_core::World;
use tdp_netsim::ConnTx;
use tdp_proto::{Addr, HostId, JobId, ProcStatus, TdpError, TdpResult};
use tdp_sync::{Condvar, Mutex};

/// mbatchd's well-known port on the master host.
pub const MBD_PORT: u16 = 6878;

/// A tool daemon to run alongside every task of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsfToolSpec {
    pub cmd: String,
    pub args: Vec<String>,
}

/// A `bsub` request.
#[derive(Debug, Clone)]
pub struct LsfRequest {
    pub executable: String,
    pub args: Vec<String>,
    /// Number of tasks (slots) the job needs. Task index is prepended
    /// to argv, like our MPI rank convention.
    pub ntasks: u32,
    /// Input file on the master host, staged inline as stdin.
    pub input: Option<String>,
    /// Output file stem on the master host: task 0 writes `<stem>`,
    /// task i writes `<stem>.<i>`.
    pub output: Option<String>,
    /// Create tasks stopped at exec (so a tool can instrument first).
    pub suspend_at_exec: bool,
    pub tool: Option<LsfToolSpec>,
    /// Dispatch priority: higher goes first; FIFO within a priority.
    pub priority: i32,
}

impl LsfRequest {
    pub fn new(executable: impl Into<String>) -> LsfRequest {
        LsfRequest {
            executable: executable.into(),
            args: Vec::new(),
            ntasks: 1,
            input: None,
            output: None,
            suspend_at_exec: false,
            tool: None,
            priority: 0,
        }
    }

    pub fn args<S: Into<String>>(mut self, args: impl IntoIterator<Item = S>) -> Self {
        self.args = args.into_iter().map(Into::into).collect();
        self
    }

    pub fn ntasks(mut self, n: u32) -> Self {
        self.ntasks = n.max(1);
        self
    }

    pub fn input(mut self, f: impl Into<String>) -> Self {
        self.input = Some(f.into());
        self
    }

    pub fn output(mut self, f: impl Into<String>) -> Self {
        self.output = Some(f.into());
        self
    }

    pub fn suspended(mut self) -> Self {
        self.suspend_at_exec = true;
        self
    }

    pub fn tool(mut self, cmd: impl Into<String>, args: Vec<String>) -> Self {
        self.tool = Some(LsfToolSpec {
            cmd: cmd.into(),
            args,
        });
        self
    }

    pub fn priority(mut self, p: i32) -> Self {
        self.priority = p;
        self
    }
}

/// Queue state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum LsfJobState {
    Pending,
    Running,
    /// task → exit status.
    Done(HashMap<u32, ProcStatus>),
    Failed(String),
}

struct HostEntry {
    name: String,
    slots: u32,
    in_use: u32,
    tx: Arc<ConnTx>,
    /// Tasks dispatched to this host and not yet reported, so a dead
    /// sbatchd's work can be requeued instead of hanging its jobs.
    running: Vec<(JobId, u32)>,
}

struct JobRec {
    req: LsfRequest,
    done: HashMap<u32, ProcStatus>,
    dispatched: u32,
    state: LsfJobState,
}

struct PendingTask {
    job: JobId,
    task: u32,
    priority: i32,
    /// Submission order, for FIFO within a priority.
    seq: u64,
}

struct Mbd {
    world: World,
    master: HostId,
    hosts: Mutex<Vec<HostEntry>>,
    queue: Mutex<VecDeque<PendingTask>>,
    jobs: Mutex<HashMap<JobId, JobRec>>,
    cv: Condvar,
    next_job: AtomicU64,
}

/// A running LSF-style cluster.
#[derive(Clone)]
pub struct LsfCluster {
    inner: Arc<Mbd>,
    addr: Addr,
}

impl LsfCluster {
    /// Start mbatchd on the master host.
    pub fn start(world: &World, master: HostId) -> TdpResult<LsfCluster> {
        let listener = world.net().listen(master, MBD_PORT)?;
        let addr = listener.local_addr();
        let inner = Arc::new(Mbd {
            world: world.clone(),
            master,
            hosts: Mutex::new(Vec::new()),
            queue: Mutex::new(VecDeque::new()),
            jobs: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            next_job: AtomicU64::new(1),
        });
        let inner2 = inner.clone();
        thread::Builder::new()
            .name("lsf-mbatchd".into())
            .spawn(move || {
                while let Ok(conn) = listener.accept() {
                    let inner = inner2.clone();
                    thread::Builder::new()
                        .name("lsf-mbd-session".into())
                        .spawn(move || inner.serve_sbatchd(conn))
                        .expect("spawn mbd session");
                }
            })
            .map_err(|e| TdpError::Substrate(format!("spawn mbatchd: {e}")))?;
        Ok(LsfCluster { inner, addr })
    }

    /// mbatchd's address (for manual sbatchd registration).
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Start an sbatchd on `host` with `slots` slots (LSF's `bhosts`
    /// view grows by one).
    pub fn add_host(&self, host: HostId, slots: u32) -> TdpResult<Sbatchd> {
        sbatchd::start(&self.inner.world, host, slots, self.addr)
    }

    /// The registered hosts: (name, slots, in_use).
    pub fn bhosts(&self) -> Vec<(String, u32, u32)> {
        self.inner
            .hosts
            .lock()
            .iter()
            .map(|h| (h.name.clone(), h.slots, h.in_use))
            .collect()
    }

    /// Submit a job; returns its id immediately.
    pub fn bsub(&self, req: LsfRequest) -> TdpResult<JobId> {
        let job = JobId(self.inner.next_job.fetch_add(1, Ordering::SeqCst));
        let ntasks = req.ntasks;
        let priority = req.priority;
        self.inner.jobs.lock().insert(
            job,
            JobRec {
                req,
                done: HashMap::new(),
                dispatched: 0,
                state: LsfJobState::Pending,
            },
        );
        {
            let mut q = self.inner.queue.lock();
            for task in 0..ntasks {
                let seq = job.0 * 10_000 + u64::from(task);
                q.push_back(PendingTask {
                    job,
                    task,
                    priority,
                    seq,
                });
            }
            // Highest priority first; FIFO (submission order) inside a
            // priority level.
            let mut v: Vec<PendingTask> = q.drain(..).collect();
            v.sort_by_key(|t| (std::cmp::Reverse(t.priority), t.seq));
            q.extend(v);
        }
        self.inner.pump();
        Ok(job)
    }

    /// Current state of a job (LSF's `bjobs`).
    pub fn bjobs(&self, job: JobId) -> Option<LsfJobState> {
        self.inner.jobs.lock().get(&job).map(|r| r.state.clone())
    }

    /// Tasks queued but not yet dispatched (a queue-depth gauge for
    /// the ops KPI loop).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// `bkill`: terminate a job. Pending tasks are dequeued; running
    /// tasks are killed on their hosts (they report `killed:9`).
    pub fn bkill(&self, job: JobId) -> TdpResult<()> {
        // Remove anything still queued.
        self.inner.queue.lock().retain(|t| t.job != job);
        // Tell every host to kill its running tasks of this job.
        let data = serde_json::to_vec(&MbdMsg::Kill { job })
            .map_err(|e| TdpError::Protocol(format!("encode: {e}")))?;
        for h in self.inner.hosts.lock().iter() {
            let _ = h.tx.send(&data);
        }
        // Mark any never-dispatched remainder as failed so waiters wake.
        let mut jobs = self.inner.jobs.lock();
        if let Some(r) = jobs.get_mut(&job) {
            if r.dispatched < r.req.ntasks {
                r.state = LsfJobState::Failed("killed by bkill before dispatch".into());
            }
        }
        drop(jobs);
        self.inner.cv.notify_all();
        Ok(())
    }

    /// Block until a job completes or fails.
    pub fn wait_job(&self, job: JobId, timeout: Duration) -> TdpResult<LsfJobState> {
        let deadline = Instant::now() + timeout;
        let mut jobs = self.inner.jobs.lock();
        loop {
            match jobs.get(&job) {
                None => return Err(TdpError::Substrate(format!("unknown job {job}"))),
                Some(r) => match &r.state {
                    LsfJobState::Done(_) | LsfJobState::Failed(_) => return Ok(r.state.clone()),
                    _ => {}
                },
            }
            if self.inner.cv.wait_until(&mut jobs, deadline).timed_out() {
                return Err(TdpError::Timeout);
            }
        }
    }
}

impl tdp_core::Supervisable for LsfCluster {
    fn ops_name(&self) -> String {
        format!("lsf.mbatchd.{}", self.inner.master.0)
    }

    fn ops_probe(&self) -> TdpResult<()> {
        // Prove the listener is bound and accepting on the well-known
        // port (gone if the master host died or the daemon was killed).
        let conn = self
            .inner
            .world
            .net()
            .connect(self.inner.master, self.addr)?;
        drop(conn);
        Ok(())
    }
}

impl Mbd {
    /// One sbatchd session: register, then stream task results.
    fn serve_sbatchd(self: Arc<Self>, conn: tdp_netsim::Conn) {
        let (tx, mut rx) = conn.split();
        let tx = Arc::new(tx);
        let mut my_index: Option<usize> = None;
        while let Ok(chunk) = rx.recv() {
            let msg: SbdMsg = match serde_json::from_slice(&chunk) {
                Ok(m) => m,
                Err(_) => continue,
            };
            match msg {
                SbdMsg::Register { name, slots } => {
                    let mut hosts = self.hosts.lock();
                    my_index = Some(hosts.len());
                    hosts.push(HostEntry {
                        name,
                        slots,
                        in_use: 0,
                        tx: tx.clone(),
                        running: Vec::new(),
                    });
                    drop(hosts);
                    self.pump();
                }
                SbdMsg::TaskDone {
                    job,
                    task,
                    status,
                    stdout,
                    stderr,
                    tool_files,
                } => {
                    self.finish_task(my_index, job, task, &status, stdout, stderr, tool_files);
                }
                SbdMsg::TaskStarted { .. } => {}
                SbdMsg::TaskFailed { job, task, error } => {
                    if let Some(i) = my_index {
                        let mut hosts = self.hosts.lock();
                        if let Some(h) = hosts.get_mut(i) {
                            h.in_use = h.in_use.saturating_sub(1);
                            h.running.retain(|t| *t != (job, task));
                        }
                    }
                    let mut jobs = self.jobs.lock();
                    if let Some(r) = jobs.get_mut(&job) {
                        r.state = LsfJobState::Failed(format!("task {task}: {error}"));
                    }
                    drop(jobs);
                    self.cv.notify_all();
                    self.pump();
                }
            }
        }
        // sbatchd gone: drop its slots so the dispatcher stops using
        // it, and requeue whatever it was running — a dead host must
        // not take queued work with it.
        if let Some(i) = my_index {
            let orphans = {
                let mut hosts = self.hosts.lock();
                match hosts.get_mut(i) {
                    Some(h) => {
                        h.slots = 0;
                        h.in_use = 0;
                        std::mem::take(&mut h.running)
                    }
                    None => Vec::new(),
                }
            };
            self.requeue(orphans);
        }
    }

    /// Put orphaned (job, task) pairs of still-live jobs back on the
    /// queue, preserving priority order, and redispatch.
    fn requeue(&self, orphans: Vec<(JobId, u32)>) {
        if orphans.is_empty() {
            return;
        }
        let revived: Vec<PendingTask> = {
            let jobs = self.jobs.lock();
            orphans
                .into_iter()
                .filter_map(|(job, task)| {
                    let r = jobs.get(&job)?;
                    match r.state {
                        LsfJobState::Pending | LsfJobState::Running => Some(PendingTask {
                            job,
                            task,
                            priority: r.req.priority,
                            seq: job.0 * 10_000 + u64::from(task),
                        }),
                        _ => None,
                    }
                })
                .collect()
        };
        if revived.is_empty() {
            return;
        }
        {
            let mut q = self.queue.lock();
            q.extend(revived);
            let mut v: Vec<PendingTask> = q.drain(..).collect();
            v.sort_by_key(|t| (std::cmp::Reverse(t.priority), t.seq));
            q.extend(v);
        }
        self.pump();
    }

    #[allow(clippy::too_many_arguments)] // one call site, mirrors the wire message
    fn finish_task(
        &self,
        host_index: Option<usize>,
        job: JobId,
        task: u32,
        status: &str,
        stdout: Vec<u8>,
        stderr: Vec<u8>,
        tool_files: Vec<(String, Vec<u8>)>,
    ) {
        if let Some(i) = host_index {
            let mut hosts = self.hosts.lock();
            if let Some(h) = hosts.get_mut(i) {
                h.in_use = h.in_use.saturating_sub(1);
                h.running.retain(|t| *t != (job, task));
            }
        }
        let st = ProcStatus::parse(status).unwrap_or(ProcStatus::Killed(-1));
        let mut jobs = self.jobs.lock();
        if let Some(r) = jobs.get_mut(&job) {
            r.done.insert(task, st);
            // Inline output staging onto the master host.
            if let Some(stem) = &r.req.output {
                let name = if task == 0 {
                    stem.clone()
                } else {
                    format!("{stem}.{task}")
                };
                self.world.os().fs().write_file(self.master, &name, &stdout);
                if !stderr.is_empty() {
                    self.world
                        .os()
                        .fs()
                        .write_file(self.master, &format!("{name}.err"), &stderr);
                }
            }
            for (name, data) in tool_files {
                self.world.os().fs().write_file(self.master, &name, &data);
            }
            if r.done.len() as u32 == r.req.ntasks {
                r.state = LsfJobState::Done(r.done.clone());
            }
        }
        drop(jobs);
        self.cv.notify_all();
        self.pump();
    }

    /// FIFO dispatcher: while the head of the queue fits on some host,
    /// push it out.
    fn pump(&self) {
        loop {
            let next = {
                let mut q = self.queue.lock();
                match q.pop_front() {
                    Some(t) => t,
                    None => return,
                }
            };
            let dispatch = {
                let jobs = self.jobs.lock();
                let Some(r) = jobs.get(&next.job) else {
                    continue;
                };
                let mut args: Vec<String> = Vec::new();
                if r.req.ntasks > 1 {
                    args.push(next.task.to_string());
                }
                args.extend(r.req.args.iter().cloned());
                let stdin = r
                    .req
                    .input
                    .as_ref()
                    .and_then(|f| self.world.os().fs().read_file(self.master, f).ok())
                    .unwrap_or_default();
                Dispatch {
                    job: next.job,
                    task: next.task,
                    executable: r.req.executable.clone(),
                    args,
                    stdin,
                    suspend_at_exec: r.req.suspend_at_exec,
                    tool: r.req.tool.as_ref().map(|t| ToolSpecWire {
                        cmd: t.cmd.clone(),
                        args: t.args.clone(),
                    }),
                }
            };
            // Find a free slot, FIFO host order. Reserve it under the
            // lock but send outside it: a slow sbatchd link must not
            // stall registrations and completion reports on `hosts`.
            let reserved = {
                let mut hosts = self.hosts.lock();
                hosts.iter_mut().position(|h| h.in_use < h.slots).map(|i| {
                    hosts[i].in_use += 1;
                    (i, hosts[i].tx.clone())
                })
            };
            let sent = match reserved {
                // Hosts are append-only (dead ones keep their entry with
                // slots=0), so the index stays valid across the unlock.
                Some((i, tx)) => {
                    let data =
                        serde_json::to_vec(&MbdMsg::Dispatch(dispatch)).expect("encode dispatch");
                    let ok = tx.send(&data).is_ok();
                    let mut hosts = self.hosts.lock();
                    let h = &mut hosts[i];
                    if ok {
                        h.running.push((next.job, next.task));
                    } else {
                        h.in_use -= 1;
                        h.slots = 0; // dead sbatchd
                    }
                    ok
                }
                None => false,
            };
            if sent {
                let mut jobs = self.jobs.lock();
                if let Some(r) = jobs.get_mut(&next.job) {
                    r.dispatched += 1;
                    if r.state == LsfJobState::Pending {
                        r.state = LsfJobState::Running;
                    }
                }
            } else {
                // No capacity: requeue at the front and stop pumping —
                // a completion or registration will pump again.
                self.queue.lock().push_front(next);
                return;
            }
        }
    }
}
