//! # tdp-lsf — a second resource manager for the m + n matrix
//!
//! The paper names LSF, Load Leveler and NQE alongside Condor as the
//! batch systems tools must interoperate with (§1). This crate is a
//! *structurally different* scheduler in that family:
//!
//! * **FIFO dispatch with slots per host** — no matchmaking, no
//!   claiming protocol: `mbatchd` on the master host holds the queue
//!   and pushes tasks to `sbatchd` daemons that advertise a fixed slot
//!   count (LSF's model, vs Condor's machine-granularity ClassAds);
//! * **inline file staging** — inputs travel in the dispatch message
//!   and outputs in the completion report (vs Condor's shadow remote
//!   syscalls);
//! * its own independent **TDP integration** in the task runner (LSF's
//!   `res`): create-paused + tool launch + pid put — implemented from
//!   scratch against `tdp-core` alone.
//!
//! Because both this scheduler and `tdp-condor` speak TDP, every tool
//! in the workspace (`paradynd`, `tracey`, `vamp`, `tdb`) runs under
//! both without a line of pairwise code — the m + n effort of §1.

pub mod cluster;
pub mod messages;
pub mod sbatchd;

pub use cluster::{LsfCluster, LsfJobState, LsfRequest, LsfToolSpec};
